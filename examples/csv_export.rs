//! Dataset interchange: generate a community-sensed dataset, export it to
//! CSV, read it back, and verify the round trip — the workflow for feeding
//! real deployment dumps (e.g. an OpenSense export) into EnviroMeter.
//!
//! ```text
//! cargo run -p enviro-data --example csv_export
//! ```

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::csv::{read_csv, write_csv};
use enviro_data::{LausanneSim, Pollutant, SimConfig};

fn main() {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 6 * 3_600,
        ..SimConfig::default()
    });
    let dataset = sim.generate();
    let stats = dataset.stats().expect("non-empty");
    println!(
        "generated {} tuples: {} in [{:.1}, {:.1}] ppm, mean {:.1}, sd {:.1}",
        dataset.len(),
        dataset.pollutant(),
        stats.min,
        stats.max,
        stats.mean,
        stats.std_dev
    );

    let path = std::env::temp_dir().join("enviro_lausanne_sim.csv");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create CSV file"));
    write_csv(&dataset, &mut file).expect("write CSV");
    drop(file);
    let bytes = std::fs::metadata(&path).expect("stat CSV").len();
    println!("exported to {} ({bytes} bytes)", path.display());

    let reloaded = read_csv(
        Pollutant::Co2,
        std::fs::File::open(&path).expect("open CSV"),
    )
    .expect("parse CSV");
    assert_eq!(reloaded, dataset, "round trip must be lossless");
    println!(
        "reloaded {} tuples — byte-exact round trip ✓",
        reloaded.len()
    );

    let (from, to) = reloaded.time_span().expect("non-empty");
    let bounds = reloaded.bounds();
    println!(
        "time span {from} … {to}; spatial extent {:.1} x {:.1} km",
        bounds.width() / 1_000.0,
        bounds.height() / 1_000.0
    );
}
