//! The §2.3 bandwidth story, end to end: a phone runs the same continuous
//! query as a baseline client and as a model-cache client, over simulated
//! GPRS and 3G bearers — and once across a real thread boundary via the
//! channel transport.
//!
//! ```text
//! cargo run -p enviro-net --example bandwidth_demo
//! ```

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, SimConfig, Timestamp, WindowSpec};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BaselineClient, BinaryCodec, ChannelTransport, EnviroServer, LinkProfile, ModelCacheClient,
    Request, Response, SimulatedLink, WireCodec,
};

fn main() {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 86_400,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );
    let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
    let trajectory = sim.continuous_trajectory(100, 60, 9);

    println!("100-tuple continuous query, binary codec\n");
    for profile in [LinkProfile::GPRS, LinkProfile::THREE_G] {
        println!("--- bearer: {} ---", profile.name);
        let mut base_link = SimulatedLink::new(profile);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &trajectory, &mut base_link)
            .expect("baseline session");
        let mut cache_link = SimulatedLink::new(profile);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&server, &trajectory, &mut cache_link)
            .expect("model-cache session");
        for (name, s) in [("baseline", &base), ("model-cache", &cache)] {
            println!(
                "  {name:>11}: sent {:>6} B, received {:>6} B, {:>7.2} s, {} round-trips",
                s.usage.sent_bytes, s.usage.received_bytes, s.elapsed_secs, s.server_exchanges
            );
        }
        println!(
            "  savings: {:.0}x sent, {:.0}x received, {:.0}x faster\n",
            base.usage.sent_bytes as f64 / cache.usage.sent_bytes.max(1) as f64,
            base.usage.received_bytes as f64 / cache.usage.received_bytes.max(1) as f64,
            base.elapsed_secs / cache.elapsed_secs.max(1e-9)
        );
    }

    // The same protocol across a real thread boundary: the server runs on
    // its own thread; the phone talks to it in raw bytes.
    println!("--- channel transport (server on its own thread) ---");
    let transport = ChannelTransport::spawn(server).expect("spawn server thread");
    let req = BinaryCodec.encode_request(&Request::Query {
        time: Timestamp::from_hours(8),
        pos: Point::new(0.0, -200.0),
    });
    let resp_bytes = transport.call(req).expect("server thread alive");
    match BinaryCodec
        .decode_response(&resp_bytes)
        .expect("well-formed")
    {
        Response::Value { value } => {
            println!("  CO2 at the interchange via thread-server: {value:.1} ppm")
        }
        other => println!("  unexpected response: {other:?}"),
    }
}
