//! The web interface's heatmap mode: render the pollutant surface of the
//! model cover as ASCII art (and a PPM image on disk), contrasting the
//! morning rush with the middle of the night.
//!
//! ```text
//! cargo run -p enviro-meter --example heatmap_ascii
//! ```

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, SimConfig, Timestamp, WindowSpec};
use enviro_meter::{AdKmnConfig, EnviroMeter};

fn main() {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 86_400,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );

    for (label, t) in [
        ("morning rush (08:00)", Timestamp::from_hours(8)),
        ("deep night (03:00)", Timestamp::from_hours(3)),
    ] {
        let hm = platform
            .heatmap(t, 64, 24)
            .expect("cover exists for a sensed day");
        let (lo, hi) = hm.value_range();
        println!("\n=== CO2 heatmap, {label} ===");
        println!("scale: '.' = {lo:.0} ppm … '#' = {hi:.0} ppm");
        print!("{}", hm.to_ascii());
        println!(
            "emitters (Ad-KMN centroids): {}",
            hm.emitters
                .iter()
                .map(|(p, v)| format!("({:.0},{:.0})={:.0}", p.x, p.y, v))
                .collect::<Vec<_>>()
                .join(" ")
        );

        // Also write the PPM the web UI would color-map.
        let path = std::env::temp_dir().join(format!("enviro_heatmap_{}.ppm", t.as_secs() / 3_600));
        std::fs::write(&path, hm.to_ppm()).expect("write heatmap image");
        println!("PPM image written to {}", path.display());
    }
}
