//! Quickstart: stand up EnviroMeter over simulated community-sensed data
//! and ask it questions.
//!
//! ```text
//! cargo run -p enviro-meter --example quickstart
//! ```

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, QueryTuple, SimConfig, Timestamp, WindowSpec};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};

fn main() {
    // 1. Community sensing: two buses sample CO2 across Lausanne for a day.
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 86_400,
        ..SimConfig::default()
    });
    let dataset = sim.generate();
    println!(
        "sensed {} raw tuples of {} over {} bus lines",
        dataset.len(),
        dataset.pollutant(),
        sim.lines().len()
    );

    // 2. The platform: 4-hour model windows, tau_n = 2 %, r = 1 km.
    let platform = EnviroMeter::new(
        dataset,
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );

    // 3. Point query at the city center during the morning rush, answered
    //    by every method the paper compares.
    let q = QueryTuple::new(Timestamp::from_hours(8), Point::new(0.0, -200.0));
    println!("\nCO2 at the central interchange, 08:00:");
    for method in QueryMethod::ALL {
        match platform.point_query(&q, method) {
            Some(v) => println!("  {method:>10}: {v:7.1} ppm"),
            None => println!("  {method:>10}: no data within radius"),
        }
    }
    println!("  ground truth: {:7.1} ppm", sim.true_value(q.time, &q.pos));

    // 4. A continuous query: a pedestrian walks for 30 minutes; the model
    //    cover answers every tick.
    let trajectory = sim.continuous_trajectory(30, 60, 7);
    let values = platform.continuous_query(&trajectory, QueryMethod::ModelCover);
    let answered = values.iter().flatten().count();
    let avg: f64 = values.iter().flatten().sum::<f64>() / answered.max(1) as f64;
    println!("\ncontinuous query: {answered}/30 ticks answered, average {avg:.1} ppm");

    // 5. The model cover behind those answers.
    let cover = platform.cover_at(q.time).expect("data exists");
    println!(
        "\nmodel cover for window {}: {} regions, worst training error {:.2} %, valid until {}",
        cover.window_id,
        cover.len(),
        cover.worst_training_error_percent(),
        cover.valid_until
    );
}
