//! A live deployment in one process: tuples stream in from the buses,
//! land durably in the segment store, feed the lazy live engine, and a
//! user polls the pollution around them — while the engine builds covers
//! only when queries actually need them.
//!
//! ```text
//! cargo run -p enviro-meter --example live_ingest
//! ```

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, QueryTuple, SimConfig, Timestamp};
use enviro_geo::Point;
use enviro_meter::{LiveConfig, LiveEngine};
use enviro_storage::TupleStore;

fn main() {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 12 * 3_600,
        ..SimConfig::default()
    });
    let dataset = sim.generate();

    let dir = std::env::temp_dir().join("enviro-live-demo");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = TupleStore::open(&dir).expect("open store");
    let mut engine = LiveEngine::new(LiveConfig {
        window_secs: 2 * 3_600,
        retention_windows: Some(4),
        ..LiveConfig::default()
    });

    // Replay the day: one durable batch + ingest per simulated 10 minutes,
    // with a user query every simulated hour.
    let user_at = Point::new(0.0, -200.0); // the central interchange
    let step = 600;
    let mut offset = 0usize;
    let tuples = dataset.tuples();
    for tick in 0.. {
        let until = Timestamp::from_secs((tick + 1) * step);
        let end = tuples[offset..]
            .iter()
            .position(|t| t.time >= until)
            .map(|p| offset + p)
            .unwrap_or(tuples.len());
        let batch = &tuples[offset..end];
        if batch.is_empty() && end == tuples.len() {
            break;
        }
        store.append(batch).expect("durable append");
        engine.ingest_batch(batch);
        offset = end;

        if until.as_secs() % 3_600 == 0 {
            let q = QueryTuple::new(until, user_at);
            match engine.query(&q) {
                Some(v) => println!(
                    "{until}  CO2 at interchange: {v:7.1} ppm   \
                     (ingested {:>6}, covers built {:>2}, windows kept {})",
                    engine.stats().ingested,
                    engine.stats().cover_builds,
                    engine.window_count()
                ),
                None => println!("{until}  no data yet"),
            }
        }
    }
    store.sync().expect("final sync");

    let stats = store.stats();
    println!(
        "\nstore: {} tuples in {} segments, {} bytes on disk",
        stats.tuples, stats.segments, stats.bytes
    );
    println!(
        "engine: {} covers built for {} ingested tuples — the lazy policy \
         builds per queried window, not per tuple",
        engine.stats().cover_builds,
        engine.stats().ingested
    );

    // Crash-recovery works end to end: reopen and rebuild the engine.
    drop(store);
    let store = TupleStore::open(&dir).expect("reopen store");
    let recovered = store
        .load_dataset(enviro_data::Pollutant::Co2)
        .expect("recover dataset");
    println!(
        "recovered {} tuples from disk after restart ✓",
        recovered.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
