//! The Android app scenario: record a commute, then show the route summary
//! the EnviroMeter app renders — average exposure, OSHA advisory, and a
//! green→red marker per route point.
//!
//! ```text
//! cargo run -p enviro-meter --example commute_route
//! ```

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, QueryTuple, SimConfig, Timestamp, WindowSpec};
use enviro_geo::{Point, Polyline};
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};

fn main() {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 86_400,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );

    // A commute from the western lakeshore to the old town, walked at
    // ~1.4 m/s starting at 07:40, with a GPS fix every minute.
    let walk = Polyline::new(vec![
        Point::new(-2_400.0, -1_100.0),
        Point::new(-1_200.0, -700.0),
        Point::new(-300.0, -250.0),
        Point::new(-150.0, 700.0),
        Point::new(-100.0, 1_200.0),
    ]);
    let speed = 1.4;
    let start = Timestamp::from_hours(7) + 40 * 60;
    let fixes = (walk.length() / (speed * 60.0)).ceil() as usize + 1;
    let trajectory: Vec<QueryTuple> = (0..fixes)
        .map(|i| {
            QueryTuple::new(
                start + i as i64 * 60,
                walk.point_at(i as f64 * 60.0 * speed),
            )
        })
        .collect();

    let route = platform.record_route(&trajectory, QueryMethod::ModelCover);
    let colors = route.marker_colors();
    println!("recorded {} route points:\n", route.len());
    println!("  min   position             CO2      marker");
    for (i, (p, color)) in route.points.iter().zip(&colors).enumerate() {
        let marker = match color {
            Some((r, g, b)) => format!("#{r:02x}{g:02x}{b:02x}"),
            None => "(no data)".to_string(),
        };
        let value = p
            .value
            .map(|v| format!("{v:6.1} ppm"))
            .unwrap_or_else(|| "   --  ".into());
        println!(
            "  {i:>3}   ({x:>7.0}, {y:>7.0})   {value}   {marker}",
            x = p.query.pos.x,
            y = p.query.pos.y
        );
    }

    let summary = route.summary();
    println!("\n--- route summary ---");
    println!("{}", summary.advisory);
    if let Some(level) = summary.level {
        println!("classification: {level}");
    }
    println!(
        "({} of {} points had data)",
        summary.answered, summary.recorded
    );
}
