//! Property tests for the window decomposition `W_c`: every tuple lands in
//! exactly one window, in order, under both specs.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{Dataset, Pollutant, RawTuple, Timestamp, WindowSpec, Windows};
use enviro_geo::Point;
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec((0i64..1_000_000, -1e4..1e4f64, 0.0..2_000.0f64), 0..200).prop_map(|v| {
        Dataset::from_tuples(
            Pollutant::Co2,
            v.into_iter()
                .map(|(t, x, s)| RawTuple::new(Timestamp::from_secs(t), Point::new(x, -x), s))
                .collect(),
        )
        .expect("finite tuples")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn by_count_partitions_exactly(ds in arb_dataset(), n in 1usize..50) {
        let windows: Vec<_> = Windows::new(&ds, WindowSpec::ByCount(n)).collect();
        let total: usize = windows.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, ds.len());
        // Every window except the last is exactly n tuples.
        for w in windows.iter().rev().skip(1) {
            prop_assert_eq!(w.len(), n);
        }
        // Ids are consecutive from 0.
        for (i, w) in windows.iter().enumerate() {
            prop_assert_eq!(w.id, i as u64);
        }
    }

    #[test]
    fn by_duration_respects_boundaries(ds in arb_dataset(), secs in 1i64..100_000) {
        let spec = WindowSpec::ByDuration(secs);
        let windows: Vec<_> = Windows::new(&ds, spec).collect();
        let total: usize = windows.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, ds.len());
        for w in &windows {
            prop_assert!(!w.is_empty(), "duration windows skip empty ranges");
            for t in w.tuples {
                // Every tuple's time falls inside [id*secs, (id+1)*secs).
                prop_assert_eq!(t.time.as_secs().div_euclid(secs) as u64, w.id);
                prop_assert!(t.time < w.valid_until);
            }
        }
        // Window ids strictly increase.
        for pair in windows.windows(2) {
            prop_assert!(pair[0].id < pair[1].id);
            prop_assert!(pair[0].valid_until <= pair[1].valid_until);
        }
    }

    #[test]
    fn window_id_at_agrees_with_decomposition(ds in arb_dataset(), secs in 1i64..100_000) {
        let spec = WindowSpec::ByDuration(secs);
        for w in Windows::new(&ds, spec) {
            for t in w.tuples {
                prop_assert_eq!(spec.window_id_at(t.time), Some(w.id));
            }
        }
    }
}
