//! CSV import/export of datasets.
//!
//! The OpenSense pipeline dumps raw tuples into a relational table; this
//! module is the file-interchange equivalent. The format is deliberately
//! minimal — a header line followed by `time_secs,x,y,value` rows — so that
//! datasets round-trip between the simulator, the examples and external
//! tooling. Parsing is hand-rolled (no quoting is needed for numeric columns)
//! to stay inside the approved dependency set.

use crate::dataset::Dataset;
use crate::pollutant::Pollutant;
use crate::tuple::{RawTuple, Timestamp};
use enviro_geo::Point;
use std::io::{self, BufRead, BufReader, Read, Write};

/// The header written (and required) by this module.
pub const HEADER: &str = "time_secs,x,y,value";

/// Errors produced while reading a dataset from CSV.
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse {
        /// 1-based line number (the header is line 1).
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `dataset` as CSV to `w`.
pub fn write_csv<W: Write>(dataset: &Dataset, w: &mut W) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for t in dataset.tuples() {
        writeln!(
            w,
            "{},{},{},{}",
            t.time.as_secs(),
            t.pos.x,
            t.pos.y,
            t.value
        )?;
    }
    Ok(())
}

/// Reads a dataset for `pollutant` from CSV.
///
/// Requires the exact [`HEADER`]; blank lines are ignored; tuples may appear
/// in any time order (they are sorted on load).
pub fn read_csv<R: Read>(pollutant: Pollutant, r: R) -> Result<Dataset, CsvError> {
    let reader = BufReader::new(r);
    let mut tuples = Vec::new();
    let mut lines = reader.lines();
    let header = lines.next().ok_or(CsvError::Parse {
        line: 1,
        message: "empty input (missing header)".into(),
    })??;
    if header.trim() != HEADER {
        return Err(CsvError::Parse {
            line: 1,
            message: format!("bad header {header:?}, expected {HEADER:?}"),
        });
    }
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next_field = |name: &str| -> Result<&str, CsvError> {
            fields.next().ok_or_else(|| CsvError::Parse {
                line: line_no,
                message: format!("missing field {name}"),
            })
        };
        let time: i64 = parse(next_field("time_secs")?, "time_secs", line_no)?;
        let x: f64 = parse(next_field("x")?, "x", line_no)?;
        let y: f64 = parse(next_field("y")?, "y", line_no)?;
        let value: f64 = parse(next_field("value")?, "value", line_no)?;
        if fields.next().is_some() {
            return Err(CsvError::Parse {
                line: line_no,
                message: "too many fields".into(),
            });
        }
        tuples.push(RawTuple::new(
            Timestamp::from_secs(time),
            Point::new(x, y),
            value,
        ));
    }
    Dataset::from_tuples(pollutant, tuples).map_err(|message| CsvError::Parse { line: 0, message })
}

fn parse<T: std::str::FromStr>(s: &str, name: &str, line: usize) -> Result<T, CsvError> {
    s.trim().parse().map_err(|_| CsvError::Parse {
        line,
        message: format!("invalid {name}: {s:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        Dataset::from_tuples(
            Pollutant::Co2,
            vec![
                RawTuple::new(Timestamp::from_secs(60), Point::new(1.5, -2.5), 420.25),
                RawTuple::new(Timestamp::from_secs(0), Point::new(0.0, 0.0), 400.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(Pollutant::Co2, buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn written_header_first_line() {
        let mut buf = Vec::new();
        write_csv(&sample_dataset(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("time_secs,x,y,value\n"));
    }

    #[test]
    fn read_rejects_bad_header() {
        let err = read_csv(Pollutant::Co2, "a,b,c\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }));
    }

    #[test]
    fn read_rejects_empty_input() {
        assert!(read_csv(Pollutant::Co2, "".as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_bad_number_with_line_info() {
        let input = format!("{HEADER}\n0,1.0,2.0,oops\n");
        let err = read_csv(Pollutant::Co2, input.as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("value"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn read_rejects_wrong_arity() {
        let short = format!("{HEADER}\n0,1.0,2.0\n");
        assert!(read_csv(Pollutant::Co2, short.as_bytes()).is_err());
        let long = format!("{HEADER}\n0,1.0,2.0,3.0,4.0\n");
        assert!(read_csv(Pollutant::Co2, long.as_bytes()).is_err());
    }

    #[test]
    fn read_skips_blank_lines_and_sorts() {
        let input = format!("{HEADER}\n60,1,1,2\n\n0,0,0,1\n");
        let ds = read_csv(Pollutant::Co2, input.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.tuples()[0].time.as_secs(), 0);
    }

    #[test]
    fn read_rejects_non_finite_values() {
        let input = format!("{HEADER}\n0,NaN,0,1\n");
        assert!(read_csv(Pollutant::Co2, input.as_bytes()).is_err());
    }

    #[test]
    fn large_roundtrip_via_simulator() {
        use crate::sim::{LausanneSim, SimConfig};
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 3_600,
            ..SimConfig::default()
        });
        let ds = sim.generate();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(Pollutant::Co2, buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        // f64 round-trips exactly through Rust's Display/FromStr.
        assert_eq!(back, ds);
    }
}
