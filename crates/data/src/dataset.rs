//! Time-ordered datasets of raw tuples with metadata and statistics.

use crate::pollutant::Pollutant;
use crate::tuple::{RawTuple, Timestamp};
use enviro_geo::BoundingBox;

/// A community-sensed dataset: the `raw_tuples` table of the paper's
/// architecture (Figure 1).
///
/// Tuples are kept sorted by time — the storage layer and the window
/// decomposition both rely on this invariant, which [`Dataset::push`]
/// maintains and [`Dataset::from_tuples`] establishes.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    pollutant: Pollutant,
    tuples: Vec<RawTuple>,
}

/// Summary statistics of the sensed values in a dataset (or window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of tuples.
    pub count: usize,
    /// Minimum sensed value.
    pub min: f64,
    /// Maximum sensed value.
    pub max: f64,
    /// Arithmetic mean of the sensed values.
    pub mean: f64,
    /// Population standard deviation of the sensed values.
    pub std_dev: f64,
}

impl Dataset {
    /// Creates an empty dataset for `pollutant`.
    pub fn new(pollutant: Pollutant) -> Self {
        Self {
            pollutant,
            tuples: Vec::new(),
        }
    }

    /// Builds a dataset from a tuple collection, sorting by time.
    ///
    /// Non-finite tuples are rejected with an error naming the offending
    /// index — GPS glitches and sensor dropouts must be cleaned upstream.
    pub fn from_tuples(pollutant: Pollutant, mut tuples: Vec<RawTuple>) -> Result<Self, String> {
        for (i, t) in tuples.iter().enumerate() {
            if !t.is_finite() {
                return Err(format!("tuple {i} has non-finite position or value"));
            }
        }
        tuples.sort_by_key(|t| t.time);
        Ok(Self { pollutant, tuples })
    }

    /// The monitored pollutant.
    #[inline]
    pub fn pollutant(&self) -> Pollutant {
        self.pollutant
    }

    /// All tuples, sorted by time.
    #[inline]
    pub fn tuples(&self) -> &[RawTuple] {
        &self.tuples
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the dataset holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a tuple, keeping the time order.
    ///
    /// Appending in time order is O(1); out-of-order tuples are inserted at
    /// their sorted position (O(n) worst case), matching the mostly-ordered
    /// arrival pattern of a live deployment.
    pub fn push(&mut self, tuple: RawTuple) -> Result<(), String> {
        if !tuple.is_finite() {
            return Err("tuple has non-finite position or value".into());
        }
        match self.tuples.last() {
            Some(last) if last.time > tuple.time => {
                let idx = self.tuples.partition_point(|t| t.time <= tuple.time);
                self.tuples.insert(idx, tuple);
            }
            _ => self.tuples.push(tuple),
        }
        Ok(())
    }

    /// The time span `[first, last]` of the data, or `None` when empty.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.tuples.first()?.time, self.tuples.last()?.time))
    }

    /// The spatial bounding box of all sampling positions.
    pub fn bounds(&self) -> BoundingBox {
        BoundingBox::from_points(self.tuples.iter().map(|t| t.pos))
    }

    /// Summary statistics over the sensed values, or `None` when empty.
    pub fn stats(&self) -> Option<DatasetStats> {
        stats_of(&self.tuples)
    }

    /// The slice of tuples with `time ∈ [from, to)`, found by binary search.
    pub fn slice_time_range(&self, from: Timestamp, to: Timestamp) -> &[RawTuple] {
        let lo = self.tuples.partition_point(|t| t.time < from);
        let hi = self.tuples.partition_point(|t| t.time < to);
        &self.tuples[lo..hi]
    }
}

/// Computes summary statistics for a tuple slice (shared with [`crate::Window`]).
pub(crate) fn stats_of(tuples: &[RawTuple]) -> Option<DatasetStats> {
    if tuples.is_empty() {
        return None;
    }
    let n = tuples.len() as f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for t in tuples {
        min = min.min(t.value);
        max = max.max(t.value);
        sum += t.value;
    }
    let mean = sum / n;
    let var = tuples
        .iter()
        .map(|t| {
            let d = t.value - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    Some(DatasetStats {
        count: tuples.len(),
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_geo::Point;

    fn tup(secs: i64, x: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(secs), Point::new(x, 0.0), v)
    }

    #[test]
    fn from_tuples_sorts_by_time() {
        let ds = Dataset::from_tuples(
            Pollutant::Co2,
            vec![tup(30, 0.0, 3.0), tup(10, 0.0, 1.0), tup(20, 0.0, 2.0)],
        )
        .unwrap();
        let times: Vec<i64> = ds.tuples().iter().map(|t| t.time.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn from_tuples_rejects_non_finite() {
        let err = Dataset::from_tuples(Pollutant::Co2, vec![tup(0, f64::NAN, 1.0)]);
        assert!(err.is_err());
    }

    #[test]
    fn push_in_order_appends() {
        let mut ds = Dataset::new(Pollutant::Co2);
        ds.push(tup(10, 0.0, 1.0)).unwrap();
        ds.push(tup(20, 0.0, 2.0)).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.tuples()[1].time.as_secs(), 20);
    }

    #[test]
    fn push_out_of_order_inserts_sorted() {
        let mut ds = Dataset::new(Pollutant::Co2);
        ds.push(tup(10, 0.0, 1.0)).unwrap();
        ds.push(tup(30, 0.0, 3.0)).unwrap();
        ds.push(tup(20, 0.0, 2.0)).unwrap();
        let times: Vec<i64> = ds.tuples().iter().map(|t| t.time.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn push_equal_times_keeps_all() {
        let mut ds = Dataset::new(Pollutant::Co2);
        ds.push(tup(10, 0.0, 1.0)).unwrap();
        ds.push(tup(10, 1.0, 2.0)).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn time_span_and_bounds() {
        let ds = Dataset::from_tuples(Pollutant::Co2, vec![tup(10, -5.0, 1.0), tup(50, 7.0, 2.0)])
            .unwrap();
        let (a, b) = ds.time_span().unwrap();
        assert_eq!((a.as_secs(), b.as_secs()), (10, 50));
        let bb = ds.bounds();
        assert_eq!(bb.min.x, -5.0);
        assert_eq!(bb.max.x, 7.0);
    }

    #[test]
    fn empty_dataset_behaviour() {
        let ds = Dataset::new(Pollutant::Co2);
        assert!(ds.is_empty());
        assert_eq!(ds.time_span(), None);
        assert_eq!(ds.stats(), None);
        assert!(ds.bounds().is_empty());
    }

    #[test]
    fn stats_values() {
        let ds = Dataset::from_tuples(
            Pollutant::Co2,
            vec![tup(0, 0.0, 2.0), tup(1, 0.0, 4.0), tup(2, 0.0, 6.0)],
        )
        .unwrap();
        let s = ds.stats().unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 4.0);
        let expected_sd = (8.0f64 / 3.0).sqrt();
        assert!((s.std_dev - expected_sd).abs() < 1e-12);
    }

    #[test]
    fn slice_time_range_is_half_open() {
        let ds = Dataset::from_tuples(
            Pollutant::Co2,
            vec![tup(10, 0.0, 1.0), tup(20, 0.0, 2.0), tup(30, 0.0, 3.0)],
        )
        .unwrap();
        let s = ds.slice_time_range(Timestamp::from_secs(10), Timestamp::from_secs(30));
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].time.as_secs(), 10);
        assert_eq!(s[1].time.as_secs(), 20);
    }

    #[test]
    fn slice_time_range_empty_when_no_overlap() {
        let ds = Dataset::from_tuples(Pollutant::Co2, vec![tup(10, 0.0, 1.0)]).unwrap();
        assert!(ds
            .slice_time_range(Timestamp::from_secs(100), Timestamp::from_secs(200))
            .is_empty());
    }
}
