//! The `lausanne-sim` community-sensing simulator.
//!
//! Substitutes for the proprietary OpenSense `lausanne-data` trace (see
//! DESIGN.md §2). Two public-transport buses drive fixed routes through a
//! Lausanne-like street plan, each sampling the ground-truth pollution field
//! at a fixed interval with sensor and GPS noise. The essential property the
//! paper's evaluation depends on — *geo-temporal skew*, i.e. data
//! concentrated along two bus corridors while most of the region is never
//! sampled — is reproduced by construction.

use crate::dataset::Dataset;
use crate::field::{DiurnalCycle, GaussianPlume, PollutionField, SyntheticField};
use crate::pollutant::Pollutant;
use crate::tuple::{QueryTuple, RawTuple, Timestamp};
use enviro_geo::{Point, Polyline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bus line: a named route driven back and forth at constant speed.
#[derive(Debug, Clone)]
pub struct BusLine {
    /// Line name (for diagnostics).
    pub name: String,
    /// The route in the metric plane.
    pub route: Polyline,
    /// Cruise speed in meters per second.
    pub speed_mps: f64,
}

impl BusLine {
    /// The bus position at time `t`, ping-ponging along the route.
    pub fn position_at(&self, t: Timestamp) -> Point {
        let len = self.route.length();
        let travelled = self.speed_mps * t.as_secs_f64().max(0.0);
        // Fold the distance onto [0, 2·len) and reflect the second half.
        let cycle = travelled.rem_euclid(2.0 * len);
        let s = if cycle <= len {
            cycle
        } else {
            2.0 * len - cycle
        };
        self.route.point_at(s)
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The monitored pollutant.
    pub pollutant: Pollutant,
    /// Total simulated duration in seconds.
    pub duration_secs: i64,
    /// Sampling interval per bus, in seconds (OpenSense: 60 s).
    pub sampling_interval_secs: i64,
    /// Standard deviation of additive sensor noise, in the pollutant unit.
    pub sensor_noise_std: f64,
    /// Standard deviation of GPS position noise, in meters.
    pub gps_noise_std: f64,
    /// RNG seed: equal seeds give bit-identical datasets.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            pollutant: Pollutant::Co2,
            duration_secs: 7 * 86_400, // one week
            sampling_interval_secs: 60,
            sensor_noise_std: 15.0, // ppm — typical NDIR CO₂ sensor
            gps_noise_std: 5.0,
            seed: 0x454E_5649, // "ENVI", arbitrary fixed default
        }
    }
}

/// The Lausanne community-sensing simulator: bus lines + ground-truth field.
#[derive(Debug, Clone)]
pub struct LausanneSim {
    config: SimConfig,
    lines: Vec<BusLine>,
    field: SyntheticField,
}

impl LausanneSim {
    /// Builds a simulator with explicit lines and field.
    pub fn new(config: SimConfig, lines: Vec<BusLine>, field: SyntheticField) -> Self {
        assert!(!lines.is_empty(), "need at least one bus line");
        assert!(config.duration_secs > 0, "duration must be positive");
        assert!(
            config.sampling_interval_secs > 0,
            "sampling interval must be positive"
        );
        Self {
            config,
            lines,
            field,
        }
    }

    /// The standard Lausanne scenario: two bus lines over a ~6 × 4 km
    /// street plan and a CO₂ field with lake-to-center gradient, commuter
    /// diurnal cycle and four traffic/industrial hot-spots.
    pub fn lausanne(config: SimConfig) -> Self {
        Self::new(config, lausanne_bus_lines(), lausanne_co2_field())
    }

    /// The Lausanne scenario for an arbitrary pollutant: the same street
    /// plan and hot-spot geometry, with field levels rescaled to the
    /// pollutant's ambient range and sensor noise scaled accordingly
    /// (~1.3 % of the normal-range width, matching the CO₂ default).
    pub fn lausanne_for(pollutant: Pollutant, config: SimConfig) -> Self {
        let width = pollutant.normal_range_width();
        let config = SimConfig {
            pollutant,
            sensor_noise_std: width * 0.013,
            ..config
        };
        Self::new(config, lausanne_bus_lines(), lausanne_field_for(pollutant))
    }

    /// The paper-scale dataset: ~173 K tuples ≈ the 176 K of `lausanne-data`
    /// (two buses, 30 days; we sample every 30 s where OpenSense's two buses
    /// produced 176 K over a month — the tuple *density along the corridors*
    /// is what matters for query processing).
    pub fn paper_scale(seed: u64) -> Self {
        Self::lausanne(SimConfig {
            duration_secs: 30 * 86_400,
            sampling_interval_secs: 30,
            seed,
            ..SimConfig::default()
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The bus lines.
    pub fn lines(&self) -> &[BusLine] {
        &self.lines
    }

    /// The ground-truth field.
    pub fn field(&self) -> &SyntheticField {
        &self.field
    }

    /// The exact field value at `(t, p)` — the NRMSE reference.
    pub fn true_value(&self, t: Timestamp, p: &Point) -> f64 {
        self.field.value(t, p)
    }

    /// Runs the simulation and returns the community-sensed dataset.
    ///
    /// Tuples are generated per bus per sampling tick, positions carry GPS
    /// noise, and values carry sensor noise. Deterministic in the seed.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let ticks = (self.config.duration_secs / self.config.sampling_interval_secs) as usize;
        let mut tuples = Vec::with_capacity(ticks * self.lines.len());
        for k in 0..ticks {
            let t = Timestamp::from_secs(k as i64 * self.config.sampling_interval_secs);
            for line in &self.lines {
                let true_pos = line.position_at(t);
                let pos = Point::new(
                    true_pos.x + gaussian(&mut rng) * self.config.gps_noise_std,
                    true_pos.y + gaussian(&mut rng) * self.config.gps_noise_std,
                );
                let value = self.field.value(t, &true_pos)
                    + gaussian(&mut rng) * self.config.sensor_noise_std;
                tuples.push(RawTuple::new(t, pos, value));
            }
        }
        Dataset::from_tuples(self.config.pollutant, tuples)
            .expect("simulator produces finite tuples")
    }

    /// Generates a point-query workload of `n` queries.
    ///
    /// Query positions follow the paper's usage model — pedestrians and
    /// vehicles *near the sensed corridors* asking for the pollution around
    /// them: a uniformly random point on a random bus route, displaced
    /// laterally by Gaussian noise of `spread` meters. Query times are
    /// uniform over `[0, duration)`.
    pub fn query_workload(&self, n: usize, spread: f64, seed: u64) -> Vec<QueryTuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let line = &self.lines[rng.gen_range(0..self.lines.len())];
                let s = rng.gen_range(0.0..line.route.length());
                let on_route = line.route.point_at(s);
                let pos = Point::new(
                    on_route.x + gaussian(&mut rng) * spread,
                    on_route.y + gaussian(&mut rng) * spread,
                );
                let t = Timestamp::from_secs(rng.gen_range(0..self.config.duration_secs));
                QueryTuple::new(t, pos)
            })
            .collect()
    }

    /// Generates a continuous-query trajectory: `n` query tuples emitted at
    /// `interval_secs` by one mobile object walking a straight path between
    /// two random corridor points (the paper's `v_q` with uniform
    /// `|t_{l+1} − t_l|`).
    pub fn continuous_trajectory(
        &self,
        n: usize,
        interval_secs: i64,
        seed: u64,
    ) -> Vec<QueryTuple> {
        assert!(n >= 1 && interval_secs > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let line = &self.lines[rng.gen_range(0..self.lines.len())];
        let a = line.route.point_at(rng.gen_range(0.0..line.route.length()));
        let b = line.route.point_at(rng.gen_range(0.0..line.route.length()));
        let t0 = rng.gen_range(0..self.config.duration_secs.max(2) / 2);
        (0..n)
            .map(|i| {
                let frac = if n == 1 {
                    0.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                QueryTuple::new(
                    Timestamp::from_secs(t0 + i as i64 * interval_secs),
                    a.lerp(&b, frac),
                )
            })
            .collect()
    }
}

/// A standard-normal sample via Box–Muller (keeps us independent of
/// `rand_distr`, which is outside the approved crate list).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The two bus lines of the standard scenario, in the metric plane
/// (origin = Lausanne center; extent ≈ 6 km east-west × 4 km north-south).
///
/// Line M1 runs roughly east-west along the lake shore with a climb into the
/// center; line M2 runs south-north from the lake up the hill — echoing
/// Lausanne's actual metro/bus geometry.
pub fn lausanne_bus_lines() -> Vec<BusLine> {
    let m1 = Polyline::new(vec![
        Point::new(-3_000.0, -1_500.0),
        Point::new(-1_800.0, -1_200.0),
        Point::new(-900.0, -600.0),
        Point::new(0.0, -200.0),
        Point::new(800.0, 100.0),
        Point::new(1_900.0, 300.0),
        Point::new(3_000.0, 200.0),
    ]);
    let m2 = Polyline::new(vec![
        Point::new(200.0, -2_000.0),
        Point::new(100.0, -1_100.0),
        Point::new(0.0, -200.0),
        Point::new(-200.0, 700.0),
        Point::new(-100.0, 1_500.0),
        Point::new(150.0, 2_000.0),
    ]);
    vec![
        BusLine {
            name: "M1 lake-shore".into(),
            route: m1,
            speed_mps: 8.0, // ~29 km/h urban average
        },
        BusLine {
            name: "M2 hill-climb".into(),
            route: m2,
            speed_mps: 7.0,
        },
    ]
}

/// The Lausanne field shape rescaled to any pollutant's ambient range:
/// background at 6 % of the range above its floor, a 5 %-of-range diurnal
/// swing, and the four hot-spots at 16/10/8/6 % of the range.
pub fn lausanne_field_for(pollutant: Pollutant) -> SyntheticField {
    let (lo, _) = pollutant.normal_range();
    let w = pollutant.normal_range_width();
    SyntheticField {
        background: lo + 0.06 * w,
        gradient: (5.2e-6 * w, 7.8e-6 * w),
        diurnal_amplitude: 0.052 * w,
        cycle: DiurnalCycle::COMMUTER,
        plumes: vec![
            GaussianPlume {
                center: Point::new(0.0, -200.0),
                amplitude: 0.157 * w,
                sigma: 350.0,
                diurnal: true,
            },
            GaussianPlume {
                center: Point::new(2_200.0, 300.0),
                amplitude: 0.104 * w,
                sigma: 500.0,
                diurnal: true,
            },
            GaussianPlume {
                center: Point::new(-2_200.0, -1_000.0),
                amplitude: 0.078 * w,
                sigma: 600.0,
                diurnal: false,
            },
            GaussianPlume {
                center: Point::new(-100.0, 1_200.0),
                amplitude: 0.061 * w,
                sigma: 300.0,
                diurnal: true,
            },
        ],
    }
}

/// The standard CO₂ field over the Lausanne plan.
pub fn lausanne_co2_field() -> SyntheticField {
    SyntheticField {
        background: 420.0,
        // Slightly cleaner air towards the lake (south), denser towards the
        // center/north-east.
        gradient: (6.0e-3, 9.0e-3),
        diurnal_amplitude: 60.0,
        cycle: DiurnalCycle::COMMUTER,
        plumes: vec![
            // Major interchange at the center: strong, traffic-driven.
            GaussianPlume {
                center: Point::new(0.0, -200.0),
                amplitude: 180.0,
                sigma: 350.0,
                diurnal: true,
            },
            // Motorway junction to the east.
            GaussianPlume {
                center: Point::new(2_200.0, 300.0),
                amplitude: 120.0,
                sigma: 500.0,
                diurnal: true,
            },
            // Industrial zone to the west: constant.
            GaussianPlume {
                center: Point::new(-2_200.0, -1_000.0),
                amplitude: 90.0,
                sigma: 600.0,
                diurnal: false,
            },
            // Dense old town on the hill.
            GaussianPlume {
                center: Point::new(-100.0, 1_200.0),
                amplitude: 70.0,
                sigma: 300.0,
                diurnal: true,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> SimConfig {
        SimConfig {
            duration_secs: 6 * 3_600,
            sampling_interval_secs: 60,
            seed,
            ..SimConfig::default()
        }
    }

    #[test]
    fn bus_pingpongs_along_route() {
        let line = BusLine {
            name: "test".into(),
            route: Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]),
            speed_mps: 10.0,
        };
        assert_eq!(
            line.position_at(Timestamp::from_secs(0)),
            Point::new(0.0, 0.0)
        );
        assert_eq!(
            line.position_at(Timestamp::from_secs(5)),
            Point::new(50.0, 0.0)
        );
        assert_eq!(
            line.position_at(Timestamp::from_secs(10)),
            Point::new(100.0, 0.0)
        );
        // After the terminus the bus heads back.
        assert_eq!(
            line.position_at(Timestamp::from_secs(15)),
            Point::new(50.0, 0.0)
        );
        assert_eq!(
            line.position_at(Timestamp::from_secs(20)),
            Point::new(0.0, 0.0)
        );
        // Full cycle repeats.
        assert_eq!(
            line.position_at(Timestamp::from_secs(25)),
            Point::new(50.0, 0.0)
        );
    }

    #[test]
    fn generate_expected_tuple_count() {
        let sim = LausanneSim::lausanne(small_config(1));
        let ds = sim.generate();
        // 6 h at 60 s × 2 buses = 720 tuples.
        assert_eq!(ds.len(), 720);
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let a = LausanneSim::lausanne(small_config(7)).generate();
        let b = LausanneSim::lausanne(small_config(7)).generate();
        assert_eq!(a, b);
        let c = LausanneSim::lausanne(small_config(8)).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn tuples_are_time_sorted_and_finite() {
        let ds = LausanneSim::lausanne(small_config(2)).generate();
        for w in ds.tuples().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(ds.tuples().iter().all(RawTuple::is_finite));
    }

    #[test]
    fn positions_hug_the_corridors() {
        let sim = LausanneSim::lausanne(small_config(3));
        let ds = sim.generate();
        // Every sample must be within a few GPS sigmas of some route.
        let max_gps = 6.0 * sim.config().gps_noise_std;
        for t in ds.tuples() {
            let d = sim
                .lines()
                .iter()
                .map(|l| l.route.project(&t.pos).0)
                .fold(f64::INFINITY, f64::min);
            assert!(d <= max_gps, "sample {d} m off-route");
        }
    }

    #[test]
    fn values_near_field_truth() {
        let sim = LausanneSim::lausanne(SimConfig {
            gps_noise_std: 0.0,
            ..small_config(4)
        });
        let ds = sim.generate();
        let noise = sim.config().sensor_noise_std;
        let mut worst: f64 = 0.0;
        for t in ds.tuples() {
            let truth = sim.true_value(t.time, &t.pos);
            worst = worst.max((t.value - truth).abs());
        }
        // All within 6 sigma, and noise is actually present.
        assert!(worst <= 6.0 * noise, "worst deviation {worst}");
        assert!(worst > 0.0);
    }

    #[test]
    fn query_workload_near_corridors_and_in_time_range() {
        let sim = LausanneSim::lausanne(small_config(5));
        let qs = sim.query_workload(500, 400.0, 42);
        assert_eq!(qs.len(), 500);
        for q in &qs {
            assert!(q.time.as_secs() >= 0 && q.time.as_secs() < 6 * 3_600);
            let d = sim
                .lines()
                .iter()
                .map(|l| l.route.project(&q.pos).0)
                .fold(f64::INFINITY, f64::min);
            assert!(d < 400.0 * 6.0);
        }
    }

    #[test]
    fn query_workload_deterministic() {
        let sim = LausanneSim::lausanne(small_config(5));
        assert_eq!(
            sim.query_workload(50, 100.0, 1),
            sim.query_workload(50, 100.0, 1)
        );
    }

    #[test]
    fn continuous_trajectory_uniform_interval() {
        let sim = LausanneSim::lausanne(small_config(6));
        let traj = sim.continuous_trajectory(100, 30, 9);
        assert_eq!(traj.len(), 100);
        for w in traj.windows(2) {
            assert_eq!(w[1].time - w[0].time, 30);
        }
    }

    #[test]
    fn paper_scale_tuple_count_close_to_176k() {
        let sim = LausanneSim::paper_scale(0);
        let ticks = sim.config().duration_secs / sim.config().sampling_interval_secs;
        let expected = (ticks * 2) as usize;
        assert!(
            (150_000..200_000).contains(&expected),
            "paper-scale count {expected}"
        );
    }

    #[test]
    fn pollutant_scaled_scenarios_are_plausible() {
        for pollutant in [Pollutant::Co, Pollutant::Pm25, Pollutant::No2] {
            let sim = LausanneSim::lausanne_for(pollutant, small_config(31));
            let ds = sim.generate();
            assert_eq!(ds.pollutant(), pollutant);
            let stats = ds.stats().unwrap();
            let (lo, hi) = pollutant.normal_range();
            // Values live inside a generously padded ambient range.
            let pad = (hi - lo) * 0.25;
            assert!(stats.min > lo - pad, "{pollutant}: min {}", stats.min);
            assert!(stats.max < hi + pad, "{pollutant}: max {}", stats.max);
            // And they actually vary (the field is not flat).
            assert!(stats.std_dev > (hi - lo) * 0.005, "{pollutant}");
        }
    }

    #[test]
    fn pollutant_scaled_noise_tracks_range() {
        let co = LausanneSim::lausanne_for(Pollutant::Co, small_config(32));
        let pm = LausanneSim::lausanne_for(Pollutant::Pm25, small_config(32));
        let ratio = co.config().sensor_noise_std / pm.config().sensor_noise_std;
        let expected = Pollutant::Co.normal_range_width() / Pollutant::Pm25.normal_range_width();
        assert!((ratio - expected).abs() < 1e-9);
    }

    #[test]
    fn co2_scaled_field_close_to_handtuned() {
        // The generic scaling reproduces the hand-tuned CO2 field closely.
        let generic = lausanne_field_for(Pollutant::Co2);
        let tuned = lausanne_co2_field();
        let t = Timestamp::from_hours(8);
        for p in [Point::new(0.0, -200.0), Point::new(-2_000.0, 0.0)] {
            let a = generic.value(t, &p);
            let b = tuned.value(t, &p);
            assert!((a - b).abs() < 30.0, "{a} vs {b}");
        }
    }

    #[test]
    fn field_varies_over_space() {
        // Sanity: the standard field is not constant — Ad-KMN has something
        // to adapt to.
        let f = lausanne_co2_field();
        let t = Timestamp::from_hours(8);
        let a = f.value(t, &Point::new(0.0, -200.0));
        let b = f.value(t, &Point::new(-3_000.0, -1_500.0));
        assert!((a - b).abs() > 30.0, "field too flat: {a} vs {b}");
    }
}
