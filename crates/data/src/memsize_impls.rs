//! [`DeepSize`] implementations for the data model.

use crate::{Dataset, QueryTuple, RawTuple, Timestamp};
use enviro_memsize::DeepSize;

impl DeepSize for Timestamp {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl DeepSize for RawTuple {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl DeepSize for QueryTuple {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl DeepSize for Dataset {
    fn heap_size(&self) -> usize {
        // Report the allocated buffer, not just occupied slots — the same
        // quantity Pympler reports for a Python list.
        std::mem::size_of_val(self.tuples())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pollutant;
    use enviro_geo::Point;

    #[test]
    fn raw_tuple_is_flat() {
        let t = RawTuple::new(Timestamp::ZERO, Point::origin(), 1.0);
        assert_eq!(t.heap_size(), 0);
        assert_eq!(t.deep_size_of(), std::mem::size_of::<RawTuple>());
    }

    #[test]
    fn dataset_scales_with_tuples() {
        let small = Dataset::from_tuples(
            Pollutant::Co2,
            vec![RawTuple::new(Timestamp::ZERO, Point::origin(), 1.0)],
        )
        .unwrap();
        let big = Dataset::from_tuples(
            Pollutant::Co2,
            (0..100)
                .map(|i| RawTuple::new(Timestamp::from_secs(i), Point::origin(), 1.0))
                .collect(),
        )
        .unwrap();
        assert!(big.heap_size() >= 100 * std::mem::size_of::<RawTuple>());
        assert!(big.heap_size() > small.heap_size());
    }
}
