//! Raw tuples and query tuples — the paper's `b_i` and `q_l` records.

use enviro_geo::Point;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in time, in whole seconds since the epoch of the deployment.
///
/// The paper treats time as a scalar `t_i`; EnviroMeter stores it as an
/// integer second count (the OpenSense sampling interval is 60 s, so
/// sub-second resolution buys nothing) and converts to `f64` only inside the
/// regression models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The deployment epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Builds a timestamp from whole hours.
    #[inline]
    pub const fn from_hours(hours: i64) -> Self {
        Timestamp(hours * 3_600)
    }

    /// Builds a timestamp from whole days.
    #[inline]
    pub const fn from_days(days: i64) -> Self {
        Timestamp(days * 86_400)
    }

    /// Seconds since the deployment epoch.
    #[inline]
    pub const fn as_secs(&self) -> i64 {
        self.0
    }

    /// Seconds as a float, for use inside regression features.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64
    }

    /// The hour-of-day in `[0, 24)`, used by the diurnal field component.
    #[inline]
    pub fn hour_of_day(&self) -> f64 {
        (self.0.rem_euclid(86_400)) as f64 / 3_600.0
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: i64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0.div_euclid(86_400);
        let rem = self.0.rem_euclid(86_400);
        let h = rem / 3_600;
        let m = (rem % 3_600) / 60;
        let s = rem % 60;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

/// A raw sensor tuple `b_i = (t_i, x_i, y_i, s_i)`: one reading produced by
/// a community sensor at a time and position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawTuple {
    /// Sampling time `t_i`.
    pub time: Timestamp,
    /// Sampling position `(x_i, y_i)` in the projected metric plane.
    pub pos: Point,
    /// The sensed value `s_i`, in the pollutant's unit.
    pub value: f64,
}

impl RawTuple {
    /// Creates a raw tuple.
    #[inline]
    pub const fn new(time: Timestamp, pos: Point, value: f64) -> Self {
        Self { time, pos, value }
    }

    /// Returns `true` if position and value are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.pos.is_finite() && self.value.is_finite()
    }
}

/// A query tuple `q_l = (t_l, x_l, y_l)`: a mobile object asking for the
/// interpolated sensor value at its current position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTuple {
    /// Query time `t_l`.
    pub time: Timestamp,
    /// Query position `(x_l, y_l)`.
    pub pos: Point,
}

impl QueryTuple {
    /// Creates a query tuple.
    #[inline]
    pub const fn new(time: Timestamp, pos: Point) -> Self {
        Self { time, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_constructors_agree() {
        assert_eq!(Timestamp::from_hours(2), Timestamp::from_secs(7_200));
        assert_eq!(Timestamp::from_days(1), Timestamp::from_hours(24));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(100);
        assert_eq!(t + 50, Timestamp::from_secs(150));
        assert_eq!(Timestamp::from_secs(150) - t, 50);
    }

    #[test]
    fn hour_of_day_wraps() {
        assert_eq!(Timestamp::from_hours(0).hour_of_day(), 0.0);
        assert_eq!(Timestamp::from_hours(25).hour_of_day(), 1.0);
        assert_eq!(Timestamp::from_secs(86_400 + 1_800).hour_of_day(), 0.5);
    }

    #[test]
    fn hour_of_day_negative_times() {
        // One hour before the epoch is 23:00 of the previous day.
        assert_eq!(Timestamp::from_hours(-1).hour_of_day(), 23.0);
    }

    #[test]
    fn timestamps_order_by_value() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
    }

    #[test]
    fn display_formats_days_and_time() {
        let t = Timestamp::from_secs(86_400 + 3_661);
        assert_eq!(t.to_string(), "d1+01:01:01");
    }

    #[test]
    fn raw_tuple_finiteness() {
        let ok = RawTuple::new(Timestamp::ZERO, Point::new(1.0, 2.0), 400.0);
        assert!(ok.is_finite());
        let bad = RawTuple::new(Timestamp::ZERO, Point::new(1.0, 2.0), f64::NAN);
        assert!(!bad.is_finite());
    }
}
