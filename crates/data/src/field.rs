//! Ground-truth pollution fields.
//!
//! The proprietary `lausanne-data` trace gives the paper's evaluation its
//! input but *not* a ground truth — the paper measures accuracy as NRMSE
//! against held-out neighbourhood averages. The simulator substitution lets
//! us do better: sensors sample a known analytic field, so NRMSE is computed
//! against the exact value at each query position.
//!
//! A [`SyntheticField`] composes the ingredients that make urban CO₂ both
//! *smooth enough to model* and *varying enough that one global model
//! fails* (the premise of Ad-KMN):
//!
//! * a constant ambient background,
//! * a city-scale linear spatial gradient (e.g. lake shore → dense center),
//! * a diurnal cycle with morning and evening traffic peaks,
//! * a set of [`GaussianPlume`] hot-spots (intersections, industrial
//!   sources) whose strength follows the diurnal cycle.

use crate::tuple::Timestamp;
use enviro_geo::Point;

/// An analytic spatio-temporal scalar field: the "true" pollution surface
/// that community sensors sample with noise.
pub trait PollutionField {
    /// The field value at time `t` and position `p`, in the pollutant unit.
    fn value(&self, t: Timestamp, p: &Point) -> f64;
}

/// A diurnal (24-hour) modulation profile with two traffic peaks.
///
/// Produces a dimensionless factor in `[0, 1]`: 0 at deep night, 1 at the
/// strongest peak. The profile is the sum of two Gaussian bumps over
/// hour-of-day, wrapped across midnight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCycle {
    /// Hour of the morning peak (e.g. 8.0).
    pub morning_peak: f64,
    /// Hour of the evening peak (e.g. 18.0).
    pub evening_peak: f64,
    /// Width (standard deviation, hours) of each peak.
    pub width_hours: f64,
}

impl DiurnalCycle {
    /// The standard commuter profile: peaks at 08:00 and 18:00, 2.5 h wide.
    pub const COMMUTER: DiurnalCycle = DiurnalCycle {
        morning_peak: 8.0,
        evening_peak: 18.0,
        width_hours: 2.5,
    };

    /// The modulation factor at time `t`, in `[0, 1]`.
    pub fn factor(&self, t: Timestamp) -> f64 {
        let h = t.hour_of_day();
        let bump = |peak: f64| -> f64 {
            // Wrap the hour difference onto [-12, 12] so 23:00 is 9 h from
            // 08:00, not 15 h.
            let mut d = h - peak;
            if d > 12.0 {
                d -= 24.0;
            } else if d < -12.0 {
                d += 24.0;
            }
            (-0.5 * (d / self.width_hours).powi(2)).exp()
        };
        (bump(self.morning_peak) + bump(self.evening_peak)).min(1.0)
    }
}

/// A stationary Gaussian concentration plume centered on a hot-spot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPlume {
    /// Plume center (intersection, industrial stack, …).
    pub center: Point,
    /// Peak concentration contribution at the center, in the pollutant unit.
    pub amplitude: f64,
    /// Spatial spread (standard deviation) in meters.
    pub sigma: f64,
    /// If `true`, the plume strength is modulated by the diurnal cycle
    /// (traffic hot-spot); if `false` it is constant (industrial source).
    pub diurnal: bool,
}

impl GaussianPlume {
    /// The plume's contribution at position `p`, before diurnal modulation.
    pub fn spatial_contribution(&self, p: &Point) -> f64 {
        let d2 = self.center.distance_sq(p);
        self.amplitude * (-0.5 * d2 / (self.sigma * self.sigma)).exp()
    }
}

/// The composed synthetic field used by the Lausanne simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticField {
    /// Ambient background level (e.g. 420 ppm CO₂).
    pub background: f64,
    /// Linear spatial gradient `(∂s/∂x, ∂s/∂y)` in unit per meter.
    pub gradient: (f64, f64),
    /// Amplitude of the city-wide diurnal swing, added uniformly.
    pub diurnal_amplitude: f64,
    /// The diurnal profile shared by the uniform swing and traffic plumes.
    pub cycle: DiurnalCycle,
    /// Local hot-spots.
    pub plumes: Vec<GaussianPlume>,
}

impl SyntheticField {
    /// A flat, time-invariant field — useful as a degenerate test case.
    pub fn constant(level: f64) -> Self {
        Self {
            background: level,
            gradient: (0.0, 0.0),
            diurnal_amplitude: 0.0,
            cycle: DiurnalCycle::COMMUTER,
            plumes: Vec::new(),
        }
    }
}

impl PollutionField for SyntheticField {
    fn value(&self, t: Timestamp, p: &Point) -> f64 {
        let diurnal = self.cycle.factor(t);
        let mut v = self.background
            + self.gradient.0 * p.x
            + self.gradient.1 * p.y
            + self.diurnal_amplitude * diurnal;
        for plume in &self.plumes {
            let c = plume.spatial_contribution(p);
            v += if plume.diurnal { c * diurnal } else { c };
        }
        v
    }
}

impl<F: PollutionField + ?Sized> PollutionField for &F {
    fn value(&self, t: Timestamp, p: &Point) -> f64 {
        (**self).value(t, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_is_constant() {
        let f = SyntheticField::constant(400.0);
        assert_eq!(f.value(Timestamp::ZERO, &Point::origin()), 400.0);
        assert_eq!(
            f.value(Timestamp::from_hours(13), &Point::new(1e4, -3e3)),
            400.0
        );
    }

    #[test]
    fn diurnal_factor_bounded() {
        let c = DiurnalCycle::COMMUTER;
        for h in 0..48 {
            let f = c.factor(Timestamp::from_hours(h));
            assert!((0.0..=1.0).contains(&f), "hour {h}: {f}");
        }
    }

    #[test]
    fn diurnal_peaks_at_rush_hours() {
        let c = DiurnalCycle::COMMUTER;
        let at = |h: f64| c.factor(Timestamp::from_secs((h * 3600.0) as i64));
        assert!(at(8.0) > at(3.0), "morning rush above deep night");
        assert!(at(18.0) > at(3.0), "evening rush above deep night");
        assert!(at(8.0) > at(12.5) * 0.99, "peak above midday lull");
    }

    #[test]
    fn diurnal_wraps_midnight() {
        let c = DiurnalCycle {
            morning_peak: 0.5,
            evening_peak: 12.0,
            width_hours: 1.0,
        };
        // 23:30 is one hour from the 00:30 peak; without wrapping it would
        // be 23 hours away and the factor would be ~0.
        let late = c.factor(Timestamp::from_secs((23.5 * 3600.0) as i64));
        assert!(late > 0.5, "got {late}");
    }

    #[test]
    fn plume_decays_with_distance() {
        let plume = GaussianPlume {
            center: Point::origin(),
            amplitude: 100.0,
            sigma: 200.0,
            diurnal: false,
        };
        let at = |x: f64| plume.spatial_contribution(&Point::new(x, 0.0));
        assert_eq!(at(0.0), 100.0);
        assert!(at(100.0) > at(200.0));
        assert!(at(200.0) > at(400.0));
        assert!(at(2_000.0) < 1e-15);
    }

    #[test]
    fn gradient_tilts_the_plane() {
        let f = SyntheticField {
            background: 400.0,
            gradient: (0.01, -0.02),
            diurnal_amplitude: 0.0,
            cycle: DiurnalCycle::COMMUTER,
            plumes: Vec::new(),
        };
        let v = f.value(Timestamp::ZERO, &Point::new(100.0, 100.0));
        assert!((v - (400.0 + 1.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn diurnal_plume_modulated_constant_plume_not() {
        let mk = |diurnal| SyntheticField {
            background: 0.0,
            gradient: (0.0, 0.0),
            diurnal_amplitude: 0.0,
            cycle: DiurnalCycle::COMMUTER,
            plumes: vec![GaussianPlume {
                center: Point::origin(),
                amplitude: 100.0,
                sigma: 100.0,
                diurnal,
            }],
        };
        let night = Timestamp::from_hours(3);
        let rush = Timestamp::from_hours(8);
        let p = Point::origin();
        let traffic = mk(true);
        let industry = mk(false);
        assert!(traffic.value(rush, &p) > traffic.value(night, &p) * 5.0);
        assert!((industry.value(rush, &p) - industry.value(night, &p)).abs() < 1e-12);
    }

    #[test]
    fn field_value_is_sum_of_components() {
        let f = SyntheticField {
            background: 400.0,
            gradient: (0.0, 0.0),
            diurnal_amplitude: 50.0,
            cycle: DiurnalCycle::COMMUTER,
            plumes: vec![GaussianPlume {
                center: Point::origin(),
                amplitude: 80.0,
                sigma: 100.0,
                diurnal: false,
            }],
        };
        let t = Timestamp::from_hours(8);
        let expected = 400.0 + 50.0 * f.cycle.factor(t) + 80.0;
        assert!((f.value(t, &Point::origin()) - expected).abs() < 1e-9);
    }
}
