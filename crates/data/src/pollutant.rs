//! Pollutant catalogue: units, normal ranges, and OSHA safety bands.
//!
//! The paper's approximation error is "the average percentage error compared
//! to the *normal range* of `s_i` in the environment (pollutant specific)"
//! (footnote 1), and the demo app classifies route points "from green (safe)
//! to red (hazardous CO₂ levels)" against OSHA guidelines. Both facts live
//! here.

use std::fmt;
use std::str::FromStr;

/// A pollutant monitored by the community sensor network.
///
/// The OpenSense buses carry sensors for several species; the paper's
/// evaluation focuses on CO₂ but the platform is pollutant-generic
/// ("the sensor value could be any of the pollutants that are typically
/// monitored").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pollutant {
    /// Carbon dioxide, in parts per million (ppm). The paper's evaluation
    /// pollutant.
    #[default]
    Co2,
    /// Carbon monoxide, in ppm.
    Co,
    /// Nitrogen dioxide, in parts per billion (ppb).
    No2,
    /// Ozone, in ppb.
    O3,
    /// Coarse particulate matter (PM₁₀), in µg/m³.
    Pm10,
    /// Fine particulate matter (PM₂.₅), in µg/m³.
    Pm25,
}

/// Safety classification of a concentration against occupational guidelines,
/// rendered green → red in the demo UIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SafetyLevel {
    /// Typical ambient levels; shown green.
    Safe,
    /// Elevated but below the 8-hour exposure limit; shown yellow.
    Moderate,
    /// Above the 8-hour time-weighted-average limit; shown orange.
    Unhealthy,
    /// Above the short-term exposure limit; shown red.
    Hazardous,
}

impl Pollutant {
    /// All catalogued pollutants.
    pub const ALL: [Pollutant; 6] = [
        Pollutant::Co2,
        Pollutant::Co,
        Pollutant::No2,
        Pollutant::O3,
        Pollutant::Pm10,
        Pollutant::Pm25,
    ];

    /// Measurement unit for reporting.
    pub fn unit(&self) -> &'static str {
        match self {
            Pollutant::Co2 | Pollutant::Co => "ppm",
            Pollutant::No2 | Pollutant::O3 => "ppb",
            Pollutant::Pm10 | Pollutant::Pm25 => "µg/m³",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Pollutant::Co2 => "CO2",
            Pollutant::Co => "CO",
            Pollutant::No2 => "NO2",
            Pollutant::O3 => "O3",
            Pollutant::Pm10 => "PM10",
            Pollutant::Pm25 => "PM2.5",
        }
    }

    /// The environmental *normal range* `(lo, hi)` of the pollutant — the
    /// span of concentrations ordinarily observed **outdoors in the
    /// environment** (the paper's footnote 1). The width `hi - lo` is the
    /// denominator of the paper's approximation-error percentage.
    ///
    /// Note this is deliberately the *ambient* span, not the much wider
    /// occupational-exposure span used by [`Pollutant::classify`]: τ_n is a
    /// modeling-fidelity knob, and a denominator of thousands of ppm would
    /// let a 2 % threshold tolerate ~100 ppm of error — coarser than the
    /// phenomenon itself.
    pub fn normal_range(&self) -> (f64, f64) {
        match self {
            // Outdoor urban CO₂: clean-air ~350 up to heavy-traffic ~1500.
            Pollutant::Co2 => (350.0, 1_500.0),
            // Outdoor CO: clean air <1 up to severe congestion ~30 ppm.
            Pollutant::Co => (0.0, 30.0),
            Pollutant::No2 => (0.0, 200.0),
            Pollutant::O3 => (0.0, 150.0),
            Pollutant::Pm10 => (0.0, 150.0),
            Pollutant::Pm25 => (0.0, 75.0),
        }
    }

    /// Width of the normal range; strictly positive for every pollutant.
    pub fn normal_range_width(&self) -> f64 {
        let (lo, hi) = self.normal_range();
        hi - lo
    }

    /// Classifies a concentration into an OSHA-style safety band.
    ///
    /// Thresholds follow OSHA guidance where it exists (CO₂: 5000 ppm 8-hour
    /// TWA, 30 000 ppm STEL; CO: 50 ppm TWA, 200 ppm ceiling) and common
    /// air-quality-index breakpoints otherwise.
    pub fn classify(&self, value: f64) -> SafetyLevel {
        let (moderate, unhealthy, hazardous) = match self {
            Pollutant::Co2 => (1_000.0, 5_000.0, 30_000.0),
            Pollutant::Co => (9.0, 50.0, 200.0),
            Pollutant::No2 => (53.0, 100.0, 360.0),
            Pollutant::O3 => (54.0, 70.0, 164.0),
            Pollutant::Pm10 => (54.0, 154.0, 354.0),
            Pollutant::Pm25 => (12.0, 35.4, 150.4),
        };
        if value >= hazardous {
            SafetyLevel::Hazardous
        } else if value >= unhealthy {
            SafetyLevel::Unhealthy
        } else if value >= moderate {
            SafetyLevel::Moderate
        } else {
            SafetyLevel::Safe
        }
    }
}

impl fmt::Display for Pollutant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Pollutant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "CO2" => Ok(Pollutant::Co2),
            "CO" => Ok(Pollutant::Co),
            "NO2" => Ok(Pollutant::No2),
            "O3" => Ok(Pollutant::O3),
            "PM10" => Ok(Pollutant::Pm10),
            "PM2.5" | "PM25" => Ok(Pollutant::Pm25),
            other => Err(format!("unknown pollutant: {other:?}")),
        }
    }
}

impl SafetyLevel {
    /// An RGB color on the demo UI's green → red scale.
    pub fn color(&self) -> (u8, u8, u8) {
        match self {
            SafetyLevel::Safe => (0, 170, 0),
            SafetyLevel::Moderate => (230, 200, 0),
            SafetyLevel::Unhealthy => (240, 130, 0),
            SafetyLevel::Hazardous => (200, 0, 0),
        }
    }

    /// The advisory text shown in the route summary of the Android app.
    pub fn advisory(&self) -> &'static str {
        match self {
            SafetyLevel::Safe => "acceptable according to OSHA guidelines",
            SafetyLevel::Moderate => "elevated; acceptable for short exposure",
            SafetyLevel::Unhealthy => "above the OSHA 8-hour exposure limit",
            SafetyLevel::Hazardous => "hazardous; above the short-term exposure limit",
        }
    }
}

impl fmt::Display for SafetyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SafetyLevel::Safe => "safe",
            SafetyLevel::Moderate => "moderate",
            SafetyLevel::Unhealthy => "unhealthy",
            SafetyLevel::Hazardous => "hazardous",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_ranges_are_positive_width() {
        for p in Pollutant::ALL {
            assert!(p.normal_range_width() > 0.0, "{p}");
        }
    }

    #[test]
    fn co2_classification_follows_osha() {
        let p = Pollutant::Co2;
        assert_eq!(p.classify(420.0), SafetyLevel::Safe);
        assert_eq!(p.classify(999.9), SafetyLevel::Safe);
        assert_eq!(p.classify(1_000.0), SafetyLevel::Moderate);
        assert_eq!(p.classify(5_000.0), SafetyLevel::Unhealthy);
        assert_eq!(p.classify(30_000.0), SafetyLevel::Hazardous);
    }

    #[test]
    fn classification_is_monotone_in_value() {
        for p in Pollutant::ALL {
            let mut last = SafetyLevel::Safe;
            for v in [0.0, 5.0, 50.0, 500.0, 5_000.0, 50_000.0] {
                let lvl = p.classify(v);
                assert!(lvl >= last, "{p} at {v}");
                last = lvl;
            }
        }
    }

    #[test]
    fn safety_levels_are_ordered() {
        assert!(SafetyLevel::Safe < SafetyLevel::Moderate);
        assert!(SafetyLevel::Moderate < SafetyLevel::Unhealthy);
        assert!(SafetyLevel::Unhealthy < SafetyLevel::Hazardous);
    }

    #[test]
    fn parse_roundtrips_display() {
        for p in Pollutant::ALL {
            let parsed: Pollutant = p.name().parse().expect("parse back");
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("co2".parse::<Pollutant>().unwrap(), Pollutant::Co2);
        assert_eq!(" pm2.5 ".parse::<Pollutant>().unwrap(), Pollutant::Pm25);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("SO2".parse::<Pollutant>().is_err());
    }

    #[test]
    fn colors_go_green_to_red() {
        let (r0, g0, _) = SafetyLevel::Safe.color();
        let (r3, g3, _) = SafetyLevel::Hazardous.color();
        assert!(g0 > r0, "safe is green-dominant");
        assert!(r3 > g3, "hazardous is red-dominant");
    }

    #[test]
    fn units_are_stable() {
        assert_eq!(Pollutant::Co2.unit(), "ppm");
        assert_eq!(Pollutant::Pm25.unit(), "µg/m³");
    }
}
