//! Sensor-data model for the EnviroMeter platform.
//!
//! This crate owns everything about the *data* side of a Large-area
//! Community-driven Sensor Network (LCSN):
//!
//! * [`Pollutant`] — the monitored phenomena (CO₂, CO, particulates, …) with
//!   their units, *normal ranges* (the denominator of the paper's
//!   approximation-error metric) and OSHA exposure bands.
//! * [`RawTuple`] — the paper's `b_i = (t_i, x_i, y_i, s_i)` record, and
//!   [`QueryTuple`] — the mobile object's `q_l = (t_l, x_l, y_l)`.
//! * [`Dataset`] — a time-ordered collection of raw tuples with metadata,
//!   summary statistics and CSV import/export.
//! * [`window`] — count-based and duration-based window decompositions
//!   (`W_c`), the unit over which model covers are learned.
//! * [`field`] — ground-truth pollution fields (background + diurnal cycle +
//!   plume sources), giving the NRMSE evaluation an exact reference.
//! * [`sim`] — the `lausanne-sim` generator: two buses driving fixed routes
//!   through a Lausanne-like street network, sampling the field every 60 s
//!   with sensor noise. This substitutes for the proprietary OpenSense
//!   `lausanne-data` trace (176 K tuples over one month) while reproducing
//!   its defining property: geo-temporal skew along bus corridors.

#![forbid(unsafe_code)]
// Panic-prone sites in this crate are legacy debt tracked by the xtask
// panic ratchet (crates/xtask/panic-baseline.toml): counts may only go
// down. The clippy warn-level lints stay crate-allowed until the burn-down
// reaches zero; prefer typed errors in new code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod dataset;
pub mod field;
mod memsize_impls;
pub mod pollutant;
pub mod sim;
pub mod tuple;
pub mod window;

pub use dataset::{Dataset, DatasetStats};
pub use field::{DiurnalCycle, GaussianPlume, PollutionField, SyntheticField};
pub use pollutant::{Pollutant, SafetyLevel};
pub use sim::{BusLine, LausanneSim, SimConfig};
pub use tuple::{QueryTuple, RawTuple, Timestamp};
pub use window::{Window, WindowSpec, Windows};
