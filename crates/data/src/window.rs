//! Window decomposition of a dataset — the paper's `W_c`.
//!
//! Model covers are learned per *window* of raw tuples,
//! `W_c = ⟨b_i | c·H ≤ t_i < (c+1)·H⟩`. The paper uses `H` in two senses:
//! a duration (the formula above) and a tuple count ("a varying window size
//! H from 40 to 240 raw tuples"). [`WindowSpec`] supports both.

use crate::dataset::{stats_of, Dataset, DatasetStats};
use crate::tuple::{RawTuple, Timestamp};

/// How a dataset is decomposed into windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Consecutive windows of exactly `n` tuples (the last window may be
    /// shorter). This is the paper's evaluation regime (`H` = 40…240
    /// tuples).
    ByCount(usize),
    /// Windows of `secs` seconds aligned to the epoch:
    /// window `c` holds tuples with `c·secs ≤ t < (c+1)·secs`.
    ByDuration(i64),
}

impl WindowSpec {
    /// The window id `c` that a timestamp falls into.
    ///
    /// Only meaningful for duration-based windows; count-based windows are
    /// defined by tuple position, not by time, so this returns `None` for
    /// [`WindowSpec::ByCount`].
    pub fn window_id_at(&self, time: Timestamp) -> Option<u64> {
        match self {
            WindowSpec::ByCount(_) => None,
            WindowSpec::ByDuration(secs) => Some(time.as_secs().div_euclid(*secs) as u64),
        }
    }
}

/// One window `W_c`: a view over a contiguous, time-sorted run of tuples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window<'a> {
    /// The window id `c`.
    pub id: u64,
    /// The tuples of the window, time-sorted.
    pub tuples: &'a [RawTuple],
    /// The end of the window's validity: for duration windows, `(c+1)·H`;
    /// for count windows, the time of the last tuple (the cover learned from
    /// this window is superseded as soon as newer data arrives).
    pub valid_until: Timestamp,
}

impl Window<'_> {
    /// Number of tuples in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` if the window holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Summary statistics of the window's sensed values.
    pub fn stats(&self) -> Option<DatasetStats> {
        stats_of(self.tuples)
    }
}

/// Iterator over the windows of a dataset under a [`WindowSpec`].
#[derive(Debug)]
pub struct Windows<'a> {
    tuples: &'a [RawTuple],
    spec: WindowSpec,
    /// Next tuple offset (ByCount) .
    offset: usize,
    /// Next window id.
    next_id: u64,
}

impl<'a> Windows<'a> {
    /// Creates the window iterator for `dataset`.
    ///
    /// # Panics
    /// Panics if the spec is degenerate (`ByCount(0)` or a non-positive
    /// duration).
    pub fn new(dataset: &'a Dataset, spec: WindowSpec) -> Self {
        Self::over(dataset.tuples(), spec)
    }

    /// Creates the window iterator over an arbitrary time-sorted slice.
    pub fn over(tuples: &'a [RawTuple], spec: WindowSpec) -> Self {
        match spec {
            WindowSpec::ByCount(n) => assert!(n > 0, "window size must be positive"),
            WindowSpec::ByDuration(s) => {
                assert!(s > 0, "window duration must be positive")
            }
        }
        let next_id = match (spec, tuples.first()) {
            // Duration windows are epoch-aligned: start at the window
            // containing the first tuple.
            (WindowSpec::ByDuration(secs), Some(first)) => {
                first.time.as_secs().div_euclid(secs) as u64
            }
            _ => 0,
        };
        Self {
            tuples,
            spec,
            offset: 0,
            next_id,
        }
    }
}

impl<'a> Iterator for Windows<'a> {
    type Item = Window<'a>;

    fn next(&mut self) -> Option<Window<'a>> {
        if self.offset >= self.tuples.len() {
            return None;
        }
        match self.spec {
            WindowSpec::ByCount(n) => {
                let end = (self.offset + n).min(self.tuples.len());
                let tuples = &self.tuples[self.offset..end];
                let id = self.next_id;
                self.offset = end;
                self.next_id += 1;
                Some(Window {
                    id,
                    tuples,
                    valid_until: tuples.last().expect("non-empty by construction").time,
                })
            }
            WindowSpec::ByDuration(secs) => {
                // Skip empty windows: advance to the window containing the
                // next tuple.
                let first = &self.tuples[self.offset];
                let id = (first.time.as_secs().div_euclid(secs) as u64).max(self.next_id);
                let window_end = Timestamp::from_secs((id as i64 + 1) * secs);
                let rest = &self.tuples[self.offset..];
                let n = rest.partition_point(|t| t.time < window_end);
                let tuples = &rest[..n];
                self.offset += n;
                self.next_id = id + 1;
                Some(Window {
                    id,
                    tuples,
                    valid_until: window_end,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pollutant::Pollutant;
    use enviro_geo::Point;

    fn ds(times: &[i64]) -> Dataset {
        Dataset::from_tuples(
            Pollutant::Co2,
            times
                .iter()
                .map(|&s| RawTuple::new(Timestamp::from_secs(s), Point::origin(), 1.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn by_count_partitions_exactly() {
        let d = ds(&[1, 2, 3, 4, 5, 6]);
        let ws: Vec<_> = Windows::new(&d, WindowSpec::ByCount(2)).collect();
        assert_eq!(ws.len(), 3);
        assert!(ws.iter().all(|w| w.len() == 2));
        assert_eq!(ws[0].id, 0);
        assert_eq!(ws[2].id, 2);
    }

    #[test]
    fn by_count_last_window_short() {
        let d = ds(&[1, 2, 3, 4, 5]);
        let ws: Vec<_> = Windows::new(&d, WindowSpec::ByCount(2)).collect();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[2].len(), 1);
    }

    #[test]
    fn by_count_covers_every_tuple_once() {
        let d = ds(&[1, 2, 3, 4, 5, 6, 7]);
        let total: usize = Windows::new(&d, WindowSpec::ByCount(3))
            .map(|w| w.len())
            .sum();
        assert_eq!(total, d.len());
    }

    #[test]
    fn by_count_valid_until_is_last_tuple_time() {
        let d = ds(&[10, 20, 30]);
        let ws: Vec<_> = Windows::new(&d, WindowSpec::ByCount(2)).collect();
        assert_eq!(ws[0].valid_until.as_secs(), 20);
        assert_eq!(ws[1].valid_until.as_secs(), 30);
    }

    #[test]
    fn by_duration_half_open_boundaries() {
        // Window length 100: t = 100 belongs to window 1, not window 0.
        let d = ds(&[0, 50, 100, 150, 200]);
        let ws: Vec<_> = Windows::new(&d, WindowSpec::ByDuration(100)).collect();
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].len(), 2); // 0, 50
        assert_eq!(ws[1].len(), 2); // 100, 150
        assert_eq!(ws[2].len(), 1); // 200
        assert_eq!(ws[0].id, 0);
        assert_eq!(ws[1].id, 1);
        assert_eq!(ws[2].id, 2);
    }

    #[test]
    fn by_duration_valid_until_is_window_end() {
        let d = ds(&[0, 250]);
        let ws: Vec<_> = Windows::new(&d, WindowSpec::ByDuration(100)).collect();
        assert_eq!(ws[0].valid_until.as_secs(), 100);
        assert_eq!(ws[1].valid_until.as_secs(), 300);
    }

    #[test]
    fn by_duration_skips_empty_windows() {
        let d = ds(&[10, 910]);
        let ws: Vec<_> = Windows::new(&d, WindowSpec::ByDuration(100)).collect();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].id, 0);
        assert_eq!(ws[1].id, 9);
    }

    #[test]
    fn by_duration_starts_at_first_tuple_window() {
        let d = ds(&[950, 1010]);
        let ws: Vec<_> = Windows::new(&d, WindowSpec::ByDuration(100)).collect();
        assert_eq!(ws[0].id, 9);
        assert_eq!(ws[1].id, 10);
    }

    #[test]
    fn window_id_at_duration() {
        let spec = WindowSpec::ByDuration(3_600);
        assert_eq!(spec.window_id_at(Timestamp::from_secs(0)), Some(0));
        assert_eq!(spec.window_id_at(Timestamp::from_secs(3_599)), Some(0));
        assert_eq!(spec.window_id_at(Timestamp::from_secs(3_600)), Some(1));
        assert_eq!(WindowSpec::ByCount(40).window_id_at(Timestamp::ZERO), None);
    }

    #[test]
    fn empty_dataset_yields_no_windows() {
        let d = Dataset::new(Pollutant::Co2);
        assert_eq!(Windows::new(&d, WindowSpec::ByCount(10)).count(), 0);
        assert_eq!(Windows::new(&d, WindowSpec::ByDuration(60)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_count_panics() {
        let d = ds(&[1]);
        let _ = Windows::new(&d, WindowSpec::ByCount(0));
    }

    #[test]
    fn window_stats_present() {
        let d = ds(&[1, 2]);
        let w = Windows::new(&d, WindowSpec::ByCount(2)).next().unwrap();
        assert_eq!(w.stats().unwrap().count, 2);
    }
}
