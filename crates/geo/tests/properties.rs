//! Property-based tests for the geometric primitives.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_geo::{BoundingBox, GeoPoint, Grid, LocalProjection, Point, Polyline};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e5..1.0e5
}

fn arb_point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let slack = 1e-6 * (1.0 + a.distance(&c));
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + slack);
    }

    #[test]
    fn distance_nonnegative_and_symmetric(a in arb_point(), b in arb_point()) {
        prop_assert!(a.distance(&b) >= 0.0);
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
    }

    #[test]
    fn bbox_union_contains_operands(
        pts_a in prop::collection::vec(arb_point(), 1..20),
        pts_b in prop::collection::vec(arb_point(), 1..20),
    ) {
        let a = BoundingBox::from_points(pts_a.iter().copied());
        let b = BoundingBox::from_points(pts_b.iter().copied());
        let u = a.union(&b);
        for p in pts_a.iter().chain(pts_b.iter()) {
            prop_assert!(u.contains(p));
        }
        prop_assert!(u.contains_box(&a) && u.contains_box(&b));
    }

    #[test]
    fn bbox_min_distance_lower_bounds_member_distance(
        pts in prop::collection::vec(arb_point(), 1..30),
        q in arb_point(),
    ) {
        let bb = BoundingBox::from_points(pts.iter().copied());
        let bound = bb.min_distance(&q);
        for p in &pts {
            prop_assert!(bound <= q.distance(p) + 1e-9);
        }
    }

    #[test]
    fn bbox_intersects_is_symmetric(
        a1 in arb_point(), a2 in arb_point(),
        b1 in arb_point(), b2 in arb_point(),
    ) {
        let a = BoundingBox::new(a1, a2);
        let b = BoundingBox::new(b1, b2);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn grid_cell_of_agrees_with_cell_bounds(
        x in 0.0..1000.0f64,
        y in 0.0..1000.0f64,
        cols in 1u32..30,
        rows in 1u32..30,
    ) {
        let g = Grid::new(
            BoundingBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            cols,
            rows,
        );
        let p = Point::new(x, y);
        let cell = g.cell_of(&p).expect("inside extent");
        prop_assert!(g.cell_bounds(cell).contains(&p));
    }

    #[test]
    fn grid_cells_in_radius_covers_containing_cell(
        x in 0.0..1000.0f64,
        y in 0.0..1000.0f64,
        radius in 0.0..500.0f64,
    ) {
        let g = Grid::new(
            BoundingBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            16,
            16,
        );
        let p = Point::new(x, y);
        let cells = g.cells_in_radius(&p, radius);
        let home = g.cell_of(&p).expect("inside extent");
        prop_assert!(cells.contains(&home));
    }

    #[test]
    fn projection_roundtrip(lat in 46.0..47.0f64, lon in 6.0..7.0f64) {
        let proj = LocalProjection::lausanne();
        let g = GeoPoint::new(lat, lon);
        let back = proj.unproject(&proj.project(&g));
        prop_assert!((back.lat - lat).abs() < 1e-9);
        prop_assert!((back.lon - lon).abs() < 1e-9);
    }

    #[test]
    fn polyline_point_at_lies_near_vertices_hull(
        vs in prop::collection::vec(arb_point(), 2..10),
        frac in 0.0..1.0f64,
    ) {
        let pl = Polyline::new(vs.clone());
        let p = pl.point_at(frac * pl.length());
        let hull = BoundingBox::from_points(vs);
        prop_assert!(hull.padded(1e-6).contains(&p));
    }

    #[test]
    fn polyline_projection_distance_at_most_vertex_distance(
        vs in prop::collection::vec(arb_point(), 2..10),
        q in arb_point(),
    ) {
        let pl = Polyline::new(vs.clone());
        let (d, s) = pl.project(&q);
        // The projected distance can never exceed the distance to any vertex.
        for v in &vs {
            prop_assert!(d <= q.distance(v) + 1e-6);
        }
        prop_assert!((0.0..=pl.length() + 1e-9).contains(&s));
    }
}
