//! Uniform grid decomposition of a bounding box.
//!
//! Two EnviroMeter components are grid-shaped: the *grid index* baseline in
//! `enviro-index` (bucketing raw tuples by cell) and the *heatmap service* in
//! `enviro-meter` (evaluating the model cover at cell centers). Both share
//! this geometry-only [`Grid`] type.

use crate::{BoundingBox, Point};

/// Identifier of a grid cell: column (`col`) and row (`row`) indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Zero-based column (west → east).
    pub col: u32,
    /// Zero-based row (south → north).
    pub row: u32,
}

impl CellId {
    /// Creates a cell id.
    pub const fn new(col: u32, row: u32) -> Self {
        Self { col, row }
    }
}

/// A uniform grid laid over a bounding box.
///
/// The extent is divided into `cols × rows` equal cells. Points on the shared
/// edge of two cells belong to the cell with the larger index, except on the
/// outer max edge, which is clamped inward so the whole closed extent maps to
/// a valid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    extent: BoundingBox,
    cols: u32,
    rows: u32,
    cell_w: f64,
    cell_h: f64,
}

impl Grid {
    /// Creates a grid with the given cell counts.
    ///
    /// # Panics
    /// Panics if `cols` or `rows` is zero or the extent is empty.
    pub fn new(extent: BoundingBox, cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert!(!extent.is_empty(), "grid extent must be non-empty");
        Self {
            extent,
            cols,
            rows,
            cell_w: extent.width() / cols as f64,
            cell_h: extent.height() / rows as f64,
        }
    }

    /// Creates a grid whose cells are approximately `cell_size` meters wide,
    /// covering `extent` (the last row/column may be narrower logically but
    /// the grid always spans the full extent with equal cells).
    pub fn with_cell_size(extent: BoundingBox, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let cols = (extent.width() / cell_size).ceil().max(1.0) as u32;
        let rows = (extent.height() / cell_size).ceil().max(1.0) as u32;
        Self::new(extent, cols, rows)
    }

    /// The covered extent.
    #[inline]
    pub fn extent(&self) -> &BoundingBox {
        &self.extent
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Always `false`: a grid has at least one cell by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Width × height of one cell, in meters.
    #[inline]
    pub fn cell_size(&self) -> (f64, f64) {
        (self.cell_w, self.cell_h)
    }

    /// Maps a point to its cell, or `None` if outside the extent.
    pub fn cell_of(&self, p: &Point) -> Option<CellId> {
        if !self.extent.contains(p) {
            return None;
        }
        let col = ((p.x - self.extent.min.x) / self.cell_w) as u32;
        let row = ((p.y - self.extent.min.y) / self.cell_h) as u32;
        Some(CellId::new(col.min(self.cols - 1), row.min(self.rows - 1)))
    }

    /// Flattened index of a cell (row-major), for dense per-cell storage.
    #[inline]
    pub fn flat_index(&self, cell: CellId) -> usize {
        cell.row as usize * self.cols as usize + cell.col as usize
    }

    /// Inverse of [`Grid::flat_index`].
    #[inline]
    pub fn cell_from_flat(&self, idx: usize) -> CellId {
        CellId::new(
            (idx % self.cols as usize) as u32,
            (idx / self.cols as usize) as u32,
        )
    }

    /// The bounding box of a cell.
    pub fn cell_bounds(&self, cell: CellId) -> BoundingBox {
        let min = Point::new(
            self.extent.min.x + cell.col as f64 * self.cell_w,
            self.extent.min.y + cell.row as f64 * self.cell_h,
        );
        BoundingBox::new(min, Point::new(min.x + self.cell_w, min.y + self.cell_h))
    }

    /// The center of a cell — the sample position used by the heatmap.
    pub fn cell_center(&self, cell: CellId) -> Point {
        Point::new(
            self.extent.min.x + (cell.col as f64 + 0.5) * self.cell_w,
            self.extent.min.y + (cell.row as f64 + 0.5) * self.cell_h,
        )
    }

    /// Visits every cell intersecting the disk of `radius` around `p`,
    /// without allocating.
    ///
    /// The visit is conservative at cell granularity: every visited cell's
    /// box intersects the disk; cells arrive in row-major order. This is
    /// the radius-scan primitive of the serving hot path, so it must not
    /// heap-allocate per call — collectors should go through
    /// [`Grid::cells_in_radius`] instead.
    pub fn for_each_cell_in_radius(&self, p: &Point, radius: f64, visit: &mut dyn FnMut(CellId)) {
        let lo_x = (p.x - radius).max(self.extent.min.x);
        let hi_x = (p.x + radius).min(self.extent.max.x);
        let lo_y = (p.y - radius).max(self.extent.min.y);
        let hi_y = (p.y + radius).min(self.extent.max.y);
        if lo_x > hi_x || lo_y > hi_y {
            return;
        }
        let c0 = (((lo_x - self.extent.min.x) / self.cell_w) as u32).min(self.cols - 1);
        let c1 = (((hi_x - self.extent.min.x) / self.cell_w) as u32).min(self.cols - 1);
        let r0 = (((lo_y - self.extent.min.y) / self.cell_h) as u32).min(self.rows - 1);
        let r1 = (((hi_y - self.extent.min.y) / self.cell_h) as u32).min(self.rows - 1);
        for row in r0..=r1 {
            for col in c0..=c1 {
                let cell = CellId::new(col, row);
                if self.cell_bounds(cell).intersects_circle(p, radius) {
                    visit(cell);
                }
            }
        }
    }

    /// Collects all cells intersecting the disk of `radius` around `p`.
    ///
    /// Allocating convenience over [`Grid::for_each_cell_in_radius`]; same
    /// conservative semantics and row-major order.
    pub fn cells_in_radius(&self, p: &Point, radius: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.for_each_cell_in_radius(p, radius, &mut |cell| out.push(cell));
        out
    }

    /// Iterates over every cell id in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.rows).flat_map(move |row| (0..self.cols).map(move |col| CellId::new(col, row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_10x10() -> Grid {
        Grid::new(
            BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            10,
            10,
        )
    }

    #[test]
    fn cell_of_interior_point() {
        let g = grid_10x10();
        assert_eq!(g.cell_of(&Point::new(5.0, 5.0)), Some(CellId::new(0, 0)));
        assert_eq!(g.cell_of(&Point::new(95.0, 15.0)), Some(CellId::new(9, 1)));
    }

    #[test]
    fn cell_of_outside_returns_none() {
        let g = grid_10x10();
        assert_eq!(g.cell_of(&Point::new(-0.1, 5.0)), None);
        assert_eq!(g.cell_of(&Point::new(5.0, 100.1)), None);
    }

    #[test]
    fn max_edge_clamps_to_last_cell() {
        let g = grid_10x10();
        assert_eq!(
            g.cell_of(&Point::new(100.0, 100.0)),
            Some(CellId::new(9, 9))
        );
    }

    #[test]
    fn shared_edge_belongs_to_higher_cell() {
        let g = grid_10x10();
        assert_eq!(g.cell_of(&Point::new(10.0, 0.0)), Some(CellId::new(1, 0)));
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = grid_10x10();
        for idx in 0..g.len() {
            assert_eq!(g.flat_index(g.cell_from_flat(idx)), idx);
        }
    }

    #[test]
    fn cell_bounds_tile_the_extent() {
        let g = grid_10x10();
        let total: f64 = g.iter_cells().map(|c| g.cell_bounds(c).area()).sum();
        assert!((total - g.extent().area()).abs() < 1e-6);
    }

    #[test]
    fn cell_center_is_inside_cell() {
        let g = grid_10x10();
        for c in g.iter_cells() {
            assert!(g.cell_bounds(c).contains(&g.cell_center(c)));
            assert_eq!(g.cell_of(&g.cell_center(c)), Some(c));
        }
    }

    #[test]
    fn with_cell_size_produces_expected_counts() {
        let extent = BoundingBox::new(Point::new(0.0, 0.0), Point::new(95.0, 42.0));
        let g = Grid::with_cell_size(extent, 10.0);
        assert_eq!(g.cols(), 10);
        assert_eq!(g.rows(), 5);
    }

    #[test]
    fn cells_in_radius_conservative_cover() {
        let g = grid_10x10();
        let center = Point::new(50.0, 50.0);
        let cells = g.cells_in_radius(&center, 15.0);
        // Every cell whose box touches the circle must be present.
        for c in g.iter_cells() {
            let should = g.cell_bounds(c).intersects_circle(&center, 15.0);
            assert_eq!(cells.contains(&c), should, "cell {c:?}");
        }
    }

    #[test]
    fn cells_in_radius_far_outside_is_empty() {
        let g = grid_10x10();
        assert!(g
            .cells_in_radius(&Point::new(500.0, 500.0), 10.0)
            .is_empty());
    }

    #[test]
    fn cells_in_radius_zero_radius() {
        let g = grid_10x10();
        let cells = g.cells_in_radius(&Point::new(55.0, 55.0), 0.0);
        assert_eq!(cells, vec![CellId::new(5, 5)]);
    }

    #[test]
    fn iter_cells_counts_match() {
        let g = Grid::new(
            BoundingBox::new(Point::new(0.0, 0.0), Point::new(4.0, 3.0)),
            4,
            3,
        );
        assert_eq!(g.iter_cells().count(), 12);
        assert_eq!(g.len(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cols_panics() {
        Grid::new(
            BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            0,
            3,
        );
    }
}
