//! [`DeepSize`] implementations for the geometric primitives.

use crate::{BoundingBox, CellId, GeoPoint, Grid, Point, Polyline};
use enviro_memsize::DeepSize;

impl DeepSize for Point {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl DeepSize for GeoPoint {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl DeepSize for BoundingBox {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl DeepSize for CellId {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl DeepSize for Grid {
    #[inline]
    fn heap_size(&self) -> usize {
        0 // all fields inline
    }
}

impl DeepSize for Polyline {
    fn heap_size(&self) -> usize {
        // Vertices plus the cumulative-length table (same length).
        std::mem::size_of_val(self.vertices()) + self.vertices().len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_is_flat() {
        assert_eq!(Point::new(1.0, 2.0).deep_size_of(), 16);
    }

    #[test]
    fn polyline_counts_vertices_and_cumlen() {
        let pl = Polyline::new(vec![Point::origin(), Point::new(1.0, 0.0)]);
        assert_eq!(pl.heap_size(), 2 * 16 + 2 * 8);
    }
}
