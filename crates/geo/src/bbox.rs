//! Axis-aligned bounding boxes in the projected plane.

use crate::Point;

/// An axis-aligned rectangle, used as the bounding volume of R-tree nodes and
/// as the extent of heatmap/grid computations.
///
/// A box is *valid* when `min.x <= max.x && min.y <= max.y`. The
/// [`BoundingBox::empty`] constructor produces the canonical empty box (an
/// inverted box), which behaves as the identity for [`BoundingBox::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BoundingBox {
    /// Creates a box from two corners, normalizing the coordinate order.
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The canonical empty box: the identity element of [`BoundingBox::union`].
    pub const fn empty() -> Self {
        Self {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// A degenerate box containing exactly one point.
    pub const fn from_point(p: Point) -> Self {
        Self { min: p, max: p }
    }

    /// The smallest box containing every point of the iterator.
    ///
    /// Returns [`BoundingBox::empty`] for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(Self::empty(), |bb, p| bb.expanded(p))
    }

    /// Returns `true` if no point is contained (inverted corners).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Box width in meters (0 for empty boxes).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Box height in meters (0 for empty boxes).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area in square meters (0 for empty boxes).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (margin); used by some R-tree split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center of the box. Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        !other.is_empty()
            && other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Returns `true` if the boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The smallest box containing `self` and `p`.
    #[inline]
    pub fn expanded(&self, p: Point) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// Grows the box by `pad` meters on every side.
    #[inline]
    pub fn padded(&self, pad: f64) -> BoundingBox {
        BoundingBox {
            min: Point::new(self.min.x - pad, self.min.y - pad),
            max: Point::new(self.max.x + pad, self.max.y + pad),
        }
    }

    /// How much the area grows if `p` were added; the classic R-tree
    /// insertion heuristic ("least enlargement").
    #[inline]
    pub fn enlargement(&self, p: Point) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.expanded(p).area() - self.area()
    }

    /// Minimum Euclidean distance from `p` to the box (0 if inside).
    ///
    /// This is the `mindist` bound driving best-first k-NN search over an
    /// R-tree.
    #[inline]
    pub fn min_distance(&self, p: &Point) -> f64 {
        self.min_distance_sq(p).sqrt()
    }

    /// Squared minimum distance from `p` to the box.
    #[inline]
    pub fn min_distance_sq(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Returns `true` if any point of the box lies within `radius` of `p`.
    #[inline]
    pub fn intersects_circle(&self, p: &Point, radius: f64) -> bool {
        !self.is_empty() && self.min_distance_sq(p) <= radius * radius
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BoundingBox {
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn new_normalizes_corners() {
        let b = BoundingBox::new(Point::new(5.0, -1.0), Point::new(-5.0, 1.0));
        assert_eq!(b.min, Point::new(-5.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 1.0));
    }

    #[test]
    fn empty_box_properties() {
        let e = BoundingBox::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.width(), 0.0);
        assert!(!e.contains(&Point::origin()));
        assert!(!e.intersects(&unit()));
    }

    #[test]
    fn empty_is_union_identity() {
        let b = unit();
        assert_eq!(BoundingBox::empty().union(&b), b);
        assert_eq!(b.union(&BoundingBox::empty()), b);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 0.5),
            Point::new(2.0, -4.0),
        ];
        let b = BoundingBox::from_points(pts);
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point::new(-3.0, -4.0));
        assert_eq!(b.max, Point::new(2.0, 2.0));
    }

    #[test]
    fn from_points_empty_iterator() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_empty());
    }

    #[test]
    fn contains_boundary_points() {
        let b = unit();
        assert!(b.contains(&Point::new(0.0, 0.0)));
        assert!(b.contains(&Point::new(1.0, 1.0)));
        assert!(b.contains(&Point::new(0.5, 1.0)));
        assert!(!b.contains(&Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn contains_box_requires_full_containment() {
        let outer = BoundingBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let inner = BoundingBox::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        let straddle = BoundingBox::new(Point::new(9.0, 9.0), Point::new(11.0, 11.0));
        assert!(outer.contains_box(&inner));
        assert!(!outer.contains_box(&straddle));
        assert!(!outer.contains_box(&BoundingBox::empty()));
    }

    #[test]
    fn intersects_shared_edge() {
        let a = unit();
        let b = BoundingBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        let c = BoundingBox::new(Point::new(1.1, 0.0), Point::new(2.0, 1.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_commutes_and_covers() {
        let a = unit();
        let b = BoundingBox::new(Point::new(5.0, 5.0), Point::new(6.0, 7.0));
        let u = a.union(&b);
        assert_eq!(u, b.union(&a));
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
    }

    #[test]
    fn enlargement_zero_when_inside() {
        let b = unit();
        assert_eq!(b.enlargement(Point::new(0.5, 0.5)), 0.0);
        assert!(b.enlargement(Point::new(2.0, 0.5)) > 0.0);
    }

    #[test]
    fn min_distance_inside_is_zero() {
        let b = unit();
        assert_eq!(b.min_distance(&Point::new(0.5, 0.5)), 0.0);
    }

    #[test]
    fn min_distance_to_corner_and_edge() {
        let b = unit();
        // Corner: (2, 2) is sqrt(2) from (1, 1).
        assert!((b.min_distance(&Point::new(2.0, 2.0)) - 2f64.sqrt()).abs() < 1e-12);
        // Edge: (0.5, 3) is 2 from the top edge.
        assert_eq!(b.min_distance(&Point::new(0.5, 3.0)), 2.0);
    }

    #[test]
    fn intersects_circle_edge_cases() {
        let b = unit();
        assert!(b.intersects_circle(&Point::new(0.5, 0.5), 0.0)); // center inside
        assert!(b.intersects_circle(&Point::new(2.0, 0.5), 1.0)); // touches edge
        assert!(!b.intersects_circle(&Point::new(2.0, 0.5), 0.99));
    }

    #[test]
    fn padded_grows_every_side() {
        let b = unit().padded(2.0);
        assert_eq!(b.min, Point::new(-2.0, -2.0));
        assert_eq!(b.max, Point::new(3.0, 3.0));
        assert_eq!(b.area(), 25.0);
    }

    #[test]
    fn margin_is_half_perimeter() {
        let b = BoundingBox::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(b.margin(), 7.0);
    }

    #[test]
    fn center_of_unit_box() {
        assert_eq!(unit().center(), Point::new(0.5, 0.5));
    }
}
