//! Local equirectangular projection between WGS-84 and the metric plane.

use crate::{GeoPoint, Point, EARTH_RADIUS_M};

/// An equirectangular local east/north projection anchored at an origin.
///
/// At city scale (tens of kilometers) an equirectangular projection with the
/// cosine of the origin latitude as the east-scale factor is accurate to a
/// few meters — far below GPS noise and below the paper's 1 km query radius.
/// EnviroMeter projects every GPS fix once, on ingestion, and performs all
/// query processing in the metric plane.
///
/// ```
/// use enviro_geo::{GeoPoint, LocalProjection};
///
/// let proj = LocalProjection::new(GeoPoint::new(46.5197, 6.6323)); // Lausanne
/// let p = proj.project(&GeoPoint::new(46.5297, 6.6323));
/// assert!((p.y - 1_112.0).abs() < 5.0); // ~1.11 km north
/// assert!(p.x.abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalProjection {
    origin: GeoPoint,
    /// Meters per degree of longitude at the origin latitude.
    meters_per_deg_lon: f64,
    /// Meters per degree of latitude.
    meters_per_deg_lat: f64,
}

impl LocalProjection {
    /// Creates a projection centered on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        let meters_per_deg = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        Self {
            origin,
            meters_per_deg_lat: meters_per_deg,
            meters_per_deg_lon: meters_per_deg * origin.lat.to_radians().cos(),
        }
    }

    /// A projection centered on Lausanne, Switzerland — the city of the
    /// OpenSense deployment evaluated in the paper.
    pub fn lausanne() -> Self {
        Self::new(GeoPoint::new(46.5197, 6.6323))
    }

    /// The geographic origin of the projection.
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic coordinate into the metric plane.
    #[inline]
    pub fn project(&self, g: &GeoPoint) -> Point {
        Point::new(
            (g.lon - self.origin.lon) * self.meters_per_deg_lon,
            (g.lat - self.origin.lat) * self.meters_per_deg_lat,
        )
    }

    /// Inverse projection from the metric plane back to WGS-84.
    #[inline]
    pub fn unproject(&self, p: &Point) -> GeoPoint {
        GeoPoint::new(
            self.origin.lat + p.y / self.meters_per_deg_lat,
            self.origin.lon + p.x / self.meters_per_deg_lon,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_projects_to_zero() {
        let proj = LocalProjection::lausanne();
        let p = proj.project(&proj.origin());
        assert!(p.x.abs() < 1e-9 && p.y.abs() < 1e-9);
    }

    #[test]
    fn roundtrip_is_exact() {
        let proj = LocalProjection::lausanne();
        let g = GeoPoint::new(46.53, 6.64);
        let back = proj.unproject(&proj.project(&g));
        assert!((back.lat - g.lat).abs() < 1e-12);
        assert!((back.lon - g.lon).abs() < 1e-12);
    }

    #[test]
    fn planar_distance_matches_haversine_at_city_scale() {
        let proj = LocalProjection::lausanne();
        let a = GeoPoint::new(46.5197, 6.6323);
        let b = GeoPoint::new(46.5400, 6.6600); // ~3 km away
        let planar = proj.project(&a).distance(&proj.project(&b));
        let sphere = a.haversine_distance(&b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn east_axis_shrinks_with_latitude() {
        let equator = LocalProjection::new(GeoPoint::new(0.0, 0.0));
        let north = LocalProjection::new(GeoPoint::new(60.0, 0.0));
        let g_eq = GeoPoint::new(0.0, 1.0);
        let g_no = GeoPoint::new(60.0, 1.0);
        let x_eq = equator.project(&g_eq).x;
        let x_no = north.project(&g_no).x;
        // cos(60°) = 0.5: one degree of longitude is half as long at 60°N.
        assert!((x_no / x_eq - 0.5).abs() < 1e-9);
    }

    #[test]
    fn north_displacement_is_latitude_only() {
        let proj = LocalProjection::lausanne();
        let p = proj.project(&GeoPoint::new(46.5197 + 0.01, 6.6323));
        assert!(p.x.abs() < 1e-9);
        assert!(p.y > 1_000.0 && p.y < 1_200.0);
    }
}
