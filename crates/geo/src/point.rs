//! Points in the projected metric plane and on the WGS-84 ellipsoid.

use crate::EARTH_RADIUS_M;

/// A position in a local, projected, metric plane.
///
/// Coordinates are in meters east (`x`) and north (`y`) of a projection
/// origin (see [`crate::LocalProjection`]). `Point` is the coordinate type
/// used throughout query processing: raw tuples, query tuples, cluster
/// centroids and index entries all carry a `Point`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Meters east of the projection origin.
    pub x: f64,
    /// Meters north of the projection origin.
    pub y: f64,
}

impl Point {
    /// Creates a point from east/north offsets in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin of the projected plane.
    #[inline]
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`, in meters.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::distance`]; prefer it for nearest-neighbour
    /// comparisons where the monotone transform does not matter.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other`.
    #[inline]
    pub fn manhattan_distance(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation from `self` towards `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside `[0, 1]`
    /// extrapolate along the segment.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Translates the point by `(dx, dy)` meters.
    #[inline]
    pub fn translated(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// A WGS-84 geographic coordinate (decimal degrees).
///
/// The community sensors report GPS fixes; [`crate::LocalProjection`]
/// converts them into the metric [`Point`] plane for query processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north. Valid range `[-90, 90]`.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east. Valid range `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a geographic coordinate from latitude/longitude degrees.
    #[inline]
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Returns `true` if the coordinate lies in the valid WGS-84 ranges.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }

    /// Great-circle distance to `other` in meters (haversine formula).
    pub fn haversine_distance(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat * 0.5).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon * 0.5).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().min(1.0).asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAUSANNE: GeoPoint = GeoPoint::new(46.5197, 6.6323);
    const GENEVA: GeoPoint = GeoPoint::new(46.2044, 6.1432);

    #[test]
    fn distance_is_zero_for_identical_points() {
        let p = Point::new(3.5, -2.0);
        assert_eq!(p.distance(&p), 0.0);
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-4.0, 7.5);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn manhattan_dominates_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(a.manhattan_distance(&b) >= a.distance(&b));
        assert_eq!(a.manhattan_distance(&b), 7.0);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(-2.0, 1.0);
        let b = Point::new(6.0, 5.0);
        let m = a.midpoint(&b);
        assert!((a.distance(&m) - b.distance(&m)).abs() < 1e-9);
        assert_eq!(m, Point::new(2.0, 3.0));
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn translated_shifts_coordinates() {
        let p = Point::new(1.0, 2.0).translated(-3.0, 0.5);
        assert_eq!(p, Point::new(-2.0, 2.5));
    }

    #[test]
    fn is_finite_rejects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let p: Point = (1.5, -2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(LAUSANNE.haversine_distance(&LAUSANNE), 0.0);
    }

    #[test]
    fn haversine_lausanne_geneva_plausible() {
        // Straight-line distance Lausanne–Geneva is ~50 km.
        let d = LAUSANNE.haversine_distance(&GENEVA);
        assert!((45_000.0..55_000.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        assert!(
            (LAUSANNE.haversine_distance(&GENEVA) - GENEVA.haversine_distance(&LAUSANNE)).abs()
                < 1e-6
        );
    }

    #[test]
    fn haversine_one_degree_latitude() {
        // One degree of latitude is ~111.2 km everywhere.
        let a = GeoPoint::new(46.0, 6.0);
        let b = GeoPoint::new(47.0, 6.0);
        let d = a.haversine_distance(&b);
        assert!((110_000.0..112_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn geo_point_validity() {
        assert!(LAUSANNE.is_valid());
        assert!(!GeoPoint::new(91.0, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, 181.0).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
    }
}
