//! Polyline (route) geometry: arc length, sampling, point projection.
//!
//! Bus routes in the Lausanne simulator and recorded user routes in the
//! EnviroMeter app are polylines in the metric plane. The simulator walks a
//! vehicle along a polyline at a given speed; the app projects pollution
//! samples onto the recorded track.

use crate::Point;

/// An open polyline through two or more vertices in the metric plane.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// Cumulative arc length at each vertex; `cum[0] == 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Builds a polyline from its vertices.
    ///
    /// # Panics
    /// Panics if fewer than two vertices are given or any vertex is
    /// non-finite.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 2, "polyline needs at least two vertices");
        assert!(
            vertices.iter().all(Point::is_finite),
            "polyline vertices must be finite"
        );
        let mut cum = Vec::with_capacity(vertices.len());
        cum.push(0.0);
        for w in vertices.windows(2) {
            let last = *cum.last().expect("cum is non-empty");
            cum.push(last + w[0].distance(&w[1]));
        }
        Self { vertices, cum }
    }

    /// The vertices of the polyline.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Total arc length in meters.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("cum is non-empty")
    }

    /// The point at arc-length position `s` from the start.
    ///
    /// `s` is clamped to `[0, length]`, so callers may drive past the ends
    /// without panicking (the vehicle simply waits at the terminus).
    pub fn point_at(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length());
        // Binary search for the segment containing s.
        let seg = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i.min(self.vertices.len() - 2),
            Err(i) => i - 1,
        };
        let seg_len = self.cum[seg + 1] - self.cum[seg];
        if seg_len <= 0.0 {
            return self.vertices[seg];
        }
        let t = (s - self.cum[seg]) / seg_len;
        self.vertices[seg].lerp(&self.vertices[seg + 1], t)
    }

    /// Samples `n` points spaced uniformly in arc length, endpoints included.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn sample_uniform(&self, n: usize) -> Vec<Point> {
        assert!(n >= 2, "need at least the two endpoints");
        let step = self.length() / (n - 1) as f64;
        (0..n).map(|i| self.point_at(i as f64 * step)).collect()
    }

    /// The minimum distance from `p` to the polyline, and the arc-length
    /// position of the closest point.
    pub fn project(&self, p: &Point) -> (f64, f64) {
        let mut best_d2 = f64::INFINITY;
        let mut best_s = 0.0;
        for (i, w) in self.vertices.windows(2).enumerate() {
            let (d2, t) = point_segment_distance_sq(p, &w[0], &w[1]);
            if d2 < best_d2 {
                best_d2 = d2;
                best_s = self.cum[i] + t * (self.cum[i + 1] - self.cum[i]);
            }
        }
        (best_d2.sqrt(), best_s)
    }
}

/// Squared distance from `p` to segment `ab` and the parameter `t ∈ [0,1]`
/// of the closest point.
fn point_segment_distance_sq(p: &Point, a: &Point, b: &Point) -> (f64, f64) {
    let abx = b.x - a.x;
    let aby = b.y - a.y;
    let len2 = abx * abx + aby * aby;
    let t = if len2 <= 0.0 {
        0.0
    } else {
        (((p.x - a.x) * abx + (p.y - a.y) * aby) / len2).clamp(0.0, 1.0)
    };
    let cx = a.x + t * abx;
    let cy = a.y + t * aby;
    let dx = p.x - cx;
    let dy = p.y - cy;
    (dx * dx + dy * dy, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(l_shape().length(), 20.0);
    }

    #[test]
    fn point_at_start_middle_end() {
        let pl = l_shape();
        assert_eq!(pl.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(pl.point_at(10.0), Point::new(10.0, 0.0));
        assert_eq!(pl.point_at(15.0), Point::new(10.0, 5.0));
        assert_eq!(pl.point_at(20.0), Point::new(10.0, 10.0));
    }

    #[test]
    fn point_at_clamps_out_of_range() {
        let pl = l_shape();
        assert_eq!(pl.point_at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(pl.point_at(99.0), Point::new(10.0, 10.0));
    }

    #[test]
    fn point_at_vertex_arc_length_exact() {
        let pl = l_shape();
        // Hitting exactly the cumulative length of a vertex must not panic
        // and must return that vertex.
        assert_eq!(pl.point_at(10.0), Point::new(10.0, 0.0));
    }

    #[test]
    fn sample_uniform_endpoints_and_spacing() {
        let pl = l_shape();
        let pts = pl.sample_uniform(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[4], Point::new(10.0, 10.0));
        assert_eq!(pts[2], Point::new(10.0, 0.0)); // the corner at s = 10
    }

    #[test]
    fn project_onto_segment_interior() {
        let pl = l_shape();
        let (d, s) = pl.project(&Point::new(5.0, 3.0));
        assert!((d - 3.0).abs() < 1e-12);
        assert!((s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn project_onto_corner() {
        let pl = l_shape();
        let (d, s) = pl.project(&Point::new(12.0, -2.0));
        assert!((d - 8f64.sqrt()).abs() < 1e-12);
        assert!((s - 10.0).abs() < 1e-12);
    }

    #[test]
    fn project_point_on_line_is_zero() {
        let pl = l_shape();
        let (d, s) = pl.project(&Point::new(10.0, 7.0));
        assert!(d.abs() < 1e-12);
        assert!((s - 17.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_handled() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
        ]);
        assert_eq!(pl.length(), 4.0);
        assert_eq!(pl.point_at(2.0), Point::new(2.0, 0.0));
        let (d, _) = pl.project(&Point::new(0.0, 1.0));
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_vertex_panics() {
        Polyline::new(vec![Point::origin()]);
    }
}
