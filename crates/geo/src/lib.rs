//! Spatial primitives for the EnviroMeter platform.
//!
//! Community-sensed data is indexed by *position*: every raw tuple carries a
//! coordinate, every query is anchored at a coordinate, and every model in a
//! model cover is responsible for a spatial sub-region. This crate provides
//! the small, allocation-free geometric vocabulary shared by all other
//! EnviroMeter crates:
//!
//! * [`Point`] — a position in a projected, metric plane (meters).
//! * [`GeoPoint`] — a WGS-84 latitude/longitude pair, with great-circle
//!   distance ([`GeoPoint::haversine_distance`]).
//! * [`LocalProjection`] — an equirectangular local east/north projection that
//!   maps lat/lon to meters around a reference origin (adequate at city
//!   scale, which is exactly the paper's granularity: "city or state").
//! * [`BoundingBox`] — axis-aligned rectangles used by the R-tree.
//! * [`Grid`] — a uniform cell decomposition used by the grid index and the
//!   heatmap service.
//! * [`polyline`] — arc-length utilities for bus routes and recorded tracks.
//!
//! All distances are Euclidean in the projected plane unless stated
//! otherwise; the paper's radius-`r` queries ("a radius r of 1 km") are
//! metric-plane disks.

#![forbid(unsafe_code)]
// Panic-prone sites in this crate are legacy debt tracked by the xtask
// panic ratchet (crates/xtask/panic-baseline.toml): counts may only go
// down. The clippy warn-level lints stay crate-allowed until the burn-down
// reaches zero; prefer typed errors in new code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bbox;
pub mod grid;
mod memsize_impls;
pub mod point;
pub mod polyline;
pub mod projection;

pub use bbox::BoundingBox;
pub use grid::{CellId, Grid};
pub use point::{GeoPoint, Point};
pub use polyline::Polyline;
pub use projection::LocalProjection;

/// Mean Earth radius in meters (IUGG value), used by the haversine formula.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;
