//! Deep memory-size accounting — EnviroMeter's Pympler equivalent.
//!
//! The paper's Figure 7(a) compares "the memory required to store" each
//! queryable representation (raw points, R-tree, VP-tree, model cover),
//! "accurately measured using the Pympler library". This crate provides the
//! same capability for Rust values: [`DeepSize`] reports the total bytes a
//! value keeps alive — its inline size plus every byte of heap memory owned
//! by it, transitively, including allocation capacity (a `Vec` with spare
//! capacity holds that memory whether or not it is used, exactly like a
//! Python list's over-allocation).
//!
//! Every crate that defines a measurable structure implements [`DeepSize`]
//! for it; the Figure 7(a) harness simply calls
//! [`DeepSize::deep_size_of`] on the four representations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

/// Total bytes kept alive by a value: inline size + owned heap, transitive.
pub trait DeepSize {
    /// Bytes of heap memory owned by this value (excluding its own inline
    /// representation). Implementations recurse into children.
    fn heap_size(&self) -> usize;

    /// Total footprint: the value's inline size plus [`DeepSize::heap_size`].
    fn deep_size_of(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_size()
    }
}

macro_rules! impl_flat {
    ($($t:ty),* $(,)?) => {
        $(impl DeepSize for $t {
            #[inline]
            fn heap_size(&self) -> usize { 0 }
        })*
    };
}

impl_flat!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<T: DeepSize> DeepSize for Vec<T> {
    fn heap_size(&self) -> usize {
        // The backing buffer covers the full capacity; occupied slots add
        // their transitive heap, spare capacity is raw bytes.
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(DeepSize::heap_size).sum::<usize>()
    }
}

impl<T: DeepSize> DeepSize for Box<T> {
    fn heap_size(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_size()
    }
}

impl<T: DeepSize> DeepSize for Option<T> {
    fn heap_size(&self) -> usize {
        self.as_ref().map_or(0, DeepSize::heap_size)
    }
}

impl<T: DeepSize> DeepSize for [T] {
    fn heap_size(&self) -> usize {
        self.iter().map(DeepSize::heap_size).sum()
    }
}

impl<T: DeepSize, const N: usize> DeepSize for [T; N] {
    fn heap_size(&self) -> usize {
        self.iter().map(DeepSize::heap_size).sum()
    }
}

impl DeepSize for String {
    fn heap_size(&self) -> usize {
        self.capacity()
    }
}

impl DeepSize for &str {
    fn heap_size(&self) -> usize {
        0 // borrowed, not owned
    }
}

impl<A: DeepSize, B: DeepSize> DeepSize for (A, B) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size()
    }
}

impl<A: DeepSize, B: DeepSize, C: DeepSize> DeepSize for (A, B, C) {
    fn heap_size(&self) -> usize {
        self.0.heap_size() + self.1.heap_size() + self.2.heap_size()
    }
}

/// Pretty-prints a byte count with binary units (e.g. `12.3 KiB`).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_inline_size_only() {
        assert_eq!(42u64.deep_size_of(), 8);
        assert_eq!(1.5f64.deep_size_of(), 8);
        assert_eq!(true.deep_size_of(), 1);
    }

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<u64> = Vec::with_capacity(100);
        v.push(1);
        let expected = std::mem::size_of::<Vec<u64>>() + 100 * 8;
        assert_eq!(v.deep_size_of(), expected);
    }

    #[test]
    fn empty_vec_has_no_heap() {
        let v: Vec<u64> = Vec::new();
        assert_eq!(v.heap_size(), 0);
    }

    #[test]
    fn nested_vec_recurses() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let inline_of_inner = std::mem::size_of::<Vec<u8>>();
        let expected_heap = v.capacity() * inline_of_inner + 10 + 20;
        assert_eq!(v.heap_size(), expected_heap);
    }

    #[test]
    fn boxed_value_counts_pointee() {
        let b = Box::new(7u64);
        assert_eq!(b.deep_size_of(), std::mem::size_of::<Box<u64>>() + 8);
    }

    #[test]
    fn box_of_vec_recurses() {
        let b: Box<Vec<u64>> = Box::new(Vec::with_capacity(4));
        let expected =
            std::mem::size_of::<Box<Vec<u64>>>() + std::mem::size_of::<Vec<u64>>() + 4 * 8;
        assert_eq!(b.deep_size_of(), expected);
    }

    #[test]
    fn option_none_is_free() {
        let none: Option<Box<u64>> = None;
        assert_eq!(none.heap_size(), 0);
        let some: Option<Box<u64>> = Some(Box::new(1));
        assert_eq!(some.heap_size(), 8);
    }

    #[test]
    fn string_counts_capacity() {
        let mut s = String::with_capacity(64);
        s.push('x');
        assert_eq!(s.heap_size(), 64);
    }

    #[test]
    fn tuples_sum_children() {
        let t = (vec![0u8; 8], String::from("hello"));
        assert_eq!(t.heap_size(), 8 + "hello".len());
    }

    #[test]
    fn arrays_sum_children() {
        let a: [Vec<u8>; 2] = [vec![0; 3], vec![0; 5]];
        assert_eq!(a.heap_size(), 8);
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2_048), "2.0 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.0 MiB");
    }
}
