//! Deterministic-schedule concurrency facade for the EnviroMeter workspace.
//!
//! Every concurrent crate imports its synchronization primitives from
//! [`sync`] and its thread-spawning entry points from [`thread`] instead of
//! `std`. In an ordinary build the facade is a thin veneer over `std::sync` /
//! `std::thread` (plus a `debug_assertions`-only lock-order tracker, see
//! [`order`]), so production code pays nothing.
//!
//! Under `--cfg enviro_schedules` the same types route every acquire,
//! release, load, store, wait, notify, spawn, and join through a
//! deterministic user-space scheduler ([`model`]). A harness wraps the code
//! under test in [`explore`], which re-executes the closure under
//! exhaustively enumerated thread interleavings: depth-first search over
//! scheduling decisions with a bounded-preemption budget (iterative
//! deepening, so counterexamples carry the fewest preemptions possible — the
//! schedule-space analogue of shrinking), falling back to seeded random
//! sampling once the exhaustive budget is exceeded. Failures print a
//! `SCHED_REPLAY` decision path that re-runs the exact failing interleaving.
//!
//! Knobs (read from the environment by [`explore`]):
//!
//! | variable       | default | meaning                                            |
//! |----------------|---------|----------------------------------------------------|
//! | `SCHED_BOUND`  | `2`     | max preemptions per schedule (iteratively deepened) |
//! | `SCHED_MAX`    | `20000` | exhaustive-schedule cap before random fallback     |
//! | `SCHED_RANDOM` | `256`   | random schedules sampled after the cap             |
//! | `SCHED_SEED`   | `1`     | seed for the random fallback                       |
//! | `SCHED_STEPS`  | `20000` | per-schedule decision cap (livelock guard)         |
//! | `SCHED_REPLAY` | unset   | dotted decision path: replay one schedule          |
//!
//! The model serializes threads (one runs at a time) and is therefore
//! sequentially consistent: it explores *interleavings*, not weak-memory
//! reorderings. Memory-ordering claims are audited separately by the xtask
//! `// ordering:` lint.

#![forbid(unsafe_code)]
// The model checker's job is to panic loudly (that is how a failing schedule
// surfaces in a test run); its panic sites are tracked by the xtask ratchet.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod model;
pub mod order;
pub mod sync;
pub mod thread;

pub use model::{explore, Explorer, Report, SearchMode};

/// An explicit schedule point for operations with no modeled primitive —
/// e.g. the WAL marks its file I/O boundaries so the scheduler can preempt
/// around durability-visible steps. Outside a model run this is free.
#[inline]
pub fn point(label: &str) {
    model::point(label);
}

// These two tests live here rather than in `tests/model.rs` because they
// need MODELED atomics: the facade's atomic wrappers are compiled only
// under `any(test, enviro_schedules)`, and an integration test builds this
// library without `cfg(test)`, degrading atomics to raw `std` re-exports
// with no schedule points — the races below would become unexhibitable.
#[cfg(test)]
mod atomic_model_tests {
    use crate::model::Explorer;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Arc, PoisonError, RwLock};
    use crate::thread;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn quick() -> Explorer {
        Explorer {
            bound: 2,
            max_schedules: 5_000,
            random_runs: 64,
            seed: 7,
            max_steps: 5_000,
            replay: None,
        }
    }

    fn failure_message(r: std::thread::Result<crate::Report>) -> String {
        match r {
            Ok(rep) => panic!("exploration unexpectedly passed: {rep}"),
            Err(payload) => {
                if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else {
                    panic!("non-string panic payload")
                }
            }
        }
    }

    #[test]
    fn lost_update_race_is_found_and_replayable() {
        let racy = || {
            let a = Arc::new(AtomicU64::new(0));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let a = Arc::clone(&a);
                hs.push(thread::spawn(move || {
                    // Non-atomic read-modify-write: the classic lost update.
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        };
        let msg = failure_message(catch_unwind(AssertUnwindSafe(|| {
            quick().run("lost-update", racy)
        })));
        assert!(msg.contains("FAILED harness `lost-update`"), "{msg}");
        assert!(msg.contains("lost update"), "{msg}");
        assert!(msg.contains("SCHED_REPLAY="), "{msg}");

        // The printed decision path must reproduce the same failure in one
        // run.
        let path_str = msg
            .split("SCHED_REPLAY=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("replay path in failure message");
        let path: Vec<usize> = path_str
            .split('.')
            .map(|p| p.parse().expect("numeric path component"))
            .collect();
        let mut replayer = quick();
        replayer.replay = Some(path);
        let msg2 = failure_message(catch_unwind(AssertUnwindSafe(move || {
            replayer.run("lost-update", racy)
        })));
        assert!(msg2.contains("schedule #1"), "{msg2}");
        assert!(msg2.contains("lost update"), "{msg2}");
    }

    #[test]
    fn rwlock_generation_protocol_explores_cleanly() {
        let rep = quick().run("rwlock-protocol", || {
            let slot = Arc::new(RwLock::new(0u64));
            let gen = Arc::new(AtomicU64::new(0));
            let (s, g) = (Arc::clone(&slot), Arc::clone(&gen));
            let writer = thread::spawn(move || {
                let mut w = s.write().unwrap_or_else(PoisonError::into_inner);
                *w = 1;
                // Generation bumps under the write lock, so a generation is
                // never observable before its contents.
                g.fetch_add(1, Ordering::SeqCst);
            });
            let observed_gen = gen.load(Ordering::SeqCst);
            let observed_val = *slot.read().unwrap_or_else(PoisonError::into_inner);
            if observed_gen == 1 {
                assert_eq!(observed_val, 1, "generation led its contents");
            }
            writer.join().unwrap();
        });
        assert!(rep.schedules > 1, "{rep}");
    }
}
