//! `std::sync` facade: identical API surface, scheduler-aware internals.
//!
//! `Mutex`, `RwLock`, and `Condvar` are thin wrappers over their `std`
//! counterparts that (a) feed the `debug_assertions` lock-order tracker
//! ([`crate::order`]) on every acquisition and (b) route through the
//! deterministic scheduler when the calling thread belongs to a
//! [`crate::explore`] run. Outside a model run the wrappers delegate
//! straight to `std` — one thread-local probe per operation.
//!
//! Atomics are re-exported from `std` verbatim in normal builds; under
//! `--cfg enviro_schedules` (or this crate's own unit tests) they become
//! wrappers that insert a schedule point before every access, so the
//! explorer can interleave around loads and stores too. The model
//! serializes execution and is therefore sequentially consistent — the
//! per-site `Ordering` arguments are passed through but not weakened, and
//! justifying them is the xtask `// ordering:` lint's job.
//!
//! Workspace rule (enforced by `cargo run -p xtask -- lint`): product code
//! imports sync primitives from here, never from `std::sync` directly.

use crate::model::{self, Site};
use crate::order;
use std::panic::Location;

pub use std::sync::{Arc, LockResult, OnceLock, PoisonError, Weak};

/// A mutual-exclusion lock with the `std::sync::Mutex` API, wired into the
/// lock-order tracker and the deterministic scheduler.
pub struct Mutex<T> {
    id: u64,
    site: Site,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; mirrors `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<model::Ctx>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex. The construction site becomes the lock's class
    /// for order tracking and failure reports.
    #[track_caller]
    pub fn new(value: T) -> Self {
        Mutex {
            id: model::fresh_resource_id(),
            site: Location::caller(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking the calling thread (or parking it in
    /// the deterministic scheduler inside a model run).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = model::current();
        if let Some(ctx) = &ctx {
            ctx.mutex_lock(self.id, self.site, false);
        }
        order::on_acquire(self.site);
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model: ctx,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                model: ctx,
            })),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard dismantled")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard dismantled")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // `Condvar::wait` dismantles the guard before parking; nothing to do.
        if self.inner.is_none() && self.model.is_none() {
            return;
        }
        order::on_release(self.lock.site);
        self.inner = None;
        if let Some(ctx) = self.model.take() {
            ctx.mutex_unlock(self.lock.id, std::thread::panicking());
        }
    }
}

/// A reader-writer lock with the `std::sync::RwLock` API, wired into the
/// lock-order tracker and the deterministic scheduler.
pub struct RwLock<T> {
    id: u64,
    site: Site,
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<model::Ctx>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<model::Ctx>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock; the construction site is its class.
    #[track_caller]
    pub fn new(value: T) -> Self {
        RwLock {
            id: model::fresh_resource_id(),
            site: Location::caller(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let ctx = model::current();
        if let Some(ctx) = &ctx {
            ctx.rw_lock(self.id, self.site, false);
        }
        order::on_acquire(self.site);
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                lock: self,
                inner: Some(g),
                model: ctx,
            }),
            Err(poisoned) => Err(PoisonError::new(RwLockReadGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                model: ctx,
            })),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let ctx = model::current();
        if let Some(ctx) = &ctx {
            ctx.rw_lock(self.id, self.site, true);
        }
        order::on_acquire(self.site);
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
                model: ctx,
            }),
            Err(poisoned) => Err(PoisonError::new(RwLockWriteGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                model: ctx,
            })),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard dismantled")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.lock.site);
        self.inner = None;
        if let Some(ctx) = self.model.take() {
            ctx.rw_unlock(self.lock.id, false, std::thread::panicking());
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard dismantled")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard dismantled")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.lock.site);
        self.inner = None;
        if let Some(ctx) = self.model.take() {
            ctx.rw_unlock(self.lock.id, true, std::thread::panicking());
        }
    }
}

/// A condition variable with the `std::sync::Condvar` API (the subset this
/// workspace uses: `wait`, `notify_one`, `notify_all`).
pub struct Condvar {
    id: u64,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            id: model::fresh_resource_id(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and parks until notified, then
    /// re-acquires the mutex. Spurious wakeups are possible outside the
    /// model (callers loop on their predicate, as with `std`).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        order::on_release(lock.site);
        if let Some(ctx) = guard.model.take() {
            // Dismantle the guard: drop the real lock now; the model owns
            // the release/re-acquire protocol from here.
            guard.inner = None;
            drop(guard);
            ctx.cond_wait(self.id, lock.id, lock.site);
            order::on_acquire(lock.site);
            match lock.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: Some(ctx),
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(poisoned.into_inner()),
                    model: Some(ctx),
                })),
            }
        } else {
            let std_guard = guard.inner.take().expect("guard dismantled");
            drop(guard);
            let result = self.inner.wait(std_guard);
            order::on_acquire(lock.site);
            match result {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Wakes one waiter (in the model: the lowest-tid waiter,
    /// deterministically).
    pub fn notify_one(&self) {
        if let Some(ctx) = model::current() {
            ctx.cond_notify(self.id, false);
        }
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if let Some(ctx) = model::current() {
            ctx.cond_notify(self.id, true);
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Atomic types: `std` re-exports normally, schedule-point wrappers under
/// `--cfg enviro_schedules` (and in this crate's own unit tests, so the
/// model checker is exercised by plain `cargo test`).
pub mod atomic {
    #[cfg(not(any(test, enviro_schedules)))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(any(test, enviro_schedules))]
    pub use std::sync::atomic::Ordering;

    #[cfg(any(test, enviro_schedules))]
    pub use modeled::{AtomicBool, AtomicU64, AtomicUsize};

    #[cfg(any(test, enviro_schedules))]
    mod modeled {
        use super::Ordering;
        use crate::model;

        macro_rules! modeled_atomic {
            ($name:ident, $raw:ty, $std:ty) => {
                /// Scheduler-aware atomic: inserts a schedule point before
                /// every access so the explorer can interleave around it.
                /// The model serializes execution (sequential consistency);
                /// the `Ordering` argument is passed through unchanged.
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Creates a new atomic with the given initial value.
                    #[must_use]
                    pub const fn new(v: $raw) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Atomic load (schedule point, then delegate).
                    pub fn load(&self, order: Ordering) -> $raw {
                        model::point(concat!(stringify!($name), "::load"));
                        self.0.load(order)
                    }

                    /// Atomic store (schedule point, then delegate).
                    pub fn store(&self, v: $raw, order: Ordering) {
                        model::point(concat!(stringify!($name), "::store"));
                        self.0.store(v, order);
                    }

                    /// Atomic swap (schedule point, then delegate).
                    pub fn swap(&self, v: $raw, order: Ordering) -> $raw {
                        model::point(concat!(stringify!($name), "::swap"));
                        self.0.swap(v, order)
                    }

                    /// Consumes the atomic, returning the contained value.
                    pub fn into_inner(self) -> $raw {
                        self.0.into_inner()
                    }
                }
            };
        }

        modeled_atomic!(AtomicBool, bool, std::sync::atomic::AtomicBool);
        modeled_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
        modeled_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);

        macro_rules! modeled_fetch_ops {
            ($name:ident, $raw:ty) => {
                impl $name {
                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, v: $raw, order: Ordering) -> $raw {
                        model::point(concat!(stringify!($name), "::fetch_add"));
                        self.0.fetch_add(v, order)
                    }

                    /// Atomic subtract, returning the previous value.
                    pub fn fetch_sub(&self, v: $raw, order: Ordering) -> $raw {
                        model::point(concat!(stringify!($name), "::fetch_sub"));
                        self.0.fetch_sub(v, order)
                    }
                }
            };
        }

        modeled_fetch_ops!(AtomicU64, u64);
        modeled_fetch_ops!(AtomicUsize, usize);
    }
}
