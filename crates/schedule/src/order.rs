//! Runtime lock-order tracking (`debug_assertions` builds only).
//!
//! Every facade lock is classed by its construction site
//! (`#[track_caller]`). Each acquisition records held-class → new-class
//! edges in a process-global graph; if adding an edge closes a cycle, the
//! acquiring thread panics with the cycle, *before* blocking on the real
//! lock — so any ordinary test that merely exercises an inconsistent
//! acquisition order fails loudly instead of deadlocking flakily under the
//! right interleaving.
//!
//! Edges between two locks of the *same* class (e.g. two channel mutexes
//! constructed by the same `bounded()` line) are not recorded: instance
//! ordering within a class is invisible to a site-keyed graph, and in this
//! workspace no protocol nests two locks of one class. The declared
//! workspace-wide order lives in `crates/xtask/lock-order.toml`; this module
//! is the belt to that suspender — it observes what actually happens.
//!
//! In release builds every entry point compiles to nothing.

#![allow(unused_variables)]

use crate::model::Site;

/// A lock class: the `file:line:column` that constructed the lock.
#[cfg(debug_assertions)]
type Class = (&'static str, u32, u32);

#[cfg(debug_assertions)]
fn class_of(site: Site) -> Class {
    (site.file(), site.line(), site.column())
}

#[cfg(debug_assertions)]
mod imp {
    use super::{class_of, Class};
    use crate::model::Site;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::Mutex as StdMutex;

    thread_local! {
        /// Classes of locks the current thread holds, acquisition order.
        static HELD: RefCell<Vec<Class>> = const { RefCell::new(Vec::new()) };
    }

    /// Observed acquired-while-holding edges, process-wide.
    static EDGES: StdMutex<Option<HashMap<Class, HashSet<Class>>>> = StdMutex::new(None);

    fn fmt_class(c: Class) -> String {
        format!("{}:{}", c.0, c.1)
    }

    /// Depth-first reachability: is `to` reachable from `from`?
    fn reachable(
        edges: &HashMap<Class, HashSet<Class>>,
        from: Class,
        to: Class,
        path: &mut Vec<Class>,
    ) -> bool {
        if from == to {
            path.push(from);
            return true;
        }
        if path.contains(&from) {
            return false;
        }
        path.push(from);
        if let Some(nexts) = edges.get(&from) {
            for &n in nexts {
                if reachable(edges, n, to, path) {
                    return true;
                }
            }
        }
        path.pop();
        false
    }

    pub(super) fn on_acquire(site: Site) {
        let new = class_of(site);
        HELD.with(|held| {
            let held = held.borrow();
            if held.is_empty() {
                return;
            }
            let mut g = EDGES
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let edges = g.get_or_insert_with(HashMap::new);
            for &h in held.iter() {
                if h == new {
                    continue;
                }
                // Adding h -> new closes a cycle iff new already reaches h.
                let mut path = Vec::new();
                if !edges.get(&h).map(|s| s.contains(&new)).unwrap_or(false)
                    && reachable(edges, new, h, &mut path)
                    && !std::thread::panicking()
                {
                    let mut cycle: Vec<String> = path.iter().map(|&c| fmt_class(c)).collect();
                    cycle.push(fmt_class(new));
                    drop(g);
                    panic!(
                        "lock-order cycle: acquiring lock constructed at {} while \
                         holding {} would close the cycle [{}] — declare a consistent \
                         order (see crates/xtask/lock-order.toml)",
                        fmt_class(new),
                        fmt_class(h),
                        cycle.join(" -> "),
                    );
                }
                edges.entry(h).or_default().insert(new);
            }
        });
        HELD.with(|held| held.borrow_mut().push(new));
    }

    pub(super) fn on_release(site: Site) {
        let class = class_of(site);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&c| c == class) {
                held.remove(pos);
            }
        });
    }
}

/// Records an acquisition of the lock constructed at `site`; panics if the
/// held-set plus this acquisition closes an order cycle. No-op in release.
#[inline]
pub(crate) fn on_acquire(site: Site) {
    #[cfg(debug_assertions)]
    imp::on_acquire(site);
}

/// Records the release of the lock constructed at `site`. No-op in release.
#[inline]
pub(crate) fn on_release(site: Site) {
    #[cfg(debug_assertions)]
    imp::on_release(site);
}
