//! `std::thread` facade: spawn/join that the deterministic scheduler can
//! see. Outside a model run everything delegates to `std::thread`; inside
//! one, spawned threads become model threads and `join` is a modeled
//! blocking operation (so shutdown protocols — e.g. `ConcurrentTransport`'s
//! Drop-join — are explored like any other interleaving).

use crate::model;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

pub use std::thread::Result;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: model::Tid,
        slot: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    },
}

/// Owned permission to join a thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result (`Err` holds
    /// the panic payload, as with `std`).
    pub fn join(self) -> Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, slot } => {
                let ctx = model::current().unwrap_or_else(|| {
                    panic!("joining a model thread from outside its schedule run")
                });
                ctx.join(tid);
                slot.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .unwrap_or_else(|| panic!("model thread finished without a result"))
            }
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("JoinHandle { .. }")
    }
}

/// Thread factory; mirrors the `std::thread::Builder` subset the workspace
/// uses (`new`, `name`, `spawn`).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder with no name set.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread (visible in panics, debuggers, and schedule
    /// failure reports).
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns a thread running `f`. Inside a model run the thread is
    /// registered with the scheduler and starts parked until scheduled.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some(ctx) = model::current() {
            let name = self.name.unwrap_or_else(|| "thread".to_string());
            let (tid, slot) = ctx.spawn(name, f);
            Ok(JoinHandle(Inner::Model { tid, slot }))
        } else {
            let mut b = std::thread::Builder::new();
            if let Some(name) = self.name {
                b = b.name(name);
            }
            b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
        }
    }
}

/// Spawns an unnamed thread; see [`Builder::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new()
        .spawn(f)
        .unwrap_or_else(|e| panic!("failed to spawn thread: {e}"))
}

/// Yields: a schedule point inside a model run, `std::thread::yield_now`
/// outside one.
pub fn yield_now() {
    if model::in_model() {
        model::point("yield_now");
    } else {
        std::thread::yield_now();
    }
}

/// Sleeps. Inside a model run time is logical: this is a schedule point,
/// not a wall-clock delay (sleeping cannot order modeled events anyway —
/// only synchronization can).
pub fn sleep(dur: Duration) {
    if model::in_model() {
        model::point("sleep");
    } else {
        std::thread::sleep(dur);
    }
}
