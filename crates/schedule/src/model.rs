//! The deterministic scheduler behind the facade.
//!
//! Threads spawned inside [`explore`] are real OS threads, but exactly one
//! is ever runnable: every modeled operation parks the caller until the
//! scheduler hands it the baton. Each point where more than one thread could
//! run is a *decision*; an execution is the sequence of decisions taken.
//! [`Explorer`] enumerates executions statelessly — re-running the closure
//! with a forced decision prefix — which is what makes replay trivial: a
//! failing schedule *is* its decision path.
//!
//! Search strategy: depth-first with a bounded number of preemptions
//! (a decision that switches away from a thread that could have continued),
//! iteratively deepened from 0 to `SCHED_BOUND` so the first failure found
//! uses as few preemptions as possible. Past `SCHED_MAX` executions the
//! explorer switches to seeded random sampling (`SCHED_RANDOM` runs).

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Thread id within one modeled execution (index into the thread table).
pub(crate) type Tid = usize;

/// Construction site of a modeled resource, used in failure reports.
pub(crate) type Site = &'static Location<'static>;

/// Sentinel panic payload used to unwind parked threads when an execution
/// aborts (failure or deadlock found). Wrappers recognise it and do not
/// report it as a user panic.
struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    BlockedMutex(u64),
    BlockedRwRead(u64),
    BlockedRwWrite(u64),
    BlockedCond(u64),
    BlockedJoin(Tid),
    Finished,
}

struct ThreadInfo {
    status: Status,
    name: String,
}

struct LockState {
    site: Site,
    /// Mutex holder, or rwlock writer.
    owner: Option<Tid>,
    /// Rwlock readers (unused for mutexes).
    readers: Vec<Tid>,
}

/// One scheduling decision with more than one enabled thread.
#[derive(Clone)]
pub(crate) struct Choice {
    enabled: Vec<Tid>,
    chosen: usize,
    active_before: Tid,
    active_enabled: bool,
    preempt_base: usize,
}

/// How the explorer is currently choosing unforced decisions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchMode {
    /// Exhaustive depth-first search under the preemption bound.
    Exhaustive,
    /// Seeded random sampling (after the exhaustive cap was exceeded).
    Random,
    /// Single forced execution from `SCHED_REPLAY`.
    Replay,
}

struct SchedState {
    threads: Vec<ThreadInfo>,
    live: usize,
    active: Option<Tid>,
    locks: HashMap<u64, LockState>,
    prefix: Vec<usize>,
    pos: usize,
    path: Vec<Choice>,
    preemptions: usize,
    bound: usize,
    mode: SearchMode,
    rng: u64,
    steps: u64,
    max_steps: u64,
    failure: Option<String>,
    abort: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

struct Shared {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
}

#[derive(Clone)]
pub(crate) struct Ctx {
    shared: Arc<Shared>,
    tid: Tid,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Returns the calling thread's model context, if it is a model thread.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread is running under a deterministic schedule.
#[inline]
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Fresh resource ids: every facade Mutex/RwLock/Condvar gets one at
/// construction so the model can key per-execution lock state without the
/// wrapper and the scheduler sharing lifetimes.
static RESOURCE_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

pub(crate) fn fresh_resource_id() -> u64 {
    // ordering: Relaxed — a pure id allocator; uniqueness is all that
    // matters and fetch_add is atomic regardless of ordering.
    RESOURCE_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl SchedState {
    fn describe_threads(&self) -> String {
        let mut out = String::new();
        for (tid, t) in self.threads.iter().enumerate() {
            let what = match t.status {
                Status::Runnable => "runnable".to_string(),
                Status::Finished => "finished".to_string(),
                Status::BlockedJoin(other) => {
                    format!("blocked joining t{other}")
                }
                Status::BlockedMutex(id) => self.describe_block("mutex", id),
                Status::BlockedRwRead(id) => self.describe_block("rwlock(read)", id),
                Status::BlockedRwWrite(id) => self.describe_block("rwlock(write)", id),
                Status::BlockedCond(id) => self.describe_block("condvar", id),
            };
            out.push_str(&format!("    t{tid} `{}`: {what}\n", t.name));
        }
        out
    }

    fn describe_block(&self, what: &str, id: u64) -> String {
        match self.locks.get(&id) {
            Some(l) => {
                let held = match (l.owner, l.readers.is_empty()) {
                    (Some(o), _) => format!(" held by t{o}"),
                    (None, false) => format!(" read-held by {:?}", l.readers),
                    (None, true) => String::new(),
                };
                format!(
                    "blocked on {what} @ {}:{}{held}",
                    l.site.file(),
                    l.site.line()
                )
            }
            None => format!("blocked on {what} #{id}"),
        }
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }
}

/// Collects the runnable set, active-thread-first then ascending tid, so
/// decision index 0 is always the non-preempting continuation when one
/// exists.
fn enabled_of(state: &SchedState, current: Tid) -> (Vec<Tid>, bool) {
    let mut enabled = Vec::new();
    let mut current_enabled = false;
    if matches!(
        state.threads.get(current).map(|t| t.status),
        Some(Status::Runnable)
    ) {
        enabled.push(current);
        current_enabled = true;
    }
    for (tid, t) in state.threads.iter().enumerate() {
        if tid != current && t.status == Status::Runnable {
            enabled.push(tid);
        }
    }
    (enabled, current_enabled)
}

/// Picks the next thread to run. `current` is the thread that held the baton
/// when the decision arose. Returns `None` when the execution is complete or
/// aborting; the caller must then not wait for a turn.
fn pick_next(state: &mut SchedState, current: Tid) -> Option<Tid> {
    if state.abort {
        return None;
    }
    state.steps += 1;
    if state.steps > state.max_steps {
        state.fail(format!(
            "schedule exceeded SCHED_STEPS={} decisions (livelock or unbounded spin \
             under the model?)",
            state.max_steps
        ));
        return None;
    }
    let (enabled, current_enabled) = enabled_of(state, current);
    if enabled.is_empty() {
        if state.live == 0 {
            state.active = None;
            return None;
        }
        state.fail(format!(
            "deadlock: no runnable thread ({} still live)\n{}",
            state.live,
            state.describe_threads()
        ));
        return None;
    }
    let idx = if enabled.len() == 1 {
        0
    } else {
        let idx = if state.pos < state.prefix.len() {
            let forced = state.prefix[state.pos];
            if forced >= enabled.len() {
                state.fail(format!(
                    "replay diverged: decision {} forces index {forced} but only {} \
                     threads are enabled — the program is nondeterministic beyond \
                     its schedule",
                    state.pos,
                    enabled.len()
                ));
                return None;
            }
            forced
        } else {
            match state.mode {
                // DFS default: never preempt spontaneously; the explorer
                // injects preemptions by extending the forced prefix.
                SearchMode::Exhaustive | SearchMode::Replay => 0,
                SearchMode::Random => {
                    let budget_left = state.bound.saturating_sub(state.preemptions);
                    let limit = if current_enabled && budget_left == 0 {
                        // Only the non-preempting continuation is affordable.
                        1
                    } else {
                        enabled.len()
                    };
                    (xorshift(&mut state.rng) % limit as u64) as usize
                }
            }
        };
        state.path.push(Choice {
            enabled: enabled.clone(),
            chosen: idx,
            active_before: current,
            active_enabled: current_enabled,
            preempt_base: state.preemptions,
        });
        state.pos += 1;
        idx
    };
    let next = enabled[idx];
    if current_enabled && next != current {
        state.preemptions += 1;
    }
    state.active = Some(next);
    Some(next)
}

/// Parks the calling model thread until the scheduler hands it the baton.
/// Panics with [`Abort`] if the execution is being torn down.
fn wait_turn<'a>(
    shared: &'a Shared,
    mut g: std::sync::MutexGuard<'a, SchedState>,
    me: Tid,
) -> std::sync::MutexGuard<'a, SchedState> {
    loop {
        if g.abort {
            drop(g);
            std::panic::panic_any(Abort);
        }
        if g.active == Some(me) {
            return g;
        }
        g = shared
            .cv
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, SchedState> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Ctx {
    /// A plain preemption point: lets the scheduler run other threads before
    /// the caller's next visible operation.
    pub(crate) fn sched_point(&self) {
        let shared = &*self.shared;
        let mut g = lock_state(shared);
        if g.abort {
            drop(g);
            std::panic::panic_any(Abort);
        }
        match pick_next(&mut g, self.tid) {
            Some(next) if next == self.tid => {}
            Some(_) => {
                shared.cv.notify_all();
                let g = wait_turn(shared, g, self.tid);
                drop(g);
            }
            None => {
                shared.cv.notify_all();
                drop(g);
                std::panic::panic_any(Abort);
            }
        }
    }

    /// Sets the caller's status, hands the baton to another thread, and
    /// parks until the caller is runnable *and* scheduled again.
    fn block_on<'a>(
        &'a self,
        mut g: std::sync::MutexGuard<'a, SchedState>,
        status: Status,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        g.threads[self.tid].status = status;
        match pick_next(&mut g, self.tid) {
            Some(_) => {
                self.shared.cv.notify_all();
                wait_turn(&self.shared, g, self.tid)
            }
            None => {
                self.shared.cv.notify_all();
                drop(g);
                std::panic::panic_any(Abort);
            }
        }
    }

    fn ensure_lock(g: &mut SchedState, id: u64, site: Site) {
        g.locks.entry(id).or_insert(LockState {
            site,
            owner: None,
            readers: Vec::new(),
        });
    }

    fn wake_blocked_on(g: &mut SchedState, id: u64) {
        for t in g.threads.iter_mut() {
            match t.status {
                Status::BlockedMutex(b) | Status::BlockedRwRead(b) | Status::BlockedRwWrite(b)
                    if b == id =>
                {
                    t.status = Status::Runnable;
                }
                _ => {}
            }
        }
    }

    /// Modeled `Mutex::lock`. `reacquire` skips the leading schedule point
    /// (used when a condvar wait re-takes the mutex: being scheduled after
    /// the wakeup *was* the decision).
    pub(crate) fn mutex_lock(&self, id: u64, site: Site, reacquire: bool) {
        if !reacquire {
            self.sched_point();
        }
        let mut g = lock_state(&self.shared);
        loop {
            Self::ensure_lock(&mut g, id, site);
            let l = g.locks.get_mut(&id).expect("just ensured");
            if l.owner.is_none() {
                l.owner = Some(self.tid);
                return;
            }
            g = self.block_on(g, Status::BlockedMutex(id));
        }
    }

    pub(crate) fn mutex_unlock(&self, id: u64, during_panic: bool) {
        if !during_panic {
            self.sched_point();
        }
        let mut g = lock_state(&self.shared);
        if let Some(l) = g.locks.get_mut(&id) {
            l.owner = None;
        }
        Self::wake_blocked_on(&mut g, id);
        self.shared.cv.notify_all();
    }

    pub(crate) fn rw_lock(&self, id: u64, site: Site, write: bool) {
        self.sched_point();
        let mut g = lock_state(&self.shared);
        loop {
            Self::ensure_lock(&mut g, id, site);
            let l = g.locks.get_mut(&id).expect("just ensured");
            if write {
                if l.owner.is_none() && l.readers.is_empty() {
                    l.owner = Some(self.tid);
                    return;
                }
            } else if l.owner.is_none() {
                l.readers.push(self.tid);
                return;
            }
            let st = if write {
                Status::BlockedRwWrite(id)
            } else {
                Status::BlockedRwRead(id)
            };
            g = self.block_on(g, st);
        }
    }

    pub(crate) fn rw_unlock(&self, id: u64, write: bool, during_panic: bool) {
        if !during_panic {
            self.sched_point();
        }
        let mut g = lock_state(&self.shared);
        if let Some(l) = g.locks.get_mut(&id) {
            if write {
                l.owner = None;
            } else if let Some(p) = l.readers.iter().position(|&t| t == self.tid) {
                l.readers.swap_remove(p);
            }
        }
        Self::wake_blocked_on(&mut g, id);
        self.shared.cv.notify_all();
    }

    /// Modeled `Condvar::wait`: atomically releases the mutex and parks on
    /// the condvar; on wakeup, re-acquires the mutex before returning.
    pub(crate) fn cond_wait(&self, cond_id: u64, mutex_id: u64, mutex_site: Site) {
        self.sched_point();
        let mut g = lock_state(&self.shared);
        if let Some(l) = g.locks.get_mut(&mutex_id) {
            l.owner = None;
        }
        Self::wake_blocked_on(&mut g, mutex_id);
        let g = self.block_on(g, Status::BlockedCond(cond_id));
        drop(g);
        self.mutex_lock(mutex_id, mutex_site, true);
    }

    /// Modeled notify. Wakes all condvar waiters (`all`) or the lowest-tid
    /// waiter (`!all` — deterministic stand-in for `notify_one`); woken
    /// threads still contend for the mutex like real condvar waiters.
    pub(crate) fn cond_notify(&self, cond_id: u64, all: bool) {
        self.sched_point();
        let mut g = lock_state(&self.shared);
        let mut woke_one = false;
        for t in g.threads.iter_mut() {
            if t.status == Status::BlockedCond(cond_id) {
                if !all && woke_one {
                    break;
                }
                t.status = Status::Runnable;
                woke_one = true;
            }
        }
        self.shared.cv.notify_all();
    }

    /// Registers and launches a new model thread running `f`. The returned
    /// slot receives the closure's result (or panic payload) before the
    /// thread reports itself finished.
    pub(crate) fn spawn<T, F>(
        &self,
        name: String,
        f: F,
    ) -> (Tid, Arc<StdMutex<Option<std::thread::Result<T>>>>)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.sched_point();
        let slot: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
        let mut g = lock_state(&self.shared);
        let tid = g.threads.len();
        g.threads.push(ThreadInfo {
            status: Status::Runnable,
            name: name.clone(),
        });
        g.live += 1;
        let shared = Arc::clone(&self.shared);
        let slot2 = Arc::clone(&slot);
        let handle = std::thread::Builder::new()
            .name(format!("sched-{name}"))
            .spawn(move || run_model_thread(shared, tid, slot2, f))
            .expect("spawning a model thread");
        g.os_handles.push(handle);
        (tid, slot)
    }

    /// Modeled `JoinHandle::join`: parks until the target thread finishes.
    pub(crate) fn join(&self, target: Tid) {
        self.sched_point();
        let g = lock_state(&self.shared);
        if g.threads[target].status == Status::Finished {
            return;
        }
        let g = self.block_on(g, Status::BlockedJoin(target));
        drop(g);
    }
}

/// Body of every model OS thread: park for the first turn, run the closure
/// under `catch_unwind`, deposit the result, then hand the baton onwards.
fn run_model_thread<T, F>(
    shared: Arc<Shared>,
    tid: Tid,
    slot: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    f: F,
) where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(&shared),
            tid,
        });
    });
    let result = catch_unwind(AssertUnwindSafe(|| {
        let g = lock_state(&shared);
        let g = wait_turn(&shared, g, tid);
        drop(g);
        f()
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut g = lock_state(&shared);
    g.threads[tid].status = Status::Finished;
    g.live -= 1;
    // Wake joiners.
    for t in g.threads.iter_mut() {
        if t.status == Status::BlockedJoin(tid) {
            t.status = Status::Runnable;
        }
    }
    match result {
        Ok(v) => {
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Ok(v));
        }
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_none() {
                let msg = payload_message(payload.as_ref());
                let name = g.threads[tid].name.clone();
                g.fail(format!("thread t{tid} `{name}` panicked: {msg}"));
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Err(payload));
            }
        }
    }
    if !g.abort && g.live > 0 {
        // Hand the baton onwards; a dead end here is a deadlock.
        let _ = pick_next(&mut g, tid);
    } else if g.live == 0 {
        g.active = None;
    }
    shared.cv.notify_all();
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// An explicit schedule point (free outside a model run).
#[inline]
pub fn point(_label: &str) {
    if let Some(ctx) = current() {
        ctx.sched_point();
    }
}

/// Result of one full exploration, returned by [`explore`] on success.
#[derive(Debug, Clone)]
pub struct Report {
    /// Harness name, as passed to [`explore`].
    pub name: String,
    /// Total executions across all deepening passes (and random fallback).
    pub schedules: u64,
    /// Executions in the final (deepest) exhaustive pass, when it completed.
    pub final_pass: Option<u64>,
    /// Whether the schedule space was exhausted under the preemption bound.
    pub exhaustive: bool,
    /// Search mode the exploration ended in.
    pub mode: SearchMode,
    /// The preemption bound in force.
    pub bound: usize,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[enviro-schedule] `{}`: {} schedules (bound {}, {})",
            self.name,
            self.schedules,
            self.bound,
            if self.exhaustive {
                "exhaustive"
            } else {
                "random fallback"
            }
        )
    }
}

/// Configuration for a schedule exploration. [`Explorer::from_env`] reads
/// the `SCHED_*` knobs; tests can set fields directly.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Maximum preemptions per schedule (iteratively deepened 0..=bound).
    pub bound: usize,
    /// Exhaustive-execution cap before switching to random sampling.
    pub max_schedules: u64,
    /// Number of random schedules sampled after the cap.
    pub random_runs: u64,
    /// Seed for random sampling (and its replay line).
    pub seed: u64,
    /// Per-schedule decision cap (catches livelock under the model).
    pub max_steps: u64,
    /// Forced decision path; runs exactly one schedule when set.
    pub replay: Option<Vec<usize>>,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            bound: 2,
            max_schedules: 20_000,
            random_runs: 256,
            seed: 1,
            max_steps: 20_000,
            replay: None,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => parse_u64(&v).unwrap_or_else(|| panic!("{name}={v:?} is not a number")),
        Err(_) => default,
    }
}

fn parse_u64(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

struct ExecOutcome {
    path: Vec<Choice>,
    failure: Option<String>,
}

impl Explorer {
    /// Reads `SCHED_BOUND`, `SCHED_MAX`, `SCHED_RANDOM`, `SCHED_SEED`,
    /// `SCHED_STEPS`, and `SCHED_REPLAY` from the environment.
    pub fn from_env() -> Self {
        let d = Explorer::default();
        Explorer {
            bound: env_u64("SCHED_BOUND", d.bound as u64) as usize,
            max_schedules: env_u64("SCHED_MAX", d.max_schedules),
            random_runs: env_u64("SCHED_RANDOM", d.random_runs),
            seed: env_u64("SCHED_SEED", d.seed),
            max_steps: env_u64("SCHED_STEPS", d.max_steps),
            replay: std::env::var("SCHED_REPLAY").ok().map(|s| {
                s.split('.')
                    .filter(|p| !p.is_empty())
                    .map(|p| {
                        p.parse().unwrap_or_else(|_| {
                            panic!("SCHED_REPLAY component {p:?} is not a number")
                        })
                    })
                    .collect()
            }),
        }
    }

    /// Explores `f` under every schedule within the preemption bound (or a
    /// random sample past the cap). Panics — with a `SCHED_REPLAY` line —
    /// on the first failing schedule; returns a [`Report`] otherwise.
    pub fn run<F>(&self, name: &str, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            current().is_none(),
            "explore() must not be called from inside a model thread"
        );
        let f = Arc::new(f);
        if let Some(path) = &self.replay {
            let out = self.run_once(&f, path, SearchMode::Replay, self.bound, self.seed);
            if let Some(cause) = out.failure {
                self.report_failure(name, &out.path, 1, SearchMode::Replay, cause);
            }
            return Report {
                name: name.to_string(),
                schedules: 1,
                final_pass: Some(1),
                exhaustive: false,
                mode: SearchMode::Replay,
                bound: self.bound,
            };
        }

        let mut total: u64 = 0;
        let mut final_pass: Option<u64> = None;
        // Iterative deepening over the preemption budget: failures surface
        // with the fewest preemptions that can trigger them.
        for bound in 0..=self.bound {
            let mut pass: u64 = 0;
            let mut prefix: Vec<usize> = Vec::new();
            loop {
                let out = self.run_once(&f, &prefix, SearchMode::Exhaustive, bound, self.seed);
                total += 1;
                pass += 1;
                if let Some(cause) = out.failure {
                    self.report_failure(name, &out.path, total, SearchMode::Exhaustive, cause);
                }
                if total >= self.max_schedules {
                    return self.random_fallback(name, &f, total);
                }
                match next_prefix(&out.path, bound) {
                    Some(p) => prefix = p,
                    None => break,
                }
            }
            final_pass = Some(pass);
        }
        Report {
            name: name.to_string(),
            schedules: total,
            final_pass,
            exhaustive: true,
            mode: SearchMode::Exhaustive,
            bound: self.bound,
        }
    }

    fn random_fallback<F>(&self, name: &str, f: &Arc<F>, mut total: u64) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        for k in 0..self.random_runs {
            let seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(k)
                | 1;
            let out = self.run_once(f, &[], SearchMode::Random, self.bound, seed);
            total += 1;
            if let Some(cause) = out.failure {
                let cause = format!("{cause}\n  (random schedule, SCHED_SEED=0x{:x})", self.seed);
                self.report_failure(name, &out.path, total, SearchMode::Random, cause);
            }
        }
        Report {
            name: name.to_string(),
            schedules: total,
            final_pass: None,
            exhaustive: false,
            mode: SearchMode::Random,
            bound: self.bound,
        }
    }

    fn run_once<F>(
        &self,
        f: &Arc<F>,
        prefix: &[usize],
        mode: SearchMode,
        bound: usize,
        seed: u64,
    ) -> ExecOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let shared = Arc::new(Shared {
            state: StdMutex::new(SchedState {
                threads: vec![ThreadInfo {
                    status: Status::Runnable,
                    name: "main".to_string(),
                }],
                live: 1,
                active: Some(0),
                locks: HashMap::new(),
                prefix: prefix.to_vec(),
                pos: 0,
                path: Vec::new(),
                preemptions: 0,
                bound,
                mode,
                rng: seed | 1,
                steps: 0,
                max_steps: self.max_steps,
                failure: None,
                abort: false,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        });
        let slot: Arc<StdMutex<Option<std::thread::Result<()>>>> = Arc::new(StdMutex::new(None));
        let root = {
            let shared = Arc::clone(&shared);
            let slot = Arc::clone(&slot);
            let f = Arc::clone(f);
            std::thread::Builder::new()
                .name("sched-main".to_string())
                .spawn(move || run_model_thread(shared, 0, slot, move || f()))
                .expect("spawning the model root thread")
        };
        // Wait for the execution to finish: every thread reports Finished
        // even on abort (parked threads unwind via the Abort payload).
        {
            let mut g = lock_state(&shared);
            while g.live > 0 {
                g = shared
                    .cv
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let _ = root.join();
        let (path, failure) = {
            let mut g = lock_state(&shared);
            let handles = std::mem::take(&mut g.os_handles);
            let path = std::mem::take(&mut g.path);
            let failure = g.failure.take();
            drop(g);
            for h in handles {
                let _ = h.join();
            }
            (path, failure)
        };
        ExecOutcome { path, failure }
    }

    fn report_failure(
        &self,
        name: &str,
        path: &[Choice],
        schedules: u64,
        mode: SearchMode,
        cause: String,
    ) -> ! {
        let replay: Vec<String> = path.iter().map(|c| c.chosen.to_string()).collect();
        panic!(
            "\n[enviro-schedule] FAILED harness `{name}` on schedule #{schedules} \
             (bound {}, mode {mode:?})\n  replay with SCHED_REPLAY={}\n  cause: {cause}\n",
            self.bound,
            replay.join(".")
        );
    }
}

/// Stateless-DFS backtracking: finds the deepest decision with an untried
/// alternative affordable under the preemption bound and returns the forced
/// prefix that explores it next.
fn next_prefix(path: &[Choice], bound: usize) -> Option<Vec<usize>> {
    for d in (0..path.len()).rev() {
        let c = &path[d];
        for i in c.chosen + 1..c.enabled.len() {
            let cost = usize::from(c.active_enabled && c.enabled[i] != c.active_before);
            if c.preempt_base + cost <= bound {
                let mut p: Vec<usize> = path[..d].iter().map(|x| x.chosen).collect();
                p.push(i);
                return Some(p);
            }
        }
    }
    None
}

/// Explores `f` under [`Explorer::from_env`] settings. See the crate docs
/// for the `SCHED_*` knobs; panics with a replay line on the first failing
/// schedule.
pub fn explore<F>(name: &str, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Explorer::from_env().run(name, f)
}
