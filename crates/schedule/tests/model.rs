//! Self-tests for the model checker: the facade behaves like `std` outside
//! a run, and the explorer finds (and replays) seeded races, lost wakeups,
//! and deadlocks.

use enviro_schedule::model::Explorer;
use enviro_schedule::sync::atomic::{AtomicU64, Ordering};
use enviro_schedule::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use enviro_schedule::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn quick() -> Explorer {
    Explorer {
        bound: 2,
        max_schedules: 5_000,
        random_runs: 64,
        seed: 7,
        max_steps: 5_000,
        replay: None,
    }
}

fn failure_message(r: std::thread::Result<enviro_schedule::Report>) -> String {
    match r {
        Ok(rep) => panic!("exploration unexpectedly passed: {rep}"),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                panic!("non-string panic payload")
            }
        }
    }
}

#[test]
fn passthrough_mutex_condvar_rwlock_work_without_a_model() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let h = thread::spawn(move || {
        let (m, cv) = &*p2;
        let mut done = m.lock().unwrap_or_else(PoisonError::into_inner);
        *done = true;
        cv.notify_all();
    });
    let (m, cv) = &*pair;
    let mut done = m.lock().unwrap_or_else(PoisonError::into_inner);
    while !*done {
        done = cv.wait(done).unwrap_or_else(PoisonError::into_inner);
    }
    h.join().unwrap();

    let rw = RwLock::new(41);
    assert_eq!(*rw.read().unwrap(), 41);
    *rw.write().unwrap() += 1;
    assert_eq!(rw.into_inner().unwrap(), 42);

    let a = AtomicU64::new(1);
    a.store(5, Ordering::SeqCst);
    assert_eq!(a.fetch_add(1, Ordering::SeqCst), 5);
    assert_eq!(a.load(Ordering::SeqCst), 6);
}

#[test]
fn exploration_is_deterministic_and_multi_schedule() {
    let run = || {
        quick().run("two-increments", || {
            let a = Arc::new(Mutex::new(0u64));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let a = Arc::clone(&a);
                hs.push(thread::spawn(move || {
                    *a.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(*a.lock().unwrap_or_else(PoisonError::into_inner), 2);
        })
    };
    let r1 = run();
    let r2 = run();
    assert!(r1.exhaustive, "{r1}");
    assert!(r1.schedules > 1, "{r1}");
    assert_eq!(
        r1.schedules, r2.schedules,
        "exploration must be deterministic"
    );
}

#[test]
fn bound_zero_still_explores_blocking_choices() {
    let mut e = quick();
    e.bound = 0;
    let rep = e.run("bound-zero", || {
        let h1 = thread::spawn(|| ());
        let h2 = thread::spawn(|| ());
        h1.join().unwrap();
        h2.join().unwrap();
    });
    assert!(rep.exhaustive);
    assert!(rep.schedules >= 2, "{rep}");
}

/// Same-class locks are invisible to the site-keyed order tracker, so this
/// exercises the *model's* deadlock detector, not the tracker.
#[test]
fn ab_ba_deadlock_is_detected_by_the_model() {
    fn make_lock() -> Arc<Mutex<u8>> {
        Arc::new(Mutex::new(0))
    }
    let msg = failure_message(catch_unwind(AssertUnwindSafe(|| {
        quick().run("ab-ba", || {
            let a = make_lock();
            let b = make_lock();
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let h1 = thread::spawn(move || {
                let _ga = a1.lock().unwrap_or_else(PoisonError::into_inner);
                let _gb = b1.lock().unwrap_or_else(PoisonError::into_inner);
            });
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h2 = thread::spawn(move || {
                let _gb = b2.lock().unwrap_or_else(PoisonError::into_inner);
                let _ga = a2.lock().unwrap_or_else(PoisonError::into_inner);
            });
            h1.join().unwrap();
            h2.join().unwrap();
        })
    })));
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("blocked on mutex"), "{msg}");
    assert!(msg.contains("SCHED_REPLAY="), "{msg}");
}

#[test]
fn lost_wakeup_is_detected() {
    let msg = failure_message(catch_unwind(AssertUnwindSafe(|| {
        quick().run("lost-wakeup", || {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let p = Arc::clone(&pair);
            let waiter = thread::spawn(move || {
                let (m, cv) = &*p;
                let g = m.lock().unwrap_or_else(PoisonError::into_inner);
                // BUG under test: waits without a predicate; if the notify
                // lands first, this waits forever.
                let _g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            });
            let (m, cv) = &*pair;
            let _g = m.lock().unwrap_or_else(PoisonError::into_inner);
            cv.notify_all();
            drop(_g);
            waiter.join().unwrap();
        })
    })));
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("condvar"), "{msg}");
}

#[test]
fn predicated_wait_has_no_lost_wakeup() {
    let rep = quick().run("predicated-wait", || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p;
            let mut done = m.lock().unwrap_or_else(PoisonError::into_inner);
            while !*done {
                done = cv.wait(done).unwrap_or_else(PoisonError::into_inner);
            }
        });
        let (m, cv) = &*pair;
        let mut done = m.lock().unwrap_or_else(PoisonError::into_inner);
        *done = true;
        drop(done);
        cv.notify_all();
        waiter.join().unwrap();
    });
    assert!(rep.exhaustive, "{rep}");
    assert!(rep.schedules > 1, "{rep}");
}

#[test]
fn nested_exploration_is_rejected() {
    let msg = failure_message(catch_unwind(AssertUnwindSafe(|| {
        quick().run("outer", || {
            let _ = quick().run("inner", || {});
        })
    })));
    assert!(msg.contains("must not be called"), "{msg}");
}

#[cfg(debug_assertions)]
#[test]
fn lock_order_cycle_panics_in_ordinary_tests() {
    // Distinct construction sites => distinct classes for the tracker.
    let a = Arc::new(Mutex::new(0u8));
    let b = Arc::new(Mutex::new(0u8));
    {
        let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
    }
    let msg = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
    }))
    .expect_err("reversed acquisition order must panic");
    let msg = msg
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string>".into());
    assert!(msg.contains("lock-order cycle"), "{msg}");
}

#[test]
fn report_display_mentions_name_and_count() {
    let rep = quick().run("display", || {});
    let s = rep.to_string();
    assert!(s.contains("display"), "{s}");
    assert!(s.contains("schedules"), "{s}");
}
