//! A static k-d tree over points, stored *implicitly* in one flat array.
//!
//! The third member of the paper's "metric space index (e.g., R-tree or
//! VP-tree)" family. Built once per window by recursive median selection on
//! alternating axes; the tree structure is **implicit**: the subtree for
//! range `[lo, hi)` has its splitting entry at `mid = (lo + hi) / 2` with
//! axis `depth % 2`, so no node struct, no child pointers — the whole index
//! is one `Vec<Entry>` (24 bytes per point), making it the most compact of
//! the three trees for Figure 7(a)-style comparisons.
//!
//! Duplicate coordinates may land on either side of their median, so the
//! descent conditions are inclusive on both sides — conservative descent is
//! always correct because leaves check true distances.

use crate::{Entry, Neighbor, SpatialIndex};
use enviro_geo::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A balanced, implicitly laid-out k-d tree over point [`Entry`]s.
///
/// ```
/// use enviro_geo::Point;
/// use enviro_index::{Entry, KdTree, SpatialIndex};
///
/// let entries: Vec<Entry> = (0..64)
///     .map(|i| Entry::new(Point::new((i % 8) as f64, (i / 8) as f64), i))
///     .collect();
/// let tree = KdTree::build(entries);
/// assert_eq!(tree.within_radius(&Point::new(3.0, 3.0), 1.0).len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KdTree {
    entries: Vec<Entry>,
}

#[inline]
fn coord(p: &Point, axis: usize) -> f64 {
    if axis == 0 {
        p.x
    } else {
        p.y
    }
}

impl KdTree {
    /// Builds a balanced tree by recursive median selection.
    pub fn build(mut entries: Vec<Entry>) -> Self {
        assert!(
            entries.iter().all(|e| e.pos.is_finite()),
            "cannot index non-finite positions"
        );
        build_rec(&mut entries, 0);
        let tree = Self { entries };
        debug_assert_eq!(tree.check_invariants(), Ok(()));
        tree
    }

    /// Tree height: `ceil(log2(n + 1))` by construction (0 when empty).
    pub fn height(&self) -> usize {
        (usize::BITS - self.entries.len().leading_zeros()) as usize
    }

    /// Checks the (tie-tolerant) k-d layout invariant: within every range,
    /// the left half is ≤ the median coordinate and the right half ≥ it on
    /// the range's axis.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn check(entries: &[Entry], depth: usize) -> Result<(), String> {
            if entries.len() <= 1 {
                return Ok(());
            }
            let axis = depth % 2;
            let mid = entries.len() / 2;
            let split = coord(&entries[mid].pos, axis);
            for e in &entries[..mid] {
                if coord(&e.pos, axis) > split {
                    return Err(format!("left item {} above split on axis {axis}", e.id));
                }
            }
            for e in &entries[mid + 1..] {
                if coord(&e.pos, axis) < split {
                    return Err(format!("right item {} below split on axis {axis}", e.id));
                }
            }
            check(&entries[..mid], depth + 1)?;
            check(&entries[mid + 1..], depth + 1)
        }
        check(&self.entries, 0)
    }
}

impl SpatialIndex for KdTree {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn for_each_within(&self, center: &Point, radius: f64, visit: &mut dyn FnMut(&Entry)) {
        fn rec(
            entries: &[Entry],
            depth: usize,
            center: &Point,
            radius: f64,
            r2: f64,
            visit: &mut dyn FnMut(&Entry),
        ) {
            if entries.is_empty() {
                return;
            }
            let axis = depth % 2;
            let mid = entries.len() / 2;
            let node = &entries[mid];
            if node.pos.distance_sq(center) <= r2 {
                visit(node);
            }
            let split = coord(&node.pos, axis);
            let c = coord(center, axis);
            if c - radius <= split {
                rec(&entries[..mid], depth + 1, center, radius, r2, visit);
            }
            if c + radius >= split {
                rec(&entries[mid + 1..], depth + 1, center, radius, r2, visit);
            }
        }
        rec(&self.entries, 0, center, radius, radius * radius, visit);
    }

    fn nearest(&self, center: &Point, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        // Max-heap of the best k (worst on top), as in the VP-tree.
        struct Cand {
            distance: f64,
            entry: Entry,
        }
        impl PartialEq for Cand {
            fn eq(&self, other: &Self) -> bool {
                self.distance == other.distance && self.entry.id == other.entry.id
            }
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> Ordering {
                self.distance
                    .partial_cmp(&other.distance)
                    .expect("finite distances")
                    .then(self.entry.id.cmp(&other.entry.id))
            }
        }

        fn rec(
            entries: &[Entry],
            depth: usize,
            center: &Point,
            k: usize,
            heap: &mut BinaryHeap<Cand>,
        ) {
            if entries.is_empty() {
                return;
            }
            let axis = depth % 2;
            let mid = entries.len() / 2;
            let node = &entries[mid];
            let d = node.pos.distance(center);
            if heap.len() < k {
                heap.push(Cand {
                    distance: d,
                    entry: *node,
                });
            } else if let Some(top) = heap.peek() {
                if d < top.distance {
                    heap.pop();
                    heap.push(Cand {
                        distance: d,
                        entry: *node,
                    });
                }
            }
            let split = coord(&node.pos, axis);
            let c = coord(center, axis);
            let (near, far): (&[Entry], &[Entry]) = if c < split {
                (&entries[..mid], &entries[mid + 1..])
            } else {
                (&entries[mid + 1..], &entries[..mid])
            };
            rec(near, depth + 1, center, k, heap);
            let tau = if heap.len() < k {
                f64::INFINITY
            } else {
                heap.peek().expect("non-empty").distance
            };
            if (c - split).abs() <= tau {
                rec(far, depth + 1, center, k, heap);
            }
        }

        let mut heap = BinaryHeap::with_capacity(k + 1);
        rec(&self.entries, 0, center, k, &mut heap);
        let mut out: Vec<Neighbor> = heap
            .into_iter()
            .map(|c| Neighbor {
                entry: c.entry,
                distance: c.distance,
            })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite")
                .then(a.entry.id.cmp(&b.entry.id))
        });
        out
    }
}

impl enviro_memsize::DeepSize for KdTree {
    fn heap_size(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<Entry>()
    }
}

/// Recursively arranges `items` into the implicit layout: median at the
/// middle, lesser-or-equal coordinates left, greater-or-equal right.
fn build_rec(items: &mut [Entry], depth: usize) {
    if items.len() <= 1 {
        return;
    }
    let axis = depth % 2;
    let mid = items.len() / 2;
    items.select_nth_unstable_by(mid, |a, b| {
        coord(&a.pos, axis)
            .partial_cmp(&coord(&b.pos, axis))
            .expect("finite coordinates")
    });
    let (left, rest) = items.split_at_mut(mid);
    build_rec(left, depth + 1);
    build_rec(&mut rest[1..], depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_nearest, brute_force_within};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Entry::new(
                    Point::new(rng.gen_range(-500.0..500.0), rng.gen_range(-500.0..500.0)),
                    i as u32,
                )
            })
            .collect()
    }

    fn sorted_ids(entries: &[Entry]) -> Vec<u32> {
        let mut ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.within_radius(&Point::origin(), 100.0).is_empty());
        assert!(t.nearest(&Point::origin(), 3).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn invariants_on_random_data() {
        for seed in 0..5 {
            let t = KdTree::build(random_entries(300, seed));
            t.check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn radius_matches_brute_force() {
        let entries = random_entries(400, 41);
        let t = KdTree::build(entries.clone());
        for r in [0.0, 30.0, 150.0, 1_500.0] {
            let center = Point::new(12.0, -77.0);
            assert_eq!(
                sorted_ids(&t.within_radius(&center, r)),
                sorted_ids(&brute_force_within(&entries, &center, r)),
                "radius {r}"
            );
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let entries = random_entries(350, 42);
        let t = KdTree::build(entries.clone());
        let center = Point::new(99.0, 11.0);
        for k in [1, 5, 40, 350, 400] {
            let got = t.nearest(&center, k);
            let want = brute_force_nearest(&entries, &center, k);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.distance - w.distance).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn duplicate_coordinates_kept_and_found() {
        let p = Point::new(1.0, 2.0);
        let entries: Vec<Entry> = (0..20).map(|i| Entry::new(p, i)).collect();
        let t = KdTree::build(entries);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 20);
        assert_eq!(t.within_radius(&p, 0.0).len(), 20);
    }

    #[test]
    fn collinear_points_on_axis() {
        // All on one vertical line: x-splits degenerate, y-splits carry.
        let entries: Vec<Entry> = (0..50)
            .map(|i| Entry::new(Point::new(5.0, i as f64), i))
            .collect();
        let t = KdTree::build(entries.clone());
        t.check_invariants().unwrap();
        let got = t.within_radius(&Point::new(5.0, 25.0), 3.0);
        assert_eq!(got.len(), 7); // y in 22..=28
    }

    #[test]
    fn height_is_logarithmic() {
        let t = KdTree::build(random_entries(1_024, 43));
        assert_eq!(t.height(), 11); // ceil(log2(1025))
    }

    #[test]
    fn implicit_layout_is_the_most_compact_tree() {
        use enviro_memsize::DeepSize;
        let entries = random_entries(1_000, 44);
        let kd = KdTree::build(entries.clone());
        let rt = crate::RTree::bulk_load(entries.clone());
        let vp = crate::VpTree::build(entries);
        assert!(kd.deep_size_of() < rt.deep_size_of());
        assert!(kd.deep_size_of() < vp.deep_size_of());
        // Exactly one Entry per point, nothing else.
        assert!(kd.heap_size() <= 1_000 * std::mem::size_of::<Entry>());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn build_rejects_nan() {
        KdTree::build(vec![Entry::new(Point::new(f64::NAN, 0.0), 0)]);
    }
}
