//! A vantage-point tree (metric-space index).
//!
//! The VP-tree partitions entries by distance to a *vantage point*: the
//! median distance µ splits the remaining items into an inner ball
//! (`d < µ`) and an outer shell (`d ≥ µ`). Radius and k-NN searches prune a
//! side whenever the triangle inequality proves it cannot contain a match.
//!
//! The layout is the textbook one — one heap-allocated node per entry —
//! which is exactly why the paper's Figure 7(a) finds the VP-tree to be the
//! most memory-hungry representation. We keep that layout deliberately (see
//! DESIGN.md) rather than flattening it into an arena.

use crate::{Entry, Neighbor, SpatialIndex};
use enviro_geo::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A static vantage-point tree over point [`Entry`]s.
///
/// The tree is built once per window ([`VpTree::build`]); the LCSN workload
/// never mutates a window in place, so no insert/delete is provided.
///
/// ```
/// use enviro_geo::Point;
/// use enviro_index::{Entry, SpatialIndex, VpTree};
///
/// let entries: Vec<Entry> = (0..50)
///     .map(|i| Entry::new(Point::new(0.0, i as f64 * 10.0), i))
///     .collect();
/// let tree = VpTree::build(entries);
/// // y = 100 is 2.5 m away; the next sample (y = 110) is 7.5 m away.
/// assert_eq!(tree.within_radius(&Point::new(0.0, 102.5), 5.0).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VpTree {
    root: Option<Box<VpNode>>,
    len: usize,
}

/// One node: a vantage entry, the median radius, and the two subtrees.
#[derive(Debug, Clone)]
pub(crate) struct VpNode {
    pub(crate) vantage: Entry,
    /// Median distance from `vantage` to the items below it; items strictly
    /// closer go `inner`, the rest `outer`. Zero for leaves.
    pub(crate) mu: f64,
    pub(crate) inner: Option<Box<VpNode>>,
    pub(crate) outer: Option<Box<VpNode>>,
}

impl VpTree {
    /// Builds a VP-tree from entries.
    ///
    /// Deterministic: the vantage point of each subtree is its first entry
    /// in the incoming order (after earlier partitioning), so equal inputs
    /// give equal trees.
    pub fn build(mut entries: Vec<Entry>) -> Self {
        assert!(
            entries.iter().all(|e| e.pos.is_finite()),
            "cannot index non-finite positions"
        );
        let len = entries.len();
        let root = build_rec(&mut entries);
        let tree = Self { root, len };
        debug_assert_eq!(tree.check_invariants(), Ok(()));
        tree
    }

    /// Tree height (0 when empty).
    pub fn height(&self) -> usize {
        fn h(n: &Option<Box<VpNode>>) -> usize {
            n.as_ref().map_or(0, |n| 1 + h(&n.inner).max(h(&n.outer)))
        }
        h(&self.root)
    }

    /// Checks the VP-tree invariant: every descendant in `inner` is strictly
    /// closer to the vantage than `mu`, every descendant in `outer` at least
    /// `mu` away.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn collect(n: &Option<Box<VpNode>>, out: &mut Vec<Entry>) {
            if let Some(n) = n {
                out.push(n.vantage);
                collect(&n.inner, out);
                collect(&n.outer, out);
            }
        }
        fn check(n: &Option<Box<VpNode>>) -> Result<usize, String> {
            let Some(node) = n else { return Ok(0) };
            let mut inner_items = Vec::new();
            collect(&node.inner, &mut inner_items);
            let mut outer_items = Vec::new();
            collect(&node.outer, &mut outer_items);
            for e in &inner_items {
                let d = e.pos.distance(&node.vantage.pos);
                if d >= node.mu {
                    return Err(format!(
                        "inner item {} at distance {d} >= mu {}",
                        e.id, node.mu
                    ));
                }
            }
            for e in &outer_items {
                let d = e.pos.distance(&node.vantage.pos);
                if d < node.mu {
                    return Err(format!(
                        "outer item {} at distance {d} < mu {}",
                        e.id, node.mu
                    ));
                }
            }
            Ok(1 + check(&node.inner)? + check(&node.outer)?)
        }
        let counted = check(&self.root)?;
        if counted != self.len {
            return Err(format!("len {} but counted {counted}", self.len));
        }
        Ok(())
    }
}

impl SpatialIndex for VpTree {
    fn len(&self) -> usize {
        self.len
    }

    fn for_each_within(&self, center: &Point, radius: f64, visit: &mut dyn FnMut(&Entry)) {
        fn rec(
            n: &Option<Box<VpNode>>,
            center: &Point,
            radius: f64,
            visit: &mut dyn FnMut(&Entry),
        ) {
            let Some(node) = n else { return };
            let d = node.vantage.pos.distance(center);
            if d <= radius {
                visit(&node.vantage);
            }
            // Triangle-inequality pruning:
            // inner holds items with dist-to-vantage < mu; it can contain a
            // match only if d - radius < mu.
            if d - radius < node.mu {
                rec(&node.inner, center, radius, visit);
            }
            // outer holds items with dist-to-vantage >= mu; reachable only
            // if d + radius >= mu.
            if d + radius >= node.mu {
                rec(&node.outer, center, radius, visit);
            }
        }
        rec(&self.root, center, radius, visit);
    }

    fn nearest(&self, center: &Point, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        // Max-heap of the best k seen so far, keyed by distance (ties: id).
        struct Cand {
            distance: f64,
            entry: Entry,
        }
        impl PartialEq for Cand {
            fn eq(&self, other: &Self) -> bool {
                self.distance == other.distance && self.entry.id == other.entry.id
            }
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> Ordering {
                self.distance
                    .partial_cmp(&other.distance)
                    .expect("finite distances")
                    .then(self.entry.id.cmp(&other.entry.id))
            }
        }

        fn rec(n: &Option<Box<VpNode>>, center: &Point, k: usize, heap: &mut BinaryHeap<Cand>) {
            let Some(node) = n else { return };
            let d = node.vantage.pos.distance(center);
            if heap.len() < k {
                heap.push(Cand {
                    distance: d,
                    entry: node.vantage,
                });
            } else if let Some(top) = heap.peek() {
                if d < top.distance || (d == top.distance && node.vantage.id < top.entry.id) {
                    heap.pop();
                    heap.push(Cand {
                        distance: d,
                        entry: node.vantage,
                    });
                }
            }
            // Pruning radius: the worst of the best k (∞ until the heap is
            // full). Recomputed after the first recursive call because that
            // call may have tightened it.
            let tau = |heap: &BinaryHeap<Cand>| {
                if heap.len() < k {
                    f64::INFINITY
                } else {
                    heap.peek().expect("non-empty").distance
                }
            };
            // Visit the more promising side first to shrink tau early.
            if d < node.mu {
                rec(&node.inner, center, k, heap);
                if d + tau(heap) >= node.mu {
                    rec(&node.outer, center, k, heap);
                }
            } else {
                rec(&node.outer, center, k, heap);
                if d - tau(heap) < node.mu {
                    rec(&node.inner, center, k, heap);
                }
            }
        }

        let mut heap = BinaryHeap::with_capacity(k + 1);
        rec(&self.root, center, k, &mut heap);
        let mut out: Vec<Neighbor> = heap
            .into_iter()
            .map(|c| Neighbor {
                entry: c.entry,
                distance: c.distance,
            })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite")
                .then(a.entry.id.cmp(&b.entry.id))
        });
        out
    }
}

/// Recursive build: first entry is the vantage; the rest are partitioned
/// around the median distance.
fn build_rec(items: &mut Vec<Entry>) -> Option<Box<VpNode>> {
    let vantage = items.pop()?;
    if items.is_empty() {
        return Some(Box::new(VpNode {
            vantage,
            mu: 0.0,
            inner: None,
            outer: None,
        }));
    }
    // Median split by distance to the vantage.
    let mid = items.len() / 2;
    items.select_nth_unstable_by(mid, |a, b| {
        a.pos
            .distance_sq(&vantage.pos)
            .partial_cmp(&b.pos.distance_sq(&vantage.pos))
            .expect("finite distances")
    });
    let mu = items[mid].pos.distance(&vantage.pos);
    // Items strictly closer than mu go inner; the rest (>= mu) outer. The
    // median element itself goes outer, guaranteeing the outer side is
    // non-empty and the recursion shrinks.
    let mut outer: Vec<Entry> = items.split_off(mid);
    let mut inner = std::mem::take(items);
    // select_nth puts <=-ish elements left, but ties with mu may land on
    // either side; normalize so the invariant (inner < mu <= outer) holds.
    let mut i = 0;
    while i < inner.len() {
        if inner[i].pos.distance(&vantage.pos) >= mu {
            outer.push(inner.swap_remove(i));
        } else {
            i += 1;
        }
    }
    Some(Box::new(VpNode {
        vantage,
        mu,
        inner: build_rec(&mut inner),
        outer: build_rec(&mut outer),
    }))
}

impl enviro_memsize::DeepSize for VpTree {
    fn heap_size(&self) -> usize {
        fn node_heap(node: &Option<Box<VpNode>>) -> usize {
            node.as_ref().map_or(0, |n| {
                std::mem::size_of::<VpNode>() + node_heap(&n.inner) + node_heap(&n.outer)
            })
        }
        node_heap(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_nearest, brute_force_within};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Entry::new(
                    Point::new(rng.gen_range(-500.0..500.0), rng.gen_range(-500.0..500.0)),
                    i as u32,
                )
            })
            .collect()
    }

    fn sorted_ids(entries: &[Entry]) -> Vec<u32> {
        let mut ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_tree() {
        let t = VpTree::build(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.within_radius(&Point::origin(), 10.0).is_empty());
        assert!(t.nearest(&Point::origin(), 5).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn single_entry() {
        let t = VpTree::build(vec![Entry::new(Point::new(1.0, 1.0), 0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.within_radius(&Point::origin(), 2.0).len(), 1);
        assert!(t.within_radius(&Point::origin(), 1.0).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_on_random_data() {
        for seed in 0..5 {
            let t = VpTree::build(random_entries(200, seed));
            t.check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn radius_matches_brute_force() {
        let entries = random_entries(400, 11);
        let t = VpTree::build(entries.clone());
        for r in [0.0, 25.0, 120.0, 1_500.0] {
            let center = Point::new(40.0, -60.0);
            let got = t.within_radius(&center, r);
            let want = brute_force_within(&entries, &center, r);
            assert_eq!(sorted_ids(&got), sorted_ids(&want), "radius {r}");
        }
    }

    #[test]
    fn radius_boundary_inclusive() {
        let entries = vec![
            Entry::new(Point::new(3.0, 4.0), 0), // exactly 5 from origin
            Entry::new(Point::new(10.0, 0.0), 1),
        ];
        let t = VpTree::build(entries);
        assert_eq!(t.within_radius(&Point::origin(), 5.0).len(), 1);
    }

    #[test]
    fn knn_matches_brute_force() {
        let entries = random_entries(350, 12);
        let t = VpTree::build(entries.clone());
        let center = Point::new(-123.0, 88.0);
        for k in [1, 3, 10, 50, 350, 400] {
            let got = t.nearest(&center, k);
            let want = brute_force_nearest(&entries, &center, k);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.distance - w.distance).abs() < 1e-9,
                    "k={k}: {} vs {}",
                    g.distance,
                    w.distance
                );
            }
        }
    }

    #[test]
    fn duplicate_positions_kept() {
        let p = Point::new(7.0, -7.0);
        let entries: Vec<Entry> = (0..25).map(|i| Entry::new(p, i)).collect();
        let t = VpTree::build(entries);
        assert_eq!(t.len(), 25);
        t.check_invariants().unwrap();
        assert_eq!(t.within_radius(&p, 0.0).len(), 25);
    }

    #[test]
    fn height_reasonable_for_balanced_build() {
        let t = VpTree::build(random_entries(1024, 13));
        // Median splits give height ~log2(n) = 10; allow generous slack for
        // tie-normalization imbalance.
        assert!(t.height() <= 26, "height {}", t.height());
    }

    #[test]
    fn build_deterministic() {
        let entries = random_entries(100, 14);
        let a = VpTree::build(entries.clone());
        let b = VpTree::build(entries);
        let qa = a.nearest(&Point::origin(), 10);
        let qb = b.nearest(&Point::origin(), 10);
        assert_eq!(qa.len(), qb.len());
        for (x, y) in qa.iter().zip(&qb) {
            assert_eq!(x.entry.id, y.entry.id);
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn build_rejects_nan() {
        VpTree::build(vec![Entry::new(Point::new(0.0, f64::NAN), 0)]);
    }
}
