//! A Guttman R-tree with quadratic split and STR bulk loading.
//!
//! This is the `pyrtree` stand-in for the paper's *metric space indexing*
//! baseline. Points are stored in leaves; every node keeps the tight
//! bounding box of its subtree. Radius queries descend only into nodes whose
//! box intersects the query disk; k-NN uses best-first search with the
//! `mindist` lower bound.

use crate::{Entry, Neighbor, SpatialIndex};
use enviro_geo::{BoundingBox, Point};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default maximum number of entries/children per node.
pub const DEFAULT_MAX_ENTRIES: usize = 8;

/// An R-tree over point [`Entry`]s.
///
/// ```
/// use enviro_geo::Point;
/// use enviro_index::{Entry, RTree, SpatialIndex};
///
/// let entries: Vec<Entry> = (0..100)
///     .map(|i| Entry::new(Point::new(i as f64, 0.0), i))
///     .collect();
/// let tree = RTree::bulk_load(entries);
/// assert_eq!(tree.within_radius(&Point::new(10.0, 0.0), 2.5).len(), 5);
/// assert_eq!(tree.nearest(&Point::new(42.4, 0.0), 1)[0].entry.id, 42);
/// ```
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
    max_entries: usize,
    min_entries: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        bbox: BoundingBox,
        entries: Vec<Entry>,
    },
    Inner {
        bbox: BoundingBox,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }

    fn recompute_bbox(&mut self) {
        match self {
            Node::Leaf { bbox, entries } => {
                *bbox = BoundingBox::from_points(entries.iter().map(|e| e.pos));
            }
            Node::Inner { bbox, children } => {
                *bbox = children
                    .iter()
                    .fold(BoundingBox::empty(), |b, c| b.union(c.bbox()));
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Inner { children, .. } => 1 + children.first().map_or(0, Node::depth),
        }
    }
}

impl Default for RTree {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_ENTRIES)
    }
}

impl RTree {
    /// Creates an empty tree with the given node capacity (`max_entries ≥ 4`;
    /// `min_entries = max_entries / 2`).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R-tree needs max_entries >= 4");
        Self {
            root: None,
            len: 0,
            max_entries,
            min_entries: max_entries / 2,
        }
    }

    /// Bulk loads a tree using sort-tile-recursive (STR) packing — the fast
    /// path for the per-window index builds of the evaluation.
    pub fn bulk_load(mut entries: Vec<Entry>) -> Self {
        Self::bulk_load_with_capacity(DEFAULT_MAX_ENTRIES, &mut entries)
    }

    /// STR bulk load with an explicit node capacity.
    pub fn bulk_load_with_capacity(max_entries: usize, entries: &mut [Entry]) -> Self {
        assert!(max_entries >= 4, "R-tree needs max_entries >= 4");
        let mut tree = Self::new(max_entries);
        if entries.is_empty() {
            return tree;
        }
        tree.len = entries.len();
        // Build leaf level with STR tiling.
        let mut leaves = str_pack_leaves(entries, max_entries);
        // Pack upper levels until a single root remains.
        while leaves.len() > 1 {
            leaves = str_pack_inner(leaves, max_entries);
        }
        tree.root = leaves.pop();
        debug_assert_eq!(tree.check_invariants(), Ok(()));
        tree
    }

    /// The node capacity this tree was built with.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// The bounding box of all indexed points.
    pub fn bounds(&self) -> BoundingBox {
        self.root
            .as_ref()
            .map_or(BoundingBox::empty(), |r| *r.bbox())
    }

    /// Tree height in levels (0 when empty, 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }

    /// Inserts one entry (Guttman insert with quadratic split).
    pub fn insert(&mut self, entry: Entry) {
        assert!(entry.pos.is_finite(), "cannot index a non-finite position");
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    bbox: BoundingBox::from_point(entry.pos),
                    entries: vec![entry],
                });
            }
            Some(mut root) => {
                if let Some(sibling) =
                    insert_rec(&mut root, entry, self.max_entries, self.min_entries)
                {
                    // Root split: grow the tree by one level.
                    let bbox = root.bbox().union(sibling.bbox());
                    self.root = Some(Node::Inner {
                        bbox,
                        children: vec![root, sibling],
                    });
                } else {
                    self.root = Some(root);
                }
            }
        }
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// Collects every entry whose position lies inside `query` (inclusive).
    pub fn range(&self, query: &BoundingBox) -> Vec<Entry> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            range_rec(root, query, &mut out);
        }
        out
    }

    /// Checks the R-tree structural invariants; used by tests.
    ///
    /// Verifies (a) every node's box tightly bounds its subtree, (b) no node
    /// exceeds the capacity and none is empty (STR packing legitimately
    /// leaves the rightmost path under the minimum fill, so only the upper
    /// bound is enforced), and (c) all leaves sit at the same depth. Returns
    /// a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let Some(root) = &self.root else {
            return if self.len == 0 {
                Ok(())
            } else {
                Err("empty tree with non-zero len".into())
            };
        };
        let mut leaf_depths = Vec::new();
        let counted = check_rec(root, 1, self.max_entries, &mut leaf_depths)?;
        if counted != self.len {
            return Err(format!("len {} but counted {counted}", self.len));
        }
        if leaf_depths.windows(2).any(|w| w[0] != w[1]) {
            return Err(format!("leaves at differing depths: {leaf_depths:?}"));
        }
        Ok(())
    }
}

impl SpatialIndex for RTree {
    fn len(&self) -> usize {
        self.len
    }

    fn for_each_within(&self, center: &Point, radius: f64, visit: &mut dyn FnMut(&Entry)) {
        let Some(root) = &self.root else { return };
        let r2 = radius * radius;
        radius_rec(root, center, radius, r2, visit);
    }

    fn nearest(&self, center: &Point, k: usize) -> Vec<Neighbor> {
        let Some(root) = &self.root else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        // Best-first search over a min-heap keyed by mindist.
        #[derive(Debug)]
        enum Item<'a> {
            Node(&'a Node),
            Point(Entry),
        }
        struct HeapEntry<'a> {
            dist: f64,
            seq: u32,
            item: Item<'a>,
        }
        impl PartialEq for HeapEntry<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist && self.seq == other.seq
            }
        }
        impl Eq for HeapEntry<'_> {}
        impl PartialOrd for HeapEntry<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapEntry<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap; tie-break by seq (ids) for
                // deterministic output.
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .expect("finite distances")
                    .then(other.seq.cmp(&self.seq))
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: root.bbox().min_distance(center),
            seq: 0,
            item: Item::Node(root),
        });
        let mut out = Vec::with_capacity(k.min(self.len));
        while let Some(HeapEntry { dist, item, .. }) = heap.pop() {
            match item {
                Item::Point(entry) => {
                    out.push(Neighbor {
                        entry,
                        distance: dist,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(Node::Leaf { entries, .. }) => {
                    for e in entries {
                        heap.push(HeapEntry {
                            dist: e.pos.distance(center),
                            seq: e.id,
                            item: Item::Point(*e),
                        });
                    }
                }
                Item::Node(Node::Inner { children, .. }) => {
                    for c in children {
                        heap.push(HeapEntry {
                            dist: c.bbox().min_distance(center),
                            seq: 0,
                            item: Item::Node(c),
                        });
                    }
                }
            }
        }
        out
    }
}

fn range_rec(node: &Node, query: &BoundingBox, out: &mut Vec<Entry>) {
    if !node.bbox().intersects(query) {
        return;
    }
    match node {
        Node::Leaf { entries, .. } => {
            out.extend(entries.iter().filter(|e| query.contains(&e.pos)));
        }
        Node::Inner { children, .. } => {
            for c in children {
                range_rec(c, query, out);
            }
        }
    }
}

fn radius_rec(node: &Node, center: &Point, radius: f64, r2: f64, visit: &mut dyn FnMut(&Entry)) {
    if !node.bbox().intersects_circle(center, radius) {
        return;
    }
    match node {
        Node::Leaf { entries, .. } => {
            for e in entries {
                if e.pos.distance_sq(center) <= r2 {
                    visit(e);
                }
            }
        }
        Node::Inner { children, .. } => {
            for c in children {
                radius_rec(c, center, radius, r2, visit);
            }
        }
    }
}

/// Recursive insert; returns a split-off sibling when the child overflowed.
fn insert_rec(node: &mut Node, entry: Entry, max: usize, min: usize) -> Option<Node> {
    match node {
        Node::Leaf { bbox, entries } => {
            entries.push(entry);
            *bbox = bbox.expanded(entry.pos);
            if entries.len() <= max {
                None
            } else {
                let (a, b) = quadratic_split_entries(std::mem::take(entries), min);
                let (bb_a, ents_a) = a;
                let (bb_b, ents_b) = b;
                *bbox = bb_a;
                *entries = ents_a;
                Some(Node::Leaf {
                    bbox: bb_b,
                    entries: ents_b,
                })
            }
        }
        Node::Inner { bbox, children } => {
            // Choose the child needing least enlargement (ties: smaller area).
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.bbox().enlargement(entry.pos);
                    let eb = b.bbox().enlargement(entry.pos);
                    ea.partial_cmp(&eb).expect("finite").then(
                        a.bbox()
                            .area()
                            .partial_cmp(&b.bbox().area())
                            .expect("finite"),
                    )
                })
                .map(|(i, _)| i)
                .expect("inner nodes are never empty");
            let split = insert_rec(&mut children[idx], entry, max, min);
            *bbox = bbox.expanded(entry.pos);
            if let Some(sibling) = split {
                children.push(sibling);
                if children.len() > max {
                    let (a, b) = quadratic_split_children(std::mem::take(children), min);
                    let (bb_a, ch_a) = a;
                    let (bb_b, ch_b) = b;
                    *bbox = bb_a;
                    *children = ch_a;
                    return Some(Node::Inner {
                        bbox: bb_b,
                        children: ch_b,
                    });
                }
            }
            None
        }
    }
}

/// Guttman's quadratic split over leaf entries.
fn quadratic_split_entries(
    entries: Vec<Entry>,
    min: usize,
) -> ((BoundingBox, Vec<Entry>), (BoundingBox, Vec<Entry>)) {
    split_generic(entries, min, |e| BoundingBox::from_point(e.pos))
}

/// Guttman's quadratic split over inner-node children.
fn quadratic_split_children(
    children: Vec<Node>,
    min: usize,
) -> ((BoundingBox, Vec<Node>), (BoundingBox, Vec<Node>)) {
    split_generic(children, min, |c| *c.bbox())
}

/// Shared quadratic-split machinery: pick the pair of items wasting the most
/// area as seeds, then greedily assign the rest by least enlargement,
/// honouring the minimum-fill constraint.
fn split_generic<T>(
    mut items: Vec<T>,
    min: usize,
    bbox_of: impl Fn(&T) -> BoundingBox,
) -> ((BoundingBox, Vec<T>), (BoundingBox, Vec<T>)) {
    debug_assert!(items.len() >= 2);
    // Seed selection: the pair whose combined box wastes the most area.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let bi = bbox_of(&items[i]);
            let bj = bbox_of(&items[j]);
            let waste = bi.union(&bj).area() - bi.area() - bj.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    // Remove seeds (larger index first to keep the smaller valid).
    let item_b = items.swap_remove(seed_b);
    let item_a = items.swap_remove(seed_a);
    let mut bb_a = bbox_of(&item_a);
    let mut bb_b = bbox_of(&item_b);
    let mut group_a = vec![item_a];
    let mut group_b = vec![item_b];
    let total = items.len() + 2;
    while let Some(next) = items.pop() {
        // Minimum-fill: if one group must take all remaining items, do so.
        let remaining = items.len() + 1;
        if group_a.len() + remaining <= min {
            bb_a = bb_a.union(&bbox_of(&next));
            group_a.push(next);
            continue;
        }
        if group_b.len() + remaining <= min {
            bb_b = bb_b.union(&bbox_of(&next));
            group_b.push(next);
            continue;
        }
        let nb = bbox_of(&next);
        let grow_a = bb_a.union(&nb).area() - bb_a.area();
        let grow_b = bb_b.union(&nb).area() - bb_b.area();
        if grow_a < grow_b || (grow_a == grow_b && group_a.len() <= group_b.len()) {
            bb_a = bb_a.union(&nb);
            group_a.push(next);
        } else {
            bb_b = bb_b.union(&nb);
            group_b.push(next);
        }
    }
    debug_assert_eq!(group_a.len() + group_b.len(), total);
    ((bb_a, group_a), (bb_b, group_b))
}

/// STR leaf packing: sort by x, tile into vertical slabs (a multiple of
/// `cap` wide, so leaves never straddle slabs), sort each slab by y, chop
/// into leaves of `cap` entries.
fn str_pack_leaves(entries: &mut [Entry], cap: usize) -> Vec<Node> {
    let n = entries.len();
    let leaf_count = n.div_ceil(cap);
    let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
    let slab_size = slab_count * cap;
    entries.sort_by(|a, b| a.pos.x.partial_cmp(&b.pos.x).expect("finite"));
    for slab in entries.chunks_mut(slab_size) {
        slab.sort_by(|a, b| a.pos.y.partial_cmp(&b.pos.y).expect("finite"));
    }
    entries
        .chunks(cap)
        .map(|chunk| {
            let mut leaf = Node::Leaf {
                bbox: BoundingBox::empty(),
                entries: chunk.to_vec(),
            };
            leaf.recompute_bbox();
            leaf
        })
        .collect()
}

/// STR packing of one upper level: the same tiling over child-box centers.
fn str_pack_inner(mut nodes: Vec<Node>, cap: usize) -> Vec<Node> {
    let n = nodes.len();
    let parent_count = n.div_ceil(cap);
    let slab_count = (parent_count as f64).sqrt().ceil() as usize;
    let slab_size = slab_count * cap;
    nodes.sort_by(|a, b| {
        a.bbox()
            .center()
            .x
            .partial_cmp(&b.bbox().center().x)
            .expect("finite")
    });
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        nodes[start..end].sort_by(|a, b| {
            a.bbox()
                .center()
                .y
                .partial_cmp(&b.bbox().center().y)
                .expect("finite")
        });
        start = end;
    }
    // Slab width is a multiple of cap, so cap-sized chunks never straddle a
    // slab boundary; consume the nodes without cloning subtrees.
    let mut parents = Vec::with_capacity(parent_count);
    let mut iter = nodes.into_iter();
    loop {
        let children: Vec<Node> = iter.by_ref().take(cap).collect();
        if children.is_empty() {
            break;
        }
        let mut parent = Node::Inner {
            bbox: BoundingBox::empty(),
            children,
        };
        parent.recompute_bbox();
        parents.push(parent);
    }
    parents
}

fn check_rec(
    node: &Node,
    depth: usize,
    max: usize,
    leaf_depths: &mut Vec<usize>,
) -> Result<usize, String> {
    match node {
        Node::Leaf { bbox, entries } => {
            if entries.is_empty() {
                return Err("empty leaf".into());
            }
            if entries.len() > max {
                return Err(format!("leaf occupancy {} over capacity", entries.len()));
            }
            let tight = BoundingBox::from_points(entries.iter().map(|e| e.pos));
            if tight != *bbox {
                return Err("leaf bbox not tight".into());
            }
            leaf_depths.push(depth);
            Ok(entries.len())
        }
        Node::Inner { bbox, children } => {
            if children.is_empty() {
                return Err("empty inner node".into());
            }
            if children.len() > max {
                return Err(format!("inner occupancy {} over capacity", children.len()));
            }
            let tight = children
                .iter()
                .fold(BoundingBox::empty(), |b, c| b.union(c.bbox()));
            if tight != *bbox {
                return Err("inner bbox not tight".into());
            }
            let mut count = 0;
            for c in children {
                count += check_rec(c, depth + 1, max, leaf_depths)?;
            }
            Ok(count)
        }
    }
}

impl enviro_memsize::DeepSize for RTree {
    fn heap_size(&self) -> usize {
        fn node_heap(node: &Node) -> usize {
            match node {
                Node::Leaf { entries, .. } => entries.capacity() * std::mem::size_of::<Entry>(),
                Node::Inner { children, .. } => {
                    children.capacity() * std::mem::size_of::<Node>()
                        + children.iter().map(node_heap).sum::<usize>()
                }
            }
        }
        // The root is stored inline in the Option (no Box), so only its
        // owned buffers count.
        self.root.as_ref().map_or(0, node_heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_nearest, brute_force_within};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Entry::new(
                    Point::new(
                        rng.gen_range(-1000.0..1000.0),
                        rng.gen_range(-1000.0..1000.0),
                    ),
                    i as u32,
                )
            })
            .collect()
    }

    fn sorted_ids(entries: &[Entry]) -> Vec<u32> {
        let mut ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_tree_queries() {
        let t = RTree::default();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.within_radius(&Point::origin(), 100.0).is_empty());
        assert!(t.nearest(&Point::origin(), 3).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_len() {
        let mut t = RTree::default();
        for e in random_entries(100, 1) {
            t.insert(e);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_radius_matches_brute_force() {
        let entries = random_entries(300, 2);
        let mut t = RTree::new(5);
        for e in &entries {
            t.insert(*e);
        }
        t.check_invariants().unwrap();
        for (i, r) in [(0, 50.0), (1, 200.0), (2, 700.0), (3, 0.0)] {
            let center = Point::new(i as f64 * 100.0 - 150.0, 50.0);
            let got = t.within_radius(&center, r);
            let want = brute_force_within(&entries, &center, r);
            assert_eq!(sorted_ids(&got), sorted_ids(&want), "radius {r}");
        }
    }

    #[test]
    fn bulk_load_radius_matches_brute_force() {
        let entries = random_entries(500, 3);
        let t = RTree::bulk_load(entries.clone());
        assert_eq!(t.len(), 500);
        t.check_invariants().unwrap();
        let center = Point::new(10.0, -20.0);
        for r in [0.0, 30.0, 150.0, 2_000.0] {
            let got = t.within_radius(&center, r);
            let want = brute_force_within(&entries, &center, r);
            assert_eq!(sorted_ids(&got), sorted_ids(&want), "radius {r}");
        }
    }

    #[test]
    fn bulk_load_small_inputs() {
        for n in [0usize, 1, 2, 7, 8, 9] {
            let entries = random_entries(n, 10 + n as u64);
            let t = RTree::bulk_load(entries.clone());
            assert_eq!(t.len(), n, "n={n}");
            t.check_invariants()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            let got = t.within_radius(&Point::origin(), 1e6);
            assert_eq!(got.len(), n);
        }
    }

    #[test]
    fn range_query_matches_filter() {
        let entries = random_entries(200, 4);
        let t = RTree::bulk_load(entries.clone());
        let q = BoundingBox::new(Point::new(-200.0, -300.0), Point::new(250.0, 100.0));
        let got = t.range(&q);
        let want: Vec<Entry> = entries
            .iter()
            .filter(|e| q.contains(&e.pos))
            .copied()
            .collect();
        assert_eq!(sorted_ids(&got), sorted_ids(&want));
    }

    #[test]
    fn knn_matches_brute_force() {
        let entries = random_entries(400, 5);
        let t = RTree::bulk_load(entries.clone());
        let center = Point::new(123.0, -77.0);
        for k in [1, 5, 17, 400, 500] {
            let got = t.nearest(&center, k);
            let want = brute_force_nearest(&entries, &center, k);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.entry.id, w.entry.id, "k={k}");
                assert!((g.distance - w.distance).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn knn_on_inserted_tree() {
        let entries = random_entries(150, 6);
        let mut t = RTree::new(4);
        for e in &entries {
            t.insert(*e);
        }
        let got = t.nearest(&Point::origin(), 10);
        let want = brute_force_nearest(&entries, &Point::origin(), 10);
        let got_ids: Vec<u32> = got.iter().map(|n| n.entry.id).collect();
        let want_ids: Vec<u32> = want.iter().map(|n| n.entry.id).collect();
        assert_eq!(got_ids, want_ids);
    }

    #[test]
    fn duplicate_positions_are_kept() {
        let p = Point::new(5.0, 5.0);
        let mut t = RTree::new(4);
        for id in 0..20 {
            t.insert(Entry::new(p, id));
        }
        assert_eq!(t.len(), 20);
        t.check_invariants().unwrap();
        assert_eq!(t.within_radius(&p, 0.0).len(), 20);
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = RTree::bulk_load(random_entries(1_000, 7));
        // With cap 8: 1000 points → 125 leaves → ~16 inner → 2 → 1. Height ≈ 4.
        assert!(t.height() >= 3 && t.height() <= 5, "height {}", t.height());
    }

    #[test]
    fn bounds_covers_all_points() {
        let entries = random_entries(64, 8);
        let t = RTree::bulk_load(entries.clone());
        let b = t.bounds();
        for e in &entries {
            assert!(b.contains(&e.pos));
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn insert_rejects_nan() {
        let mut t = RTree::default();
        t.insert(Entry::new(Point::new(f64::NAN, 0.0), 0));
    }
}
