//! A uniform grid index (spatial hashing baseline).
//!
//! Not evaluated in the paper, but the natural third baseline between the
//! naïve scan and the tree indexes: bucket every entry by grid cell, answer
//! a radius query by scanning only the cells the disk touches. Cheap to
//! build, cheap to store, and competitive when data density is uniform —
//! which LCSN data is decidedly *not*, making it a useful ablation.

use crate::{brute_force_nearest, Entry, Neighbor, SpatialIndex};
use enviro_geo::{BoundingBox, Grid, Point};

/// A uniform grid over the data extent, with per-cell entry buckets.
#[derive(Debug, Clone)]
pub struct GridIndex {
    grid: Option<Grid>,
    /// Buckets in row-major flat order; empty when `grid` is `None`.
    buckets: Vec<Vec<Entry>>,
    len: usize,
}

impl GridIndex {
    /// Builds an index with cells of `cell_size` meters over the entries'
    /// bounding box (padded slightly so boundary points fall inside).
    pub fn build(entries: &[Entry], cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert!(
            entries.iter().all(|e| e.pos.is_finite()),
            "cannot index non-finite positions"
        );
        if entries.is_empty() {
            return Self {
                grid: None,
                buckets: Vec::new(),
                len: 0,
            };
        }
        let extent = BoundingBox::from_points(entries.iter().map(|e| e.pos)).padded(1e-9);
        let grid = Grid::with_cell_size(extent, cell_size);
        let mut buckets = vec![Vec::new(); grid.len()];
        for e in entries {
            let cell = grid
                .cell_of(&e.pos)
                .expect("entry inside padded extent by construction");
            buckets[grid.flat_index(cell)].push(*e);
        }
        Self {
            grid: Some(grid),
            buckets,
            len: entries.len(),
        }
    }

    /// The grid geometry, when non-empty.
    pub fn grid(&self) -> Option<&Grid> {
        self.grid.as_ref()
    }

    /// Number of non-empty cells — a skew diagnostic: LCSN data leaves most
    /// cells empty.
    pub fn occupied_cells(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }
}

impl SpatialIndex for GridIndex {
    fn len(&self) -> usize {
        self.len
    }

    fn for_each_within(&self, center: &Point, radius: f64, visit: &mut dyn FnMut(&Entry)) {
        let Some(grid) = &self.grid else { return };
        let r2 = radius * radius;
        // Stream the candidate cells: a Vec of cell ids here would be the
        // only per-query allocation in the radius-scan hot path.
        grid.for_each_cell_in_radius(center, radius, &mut |cell| {
            for e in &self.buckets[grid.flat_index(cell)] {
                if e.pos.distance_sq(center) <= r2 {
                    visit(e);
                }
            }
        });
    }

    fn nearest(&self, center: &Point, k: usize) -> Vec<Neighbor> {
        let Some(grid) = &self.grid else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        // Expanding-ring search: scan rings of cells outward until the k-th
        // best distance is closed by the ring's guaranteed minimum distance.
        let (cw, ch) = grid.cell_size();
        let ring_step = cw.min(ch);
        let mut radius = ring_step;
        let max_radius = {
            let e = grid.extent();
            // Far enough to cover the whole extent from any query point.
            let dx = (center.x - e.min.x).abs().max((center.x - e.max.x).abs());
            let dy = (center.y - e.min.y).abs().max((center.y - e.max.y).abs());
            (dx * dx + dy * dy).sqrt() + ring_step
        };
        loop {
            let hits = self.within_radius(center, radius);
            if hits.len() >= k || radius >= max_radius {
                let mut nn = brute_force_nearest(&hits, center, k);
                // A hit set of >= k within `radius` is definitive only if
                // the k-th distance is <= radius; otherwise widen once more.
                if nn.len() >= k && nn.last().expect("len >= k >= 1").distance <= radius {
                    nn.truncate(k);
                    return nn;
                }
                if radius >= max_radius {
                    return nn; // the whole extent was covered
                }
            }
            radius *= 2.0;
        }
    }
}

impl enviro_memsize::DeepSize for GridIndex {
    fn heap_size(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<Vec<Entry>>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<Entry>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_within;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                Entry::new(
                    Point::new(rng.gen_range(-300.0..300.0), rng.gen_range(-300.0..300.0)),
                    i as u32,
                )
            })
            .collect()
    }

    fn sorted_ids(entries: &[Entry]) -> Vec<u32> {
        let mut ids: Vec<u32> = entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(&[], 10.0);
        assert!(idx.is_empty());
        assert!(idx.within_radius(&Point::origin(), 100.0).is_empty());
        assert!(idx.nearest(&Point::origin(), 3).is_empty());
    }

    #[test]
    fn radius_matches_brute_force() {
        let entries = random_entries(500, 21);
        let idx = GridIndex::build(&entries, 25.0);
        for r in [0.0, 10.0, 80.0, 900.0] {
            let center = Point::new(-40.0, 95.0);
            let got = idx.within_radius(&center, r);
            let want = brute_force_within(&entries, &center, r);
            assert_eq!(sorted_ids(&got), sorted_ids(&want), "radius {r}");
        }
    }

    #[test]
    fn radius_query_far_outside_extent() {
        let entries = random_entries(100, 22);
        let idx = GridIndex::build(&entries, 50.0);
        let far = Point::new(10_000.0, 10_000.0);
        assert!(idx.within_radius(&far, 10.0).is_empty());
        // But a big enough radius still reaches the data.
        let all = idx.within_radius(&far, 20_000.0);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn knn_matches_brute_force() {
        let entries = random_entries(300, 23);
        let idx = GridIndex::build(&entries, 30.0);
        for k in [1, 4, 25, 300, 350] {
            let center = Point::new(12.0, -200.0);
            let got = idx.nearest(&center, k);
            let want = brute_force_nearest(&entries, &center, k);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.distance - w.distance).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn knn_from_far_outside() {
        let entries = random_entries(50, 24);
        let idx = GridIndex::build(&entries, 40.0);
        let far = Point::new(5_000.0, -5_000.0);
        let got = idx.nearest(&far, 5);
        let want = brute_force_nearest(&entries, &far, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.distance - w.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn single_point_and_boundary() {
        let entries = vec![Entry::new(Point::new(1.0, 1.0), 0)];
        let idx = GridIndex::build(&entries, 10.0);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.within_radius(&Point::new(1.0, 1.0), 0.0).len(), 1);
        assert_eq!(idx.nearest(&Point::origin(), 1).len(), 1);
    }

    #[test]
    fn occupied_cells_reflects_skew() {
        // All points on a line: most of the grid stays empty.
        let entries: Vec<Entry> = (0..100)
            .map(|i| Entry::new(Point::new(i as f64 * 10.0, 0.0), i as u32))
            .collect();
        let idx = GridIndex::build(&entries, 10.0);
        let grid_cells = idx.grid().unwrap().len();
        assert!(idx.occupied_cells() <= 101);
        assert!(grid_cells >= idx.occupied_cells());
    }

    #[test]
    fn identical_points_single_cell() {
        let p = Point::new(3.0, 3.0);
        let entries: Vec<Entry> = (0..10).map(|i| Entry::new(p, i)).collect();
        let idx = GridIndex::build(&entries, 5.0);
        assert_eq!(idx.occupied_cells(), 1);
        assert_eq!(idx.within_radius(&p, 0.0).len(), 10);
    }
}
