//! Metric-space indexes for EnviroMeter's baseline query-processing methods.
//!
//! The paper's *metric space indexing* method answers radius queries over the
//! raw tuples of a window through an index instead of an exhaustive scan
//! (§2.2). It evaluates two indexes — an R-tree and a VP-tree — which this
//! crate implements from scratch, plus a uniform grid index as an additional
//! baseline:
//!
//! * [`RTree`] — classic Guttman R-tree with quadratic split and an STR
//!   (sort-tile-recursive) bulk loader; range, radius and best-first k-NN
//!   queries.
//! * [`VpTree`] — vantage-point tree with median splits; radius and k-NN
//!   queries. Deliberately built with one heap allocation per node — the
//!   textbook layout — which is also what makes its memory footprint the
//!   largest in Figure 7(a).
//! * [`KdTree`] — balanced k-d tree in a flat arena: the most compact of
//!   the three trees, with median splits on alternating axes.
//! * [`GridIndex`] — uniform-cell bucketing, the simplest spatial hash.
//!
//! All indexes implement [`SpatialIndex`] over [`Entry`] items (a position
//! plus an opaque `u32` id referencing the raw tuple in its window), so the
//! query layer can treat them interchangeably.

#![forbid(unsafe_code)]
// Panic-prone sites in this crate are legacy debt tracked by the xtask
// panic ratchet (crates/xtask/panic-baseline.toml): counts may only go
// down. The clippy warn-level lints stay crate-allowed until the burn-down
// reaches zero; prefer typed errors in new code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod grid_index;
pub mod kdtree;
pub mod rtree;
pub mod vptree;

pub use grid_index::GridIndex;
pub use kdtree::KdTree;
pub use rtree::RTree;
pub use vptree::VpTree;

use enviro_geo::Point;

/// One indexed item: a position and the id of the raw tuple it stands for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Sampling position of the tuple.
    pub pos: Point,
    /// Opaque identifier (the tuple's offset inside its window).
    pub id: u32,
}

impl enviro_memsize::DeepSize for Entry {
    #[inline]
    fn heap_size(&self) -> usize {
        0
    }
}

impl Entry {
    /// Creates an entry.
    #[inline]
    pub const fn new(pos: Point, id: u32) -> Self {
        Self { pos, id }
    }
}

/// A neighbour returned by a k-NN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The matching entry.
    pub entry: Entry,
    /// Its distance from the query point, in meters.
    pub distance: f64,
}

/// The operations the query layer needs from a spatial index.
pub trait SpatialIndex {
    /// Number of indexed entries.
    fn len(&self) -> usize;

    /// `true` if no entries are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `visit` for every entry within `radius` of `center`
    /// (boundary inclusive).
    fn for_each_within(&self, center: &Point, radius: f64, visit: &mut dyn FnMut(&Entry));

    /// Collects the entries within `radius` of `center`.
    ///
    /// Order is index-specific; callers needing determinism should sort.
    fn within_radius(&self, center: &Point, radius: f64) -> Vec<Entry> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, &mut |e| out.push(*e));
        out
    }

    /// The `k` nearest entries to `center`, closest first; ties broken by id.
    fn nearest(&self, center: &Point, k: usize) -> Vec<Neighbor>;
}

/// Reference implementation used by tests and the paper's naïve method:
/// a linear scan over a slice of entries.
pub fn brute_force_within(entries: &[Entry], center: &Point, radius: f64) -> Vec<Entry> {
    let r2 = radius * radius;
    entries
        .iter()
        .filter(|e| e.pos.distance_sq(center) <= r2)
        .copied()
        .collect()
}

/// Reference k-NN by full sort; closest first, ties by id.
pub fn brute_force_nearest(entries: &[Entry], center: &Point, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = entries
        .iter()
        .map(|e| Neighbor {
            entry: *e,
            distance: e.pos.distance(center),
        })
        .collect();
    all.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite distances")
            .then(a.entry.id.cmp(&b.entry.id))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_within_includes_boundary() {
        let entries = [
            Entry::new(Point::new(0.0, 0.0), 0),
            Entry::new(Point::new(3.0, 4.0), 1), // exactly 5 away
            Entry::new(Point::new(6.0, 0.0), 2),
        ];
        let hits = brute_force_within(&entries, &Point::origin(), 5.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn brute_force_nearest_orders_and_breaks_ties_by_id() {
        let entries = [
            Entry::new(Point::new(1.0, 0.0), 5),
            Entry::new(Point::new(-1.0, 0.0), 2),
            Entry::new(Point::new(3.0, 0.0), 1),
        ];
        let nn = brute_force_nearest(&entries, &Point::origin(), 3);
        assert_eq!(nn[0].entry.id, 2); // tie at distance 1 → lower id first
        assert_eq!(nn[1].entry.id, 5);
        assert_eq!(nn[2].entry.id, 1);
    }

    #[test]
    fn brute_force_nearest_truncates_to_k() {
        let entries = [
            Entry::new(Point::new(1.0, 0.0), 0),
            Entry::new(Point::new(2.0, 0.0), 1),
        ];
        assert_eq!(brute_force_nearest(&entries, &Point::origin(), 1).len(), 1);
        assert_eq!(brute_force_nearest(&entries, &Point::origin(), 9).len(), 2);
    }
}
