//! Property-based tests: every index must agree with the brute-force scan.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_geo::Point;
use enviro_index::{
    brute_force_nearest, brute_force_within, Entry, GridIndex, KdTree, RTree, SpatialIndex, VpTree,
};
use proptest::prelude::*;

fn arb_entries(max: usize) -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::vec((-500.0..500.0f64, -500.0..500.0f64), 0..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| Entry::new(Point::new(x, y), i as u32))
            .collect()
    })
}

fn ids(entries: &[Entry]) -> Vec<u32> {
    let mut v: Vec<u32> = entries.iter().map(|e| e.id).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_bulk_radius_equals_brute_force(
        entries in arb_entries(120),
        cx in -600.0..600.0f64,
        cy in -600.0..600.0f64,
        r in 0.0..800.0f64,
    ) {
        let tree = RTree::bulk_load(entries.clone());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let center = Point::new(cx, cy);
        prop_assert_eq!(
            ids(&tree.within_radius(&center, r)),
            ids(&brute_force_within(&entries, &center, r))
        );
    }

    #[test]
    fn rtree_insert_radius_equals_brute_force(
        entries in arb_entries(80),
        cx in -600.0..600.0f64,
        cy in -600.0..600.0f64,
        r in 0.0..800.0f64,
    ) {
        let mut tree = RTree::new(4);
        for e in &entries {
            tree.insert(*e);
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let center = Point::new(cx, cy);
        prop_assert_eq!(
            ids(&tree.within_radius(&center, r)),
            ids(&brute_force_within(&entries, &center, r))
        );
    }

    #[test]
    fn vptree_radius_equals_brute_force(
        entries in arb_entries(120),
        cx in -600.0..600.0f64,
        cy in -600.0..600.0f64,
        r in 0.0..800.0f64,
    ) {
        let tree = VpTree::build(entries.clone());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let center = Point::new(cx, cy);
        prop_assert_eq!(
            ids(&tree.within_radius(&center, r)),
            ids(&brute_force_within(&entries, &center, r))
        );
    }

    #[test]
    fn kdtree_radius_equals_brute_force(
        entries in arb_entries(120),
        cx in -600.0..600.0f64,
        cy in -600.0..600.0f64,
        r in 0.0..800.0f64,
    ) {
        let tree = KdTree::build(entries.clone());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let center = Point::new(cx, cy);
        prop_assert_eq!(
            ids(&tree.within_radius(&center, r)),
            ids(&brute_force_within(&entries, &center, r))
        );
    }

    #[test]
    fn grid_radius_equals_brute_force(
        entries in arb_entries(120),
        cx in -600.0..600.0f64,
        cy in -600.0..600.0f64,
        r in 0.0..800.0f64,
        cell in 5.0..200.0f64,
    ) {
        let idx = GridIndex::build(&entries, cell);
        let center = Point::new(cx, cy);
        prop_assert_eq!(
            ids(&idx.within_radius(&center, r)),
            ids(&brute_force_within(&entries, &center, r))
        );
    }

    #[test]
    fn knn_distances_agree_across_indexes(
        entries in arb_entries(100),
        cx in -600.0..600.0f64,
        cy in -600.0..600.0f64,
        k in 1usize..12,
    ) {
        let center = Point::new(cx, cy);
        let want: Vec<f64> = brute_force_nearest(&entries, &center, k)
            .iter()
            .map(|n| n.distance)
            .collect();
        let rtree = RTree::bulk_load(entries.clone());
        let vptree = VpTree::build(entries.clone());
        let kdtree = KdTree::build(entries.clone());
        let grid = GridIndex::build(&entries, 50.0);
        for (name, got) in [
            ("rtree", rtree.nearest(&center, k)),
            ("vptree", vptree.nearest(&center, k)),
            ("kdtree", kdtree.nearest(&center, k)),
            ("grid", grid.nearest(&center, k)),
        ] {
            prop_assert_eq!(got.len(), want.len(), "{} count", name);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.distance - w).abs() < 1e-9, "{}: {} vs {}", name, g.distance, w);
            }
        }
    }

    #[test]
    fn knn_results_sorted_by_distance(
        entries in arb_entries(100),
        k in 1usize..20,
    ) {
        let center = Point::origin();
        let rtree = RTree::bulk_load(entries.clone());
        let vptree = VpTree::build(entries);
        for nn in [rtree.nearest(&center, k), vptree.nearest(&center, k)] {
            for w in nn.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance);
            }
        }
    }
}
