//! Wire-codec throughput: encode/decode cost of the messages the phone and
//! server exchange, binary vs text.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enviro_data::Timestamp;
use enviro_geo::Point;
use enviro_meter::LinearModel;
use enviro_net::{BinaryCodec, Request, Response, TextCodec, WireCodec, WireCover};
use std::hint::black_box;

fn sample_cover(regions: usize) -> WireCover {
    WireCover {
        valid_until: Timestamp::from_secs(14_400),
        regions: (0..regions)
            .map(|i| enviro_net::WireRegion {
                centroid: Point::new(i as f64 * 100.0, -(i as f64) * 50.0),
                model: enviro_net::protocol::WireModel::Linear(
                    [i as f64; LinearModel::COEFFICIENT_COUNT],
                ),
            })
            .collect(),
    }
}

fn bench_codecs(c: &mut Criterion) {
    let query = Request::Query {
        time: Timestamp::from_secs(12_345),
        pos: Point::new(123.456, -654.321),
    };
    let cover = Response::Cover(sample_cover(16));

    let mut group = c.benchmark_group("codec");
    for (name, codec) in [
        ("binary", &BinaryCodec as &dyn WireCodec),
        ("text", &TextCodec as &dyn WireCodec),
    ] {
        group.bench_with_input(BenchmarkId::new("encode_query", name), &name, |b, _| {
            b.iter(|| black_box(codec.encode_request(black_box(&query))));
        });
        let query_bytes = codec.encode_request(&query);
        group.bench_with_input(BenchmarkId::new("decode_query", name), &name, |b, _| {
            b.iter(|| black_box(codec.decode_request(black_box(&query_bytes)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("encode_cover16", name), &name, |b, _| {
            b.iter(|| black_box(codec.encode_response(black_box(&cover))));
        });
        let cover_bytes = codec.encode_response(&cover);
        group.bench_with_input(BenchmarkId::new("decode_cover16", name), &name, |b, _| {
            b.iter(|| black_box(codec.decode_response(black_box(&cover_bytes)).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
