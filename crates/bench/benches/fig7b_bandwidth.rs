//! Criterion bench for Figure 7(b): end-to-end session cost (CPU side) of
//! the baseline vs model-cache clients.
//!
//! The virtual-clock *time* factor is reported by the `figures` binary;
//! here we track the real compute cost of running a 100-tuple session —
//! encode/decode, server processing, cache lookups — which must stay
//! negligible next to the simulated network times.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use enviro_bench::workload::{Scale, RADIUS_M};
use enviro_data::WindowSpec;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BaselineClient, BinaryCodec, EnviroServer, LinkProfile, ModelCacheClient, SimulatedLink,
};
use std::hint::black_box;

fn bench_sessions(c: &mut Criterion) {
    let sim = enviro_data::LausanneSim::lausanne(Scale::Quick.sim_config(0));
    let dataset = sim.generate();
    let platform = EnviroMeter::new(
        dataset,
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
    let trajectory = sim.continuous_trajectory(100, 60, 1);
    // Warm the cover cache so the bench isolates steady-state cost.
    let mut warm_link = SimulatedLink::new(LinkProfile::IDEAL);
    BaselineClient::new(BinaryCodec)
        .run(&server, &trajectory, &mut warm_link)
        .expect("warmup session");

    let mut group = c.benchmark_group("fig7b_session");
    group.bench_function("baseline_100_tuples", |b| {
        b.iter(|| {
            let mut link = SimulatedLink::new(LinkProfile::GPRS);
            let stats = BaselineClient::new(BinaryCodec)
                .run(&server, &trajectory, &mut link)
                .expect("baseline session");
            black_box(stats.usage.sent_bytes)
        });
    });
    group.bench_function("model_cache_100_tuples", |b| {
        b.iter(|| {
            let mut link = SimulatedLink::new(LinkProfile::GPRS);
            let mut client = ModelCacheClient::new(BinaryCodec);
            let stats = client
                .run(&server, &trajectory, &mut link)
                .expect("model-cache session");
            black_box(stats.usage.sent_bytes)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
