//! Index-construction cost per window: the price the metric-space methods
//! pay before they can answer their first query.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enviro_bench::workload::{build, Scale};
use enviro_index::{Entry, GridIndex, RTree, VpTree};
use std::hint::black_box;

fn bench_index_builds(c: &mut Criterion) {
    let workload = build(Scale::Quick, 0);
    let mut group = c.benchmark_group("index_build");
    for h in [240usize, 5_000] {
        let entries: Vec<Entry> = workload.dataset.tuples()[..h]
            .iter()
            .enumerate()
            .map(|(i, t)| Entry::new(t.pos, i as u32))
            .collect();
        group.bench_with_input(BenchmarkId::new("rtree_bulk", h), &h, |b, _| {
            b.iter(|| black_box(RTree::bulk_load(black_box(entries.clone()))));
        });
        group.bench_with_input(BenchmarkId::new("rtree_insert", h), &h, |b, _| {
            b.iter(|| {
                let mut t = RTree::default();
                for e in &entries {
                    t.insert(*e);
                }
                black_box(t)
            });
        });
        group.bench_with_input(BenchmarkId::new("vptree", h), &h, |b, _| {
            b.iter(|| black_box(VpTree::build(black_box(entries.clone()))));
        });
        group.bench_with_input(BenchmarkId::new("grid", h), &h, |b, _| {
            b.iter(|| black_box(GridIndex::build(black_box(&entries), 1_000.0)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_builds);
criterion_main!(benches);
