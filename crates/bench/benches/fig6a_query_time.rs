//! Criterion bench for Figure 6(a): per-query latency of the four methods
//! at the sweep's endpoints (H = 40 and H = 240).
//!
//! The `figures` binary reports the full-workload elapsed time (the paper's
//! y-axis); this bench gives statistically robust per-query latencies for
//! regression tracking.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enviro_bench::fig6a::engine_for_h;
use enviro_bench::workload::{build, Scale};
use enviro_meter::QueryMethod;
use std::hint::black_box;

fn bench_query_time(c: &mut Criterion) {
    let workload = build(Scale::Quick, 0);
    let mut group = c.benchmark_group("fig6a_query");
    for h in [40usize, 240] {
        let engine = engine_for_h(&workload, h);
        for method in [
            QueryMethod::ModelCover,
            QueryMethod::VpTree,
            QueryMethod::RTree,
            QueryMethod::Naive,
        ] {
            engine.prepare(method);
            let queries = &workload.queries;
            group.bench_with_input(BenchmarkId::new(method.name(), h), &h, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(engine.query(black_box(q), method))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_time);
criterion_main!(benches);
