//! Model-creation cost: Ad-KMN cover builds vs plain k-means, per window
//! size. The paper's lazy update policy amortizes this cost over a window's
//! validity period; this bench quantifies what is amortized.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enviro_bench::workload::{build, Scale};
use enviro_data::{Pollutant, WindowSpec, Windows};
use enviro_meter::{AdKmn, AdKmnConfig, KMeans, KMeansConfig};
use std::hint::black_box;

fn bench_builds(c: &mut Criterion) {
    let workload = build(Scale::Quick, 0);
    let mut group = c.benchmark_group("adkmn_build");
    for h in [40usize, 240, 1_000] {
        let window = Windows::new(&workload.dataset, WindowSpec::ByCount(h))
            .next()
            .expect("window exists");
        let tuples = window.tuples;
        group.bench_with_input(BenchmarkId::new("adkmn", h), &h, |b, _| {
            let adkmn = AdKmn::new(AdKmnConfig::default());
            b.iter(|| black_box(adkmn.run(black_box(tuples), Pollutant::Co2)));
        });
        let positions: Vec<enviro_geo::Point> = tuples.iter().map(|t| t.pos).collect();
        group.bench_with_input(BenchmarkId::new("kmeans_k2", h), &h, |b, _| {
            b.iter(|| {
                black_box(KMeans::fit(
                    black_box(&positions),
                    2,
                    &KMeansConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
