//! Concurrent-serving throughput: end-to-end batches through the sharded
//! thread pool, plus the isolated per-frame serving cost.
//!
//! The full sweep (with the ChannelTransport baseline and JSON output)
//! lives in the `throughput` binary; this bench gives criterion-grade
//! timings for the pieces: one batch frame served end-to-end at each
//! worker count, and the raw `handle_bytes_into` hot path.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enviro_bench::workload::{Scale, RADIUS_M};
use enviro_data::{LausanneSim, QueryTuple, WindowSpec};
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{BinaryCodec, ConcurrentTransport, EnviroServer, Request, WireCodec};
use std::hint::black_box;
use std::sync::Arc;

fn build_server(seed: u64) -> EnviroServer<BinaryCodec> {
    let sim = LausanneSim::lausanne(Scale::Quick.sim_config(seed));
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    platform
        .engine()
        .prepare_parallel_auto(QueryMethod::ModelCover);
    EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover)
}

fn batch_frame(sim: &LausanneSim, n: usize) -> Vec<u8> {
    let queries: Vec<QueryTuple> = sim.continuous_trajectory(n, 60, 5);
    BinaryCodec.encode_request(&Request::QueryBatch { seq: 1, queries })
}

fn bench_throughput(c: &mut Criterion) {
    let sim = LausanneSim::lausanne(Scale::Quick.sim_config(0));
    let server = Arc::new(build_server(0));

    let mut group = c.benchmark_group("throughput");

    // The raw serving hot path: one batch frame, no transport.
    for n in [1usize, 16, 64] {
        let frame = batch_frame(&sim, n);
        let server = Arc::clone(&server);
        group.bench_with_input(BenchmarkId::new("handle_bytes/batch", n), &n, |b, _| {
            let mut reply = Vec::new();
            b.iter(|| {
                server.handle_bytes_into(black_box(&frame), &mut reply);
                black_box(reply.len())
            });
        });
    }

    // End-to-end through the thread pool: one pipelined session, batch 64.
    for workers in [1usize, 2, 4] {
        let transport = ConcurrentTransport::spawn_shared(Arc::clone(&server), workers).unwrap();
        let frame = batch_frame(&sim, 64);
        group.bench_with_input(
            BenchmarkId::new("session_roundtrip/batch64", workers),
            &workers,
            |b, _| {
                let mut session = transport.session();
                b.iter(|| {
                    let reply = session
                        .call_with(|out| out.extend_from_slice(black_box(&frame)))
                        .unwrap();
                    black_box(reply.len())
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
