//! Durable write path: the isolated costs behind the `ingest` binary's
//! end-to-end numbers — one `IngestBatch` frame encoded, served (WAL
//! append + ack), and appended raw at the storage layer.
//!
//! The throughput-vs-batch sweep with JSON output lives in the `ingest`
//! binary; this bench gives criterion-grade timings for the pieces.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enviro_bench::ingest::synthetic_tuples;
use enviro_data::{Pollutant, WindowSpec};
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{BinaryCodec, EnviroServer, IngestConfig, IngestState, Request, WireCodec};
use enviro_storage::{WalConfig, WalStore};
use std::hint::black_box;
use std::sync::Arc;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "enviro-criterion-ingest-{tag}-{}",
        std::process::id()
    ))
}

fn ingest_server(state: &Arc<IngestState>) -> EnviroServer<BinaryCodec> {
    EnviroServer::new(
        EnviroMeter::new(
            enviro_data::Dataset::new(Pollutant::Co2),
            WindowSpec::ByDuration(3_600),
            AdKmnConfig::default(),
            1_000.0,
        ),
        BinaryCodec,
        QueryMethod::ModelCover,
    )
    .with_ingest(Arc::clone(state))
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");

    // Frame encode: tuples -> IngestBatch bytes.
    for n in [1usize, 64, 256] {
        let tuples = synthetic_tuples(n, 7);
        group.bench_with_input(BenchmarkId::new("encode_frame/batch", n), &n, |b, _| {
            b.iter(|| {
                black_box(BinaryCodec.encode_request(&Request::IngestBatch {
                    source: 1,
                    seq: 9,
                    tuples: black_box(tuples.clone()),
                }))
                .len()
            });
        });
    }

    // End-to-end serve: decode + dedup + WAL append + ack encode. The seq
    // advances every iteration so each frame really lands (no dedup hits).
    for n in [1usize, 64, 256] {
        let dir = bench_dir(&format!("serve-{n}"));
        let _ = std::fs::remove_dir_all(&dir);
        let state = Arc::new(
            IngestState::open(
                &dir,
                WalConfig {
                    window_secs: 3_600,
                    ..WalConfig::default()
                },
                IngestConfig::default(),
            )
            .unwrap(),
        );
        let server = ingest_server(&state);
        let tuples = synthetic_tuples(n, 7);
        group.bench_with_input(BenchmarkId::new("serve_frame/batch", n), &n, |b, _| {
            let mut seq = 0u32;
            let mut reply = Vec::new();
            b.iter(|| {
                seq = seq.wrapping_add(1);
                let frame = BinaryCodec.encode_request(&Request::IngestBatch {
                    source: 1,
                    seq,
                    tuples: tuples.clone(),
                });
                server.handle_bytes_into(black_box(&frame), &mut reply);
                black_box(reply.len())
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The storage layer alone: one durable append of 64 tuples.
    {
        let dir = bench_dir("wal-append");
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = WalStore::open(
            &dir,
            WalConfig {
                window_secs: 3_600,
                ..WalConfig::default()
            },
        )
        .unwrap();
        let tuples = synthetic_tuples(64, 7);
        group.bench_with_input(BenchmarkId::new("wal_append/batch", 64), &64, |b, _| {
            b.iter(|| black_box(wal.append_batch(black_box(&tuples)).unwrap()));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
