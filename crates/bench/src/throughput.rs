//! Throughput of the concurrent serving layer: queries/second over a
//! worker-count × batch-size sweep, against the single-thread
//! [`ChannelTransport`](enviro_net::ChannelTransport) baseline.
//!
//! The sweep answers the two deployment questions the tentpole makes:
//! how much does the sharded thread pool + pipelined sessions raise
//! sustained queries/second over the one-request-at-a-time baseline, and
//! how much does batching shrink wire bytes per query. On a single-core
//! host the speedup comes almost entirely from batch frames amortizing the
//! per-round-trip cost (channel hops, thread wakeups, framing) over many
//! tuples; extra workers add parallel speedup only when real cores back
//! them — the JSON records the core count so results read honestly.

use crate::workload::{Scale, RADIUS_M};
use enviro_data::{Pollutant, QueryTuple, WindowSpec};
use enviro_meter::{default_parallelism, AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BinaryCodec, ChannelTransport, ConcurrentTransport, EnviroClient, EnviroServer, Request,
    Response, Wire, WireCodec,
};
use enviro_schedule::sync::Arc;
use std::fmt::Write as _;
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Worker counts to sweep for the concurrent transport.
    pub workers: Vec<usize>,
    /// Batch sizes (tuples per `QueryBatch` frame) to sweep.
    pub batches: Vec<usize>,
    /// Concurrent client threads driving load.
    pub clients: usize,
    /// Queries each client issues per measurement.
    pub queries_per_client: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            workers: vec![1, 2, 4],
            batches: vec![1, 16, 64],
            clients: 4,
            queries_per_client: 2_000,
            seed: 0,
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Worker threads (the baseline row reports 1: its single server
    /// thread).
    pub workers: usize,
    /// Tuples per request frame (1 for the baseline's `Query` frames).
    pub batch: usize,
    /// Total queries answered across all clients.
    pub total_queries: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// Total request + reply bytes crossing the wire.
    pub wire_bytes: u64,
    /// Wire bytes per answered query.
    pub bytes_per_query: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// The single-thread `ChannelTransport` per-query baseline.
    pub baseline: ThroughputRow,
    /// The concurrent-transport sweep, in `workers`-major order.
    pub rows: Vec<ThroughputRow>,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub cores: usize,
    /// Clients that drove the load.
    pub clients: usize,
}

impl ThroughputReport {
    /// The sweep row for (`workers`, `batch`), if measured.
    pub fn row(&self, workers: usize, batch: usize) -> Option<&ThroughputRow> {
        self.rows
            .iter()
            .find(|r| r.workers == workers && r.batch == batch)
    }

    /// Queries/second of (`workers`, `batch`) relative to the baseline.
    pub fn speedup(&self, workers: usize, batch: usize) -> Option<f64> {
        self.row(workers, batch)
            .map(|r| r.qps / self.baseline.qps.max(1e-9))
    }

    /// Wire bytes/query of (`workers`, `batch`) relative to the baseline.
    pub fn bytes_ratio(&self, workers: usize, batch: usize) -> Option<f64> {
        self.row(workers, batch)
            .map(|r| r.bytes_per_query / self.baseline.bytes_per_query.max(1e-9))
    }

    /// Serializes the report as pretty-printed JSON (no dependencies; every
    /// value is a number, so no string escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"throughput\",");
        let _ = writeln!(out, "  \"cores\": {},", self.cores);
        let _ = writeln!(out, "  \"clients\": {},", self.clients);
        let _ = write!(out, "  \"baseline\": ");
        row_json(&mut out, &self.baseline, 2);
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(out, "    ");
            row_json(&mut out, row, 4);
            let _ = writeln!(out, "{}", if i + 1 < self.rows.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ],");
        let best_workers = self.rows.iter().map(|r| r.workers).max().unwrap_or(1);
        let best_batch = self.rows.iter().map(|r| r.batch).max().unwrap_or(1);
        let _ = writeln!(
            out,
            "  \"speedup_at_{best_workers}workers_batch{best_batch}\": {:.3},",
            self.speedup(best_workers, best_batch).unwrap_or(0.0)
        );
        let _ = writeln!(
            out,
            "  \"bytes_per_query_ratio_batch16\": {:.4}",
            self.bytes_ratio(best_workers.min(4), 16).unwrap_or(1.0)
        );
        let _ = writeln!(out, "}}");
        out
    }
}

fn row_json(out: &mut String, row: &ThroughputRow, indent: usize) {
    let pad = " ".repeat(indent);
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "{pad}  \"workers\": {},", row.workers);
    let _ = writeln!(out, "{pad}  \"batch\": {},", row.batch);
    let _ = writeln!(out, "{pad}  \"total_queries\": {},", row.total_queries);
    let _ = writeln!(out, "{pad}  \"elapsed_secs\": {:.6},", row.elapsed_secs);
    let _ = writeln!(out, "{pad}  \"qps\": {:.1},", row.qps);
    let _ = writeln!(out, "{pad}  \"wire_bytes\": {},", row.wire_bytes);
    let _ = writeln!(
        out,
        "{pad}  \"bytes_per_query\": {:.3}",
        row.bytes_per_query
    );
    let _ = write!(out, "{pad}}}");
}

/// A [`Wire`] adapter that counts request and reply bytes.
struct CountingWire<W> {
    inner: W,
    bytes: u64,
}

impl<W: Wire> Wire for CountingWire<W> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], enviro_net::TransportError> {
        self.bytes += request.len() as u64;
        let reply = self.inner.exchange(request)?;
        self.bytes += reply.len() as u64;
        Ok(reply)
    }
}

/// Builds the benchmark server: quick-scale workload, hour-long windows,
/// model-cover serving, every window cache prebuilt so measurements see
/// steady state rather than first-touch cache builds.
fn build_server(seed: u64) -> EnviroServer<BinaryCodec> {
    let sim = enviro_data::LausanneSim::lausanne(Scale::Quick.sim_config(seed));
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    platform
        .engine()
        .prepare_parallel_auto(QueryMethod::ModelCover);
    EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover)
}

/// Client `k`'s trajectory (distinct per client).
fn trajectory(seed: u64, k: usize, len: usize) -> Vec<QueryTuple> {
    let sim = enviro_data::LausanneSim::lausanne(Scale::Quick.sim_config(seed));
    sim.continuous_trajectory(len, 60, seed ^ (k as u64 + 1))
}

/// Measures the `ChannelTransport` baseline: one server thread, one
/// `Query` frame (and round-trip) per tuple, `clients` concurrent callers.
fn run_baseline(cfg: &ThroughputConfig) -> ThroughputRow {
    let transport = match ChannelTransport::spawn(build_server(cfg.seed)) {
        Ok(t) => t,
        Err(e) => return failed_row(1, 1, &e.to_string()),
    };
    let trajectories: Vec<Vec<QueryTuple>> = (0..cfg.clients)
        .map(|k| trajectory(cfg.seed, k, cfg.queries_per_client))
        .collect();

    let start = Instant::now();
    let bytes: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = trajectories
            .iter()
            .map(|traj| {
                let transport = &transport;
                scope.spawn(move || {
                    let mut bytes = 0u64;
                    for q in traj {
                        let req = BinaryCodec.encode_request(&Request::Query {
                            time: q.time,
                            pos: q.pos,
                        });
                        bytes += req.len() as u64;
                        if let Ok(reply) = transport.call(req) {
                            bytes += reply.len() as u64;
                        }
                    }
                    bytes
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    finish_row(1, 1, cfg.clients * cfg.queries_per_client, elapsed, bytes)
}

/// Measures one concurrent-transport cell: `workers` threads, batch frames
/// of `batch` tuples, `clients` concurrent sessions.
fn run_concurrent(cfg: &ThroughputConfig, workers: usize, batch: usize) -> ThroughputRow {
    let server = Arc::new(build_server(cfg.seed));
    let transport = match ConcurrentTransport::spawn_shared(server, workers) {
        Ok(t) => t,
        Err(e) => return failed_row(workers, batch, &e.to_string()),
    };
    let trajectories: Vec<Vec<QueryTuple>> = (0..cfg.clients)
        .map(|k| trajectory(cfg.seed, k, cfg.queries_per_client))
        .collect();

    let start = Instant::now();
    let (bytes, answered): (u64, usize) = std::thread::scope(|scope| {
        let handles: Vec<_> = trajectories
            .iter()
            .map(|traj| {
                let transport = &transport;
                scope.spawn(move || {
                    let mut wire = CountingWire {
                        inner: transport.session(),
                        bytes: 0,
                    };
                    let mut client =
                        EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(batch);
                    let mut values = Vec::new();
                    match client.query_batch(&mut wire, traj, &mut values) {
                        Ok(()) => (wire.bytes, values.len()),
                        Err(_) => (wire.bytes, 0),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().ok())
            .fold((0, 0), |(b, n), (rb, rn)| (b + rb, n + rn))
    });
    let elapsed = start.elapsed().as_secs_f64();
    finish_row(workers, batch, answered, elapsed, bytes)
}

fn finish_row(
    workers: usize,
    batch: usize,
    total_queries: usize,
    elapsed_secs: f64,
    wire_bytes: u64,
) -> ThroughputRow {
    ThroughputRow {
        workers,
        batch,
        total_queries,
        elapsed_secs,
        qps: total_queries as f64 / elapsed_secs.max(1e-9),
        wire_bytes,
        bytes_per_query: wire_bytes as f64 / (total_queries as f64).max(1.0),
    }
}

/// A zeroed row for a cell whose transport could not even start (thread
/// spawn failure); impossible to measure, visible in the output.
fn failed_row(workers: usize, batch: usize, why: &str) -> ThroughputRow {
    eprintln!("throughput: cell workers={workers} batch={batch} failed: {why}");
    finish_row(workers, batch, 0, f64::INFINITY, 0)
}

/// Runs the full sweep.
pub fn run(cfg: &ThroughputConfig) -> ThroughputReport {
    let baseline = run_baseline(cfg);
    let mut rows = Vec::with_capacity(cfg.workers.len() * cfg.batches.len());
    for &workers in &cfg.workers {
        for &batch in &cfg.batches {
            rows.push(run_concurrent(cfg, workers, batch));
        }
    }
    ThroughputReport {
        baseline,
        rows,
        cores: default_parallelism(),
        clients: cfg.clients,
    }
}

/// Validates one response kind the sweep relies on (used by tests).
pub fn sanity_check_one_exchange(seed: u64) -> bool {
    let server = build_server(seed);
    let traj = trajectory(seed, 0, 4);
    let req = BinaryCodec.encode_request(&Request::QueryBatch {
        seq: 1,
        queries: traj.clone(),
    });
    let reply = server.handle_bytes(&req);
    matches!(
        BinaryCodec.decode_response(&reply),
        Ok(Response::ValueBatch { seq: 1, values, .. }) if values.len() == traj.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ThroughputConfig {
        ThroughputConfig {
            workers: vec![1, 2],
            batches: vec![1, 64],
            clients: 2,
            queries_per_client: 120,
            seed: 7,
        }
    }

    #[test]
    fn sweep_produces_all_cells() {
        let report = run(&tiny_config());
        assert_eq!(report.rows.len(), 4);
        assert!(report.baseline.qps > 0.0);
        for row in &report.rows {
            assert_eq!(row.total_queries, 240, "cell {row:?}");
            assert!(row.qps > 0.0, "cell {row:?}");
        }
    }

    #[test]
    fn batching_cuts_wire_bytes_per_query() {
        // The compact binary codec leaves little framing to amortize, and
        // protocol v2's integrity fields (seq + CRC, 8 B per frame each
        // way) push break-even out to ~batch 32 — so the strict reduction
        // is asserted at batch 64, where amortization clearly wins.
        let report = run(&tiny_config());
        let ratio = report.bytes_ratio(2, 64).unwrap_or(1.0);
        assert!(ratio < 1.0, "batch 64 bytes/query ratio {ratio} not < 1.0");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = run(&ThroughputConfig {
            workers: vec![1],
            batches: vec![1],
            clients: 1,
            queries_per_client: 30,
            seed: 3,
        });
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"workers\"").count(), 2);
        assert!(json.contains("\"cores\""));
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }

    #[test]
    fn batch_exchange_sanity() {
        assert!(sanity_check_one_exchange(11));
    }
}
