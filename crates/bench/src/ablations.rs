//! Ablations of the design choices the paper leaves implicit (DESIGN.md §4).

use crate::fig7b;
use crate::workload::{Workload, RADIUS_M};
use enviro_data::{Pollutant, WindowSpec, Windows};
use enviro_meter::{AccuracyReport, AdKmn, AdKmnConfig, QueryEngine, QueryMethod, SplitStrategy};
use enviro_net::{BinaryCodec, LinkProfile, TextCodec};
use std::time::Instant;

/// One row of the `abl-k0` sweep: initial cluster count vs outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct K0Row {
    /// Initial k.
    pub k0: usize,
    /// Final number of models.
    pub models: usize,
    /// Split rounds performed.
    pub rounds: usize,
    /// Worst per-region training error (%).
    pub worst_error: f64,
    /// Build time in seconds.
    pub build_secs: f64,
}

/// abl-k0: how does the initial k affect Ad-KMN's result on one window?
///
/// Run with τ_n = 1 % — tight enough that the adaptive loop actually has
/// to split (at the default 2 % the initial clustering already passes and
/// every strategy degenerates to plain k-means).
pub fn k0_sweep(workload: &Workload, h: usize, k0_values: &[usize]) -> Vec<K0Row> {
    let Some(window) = Windows::new(&workload.dataset, WindowSpec::ByCount(h)).next() else {
        return Vec::new();
    };
    k0_values
        .iter()
        .map(|&k0| {
            let adkmn = AdKmn::new(AdKmnConfig {
                initial_k: k0,
                tau_percent: 1.0,
                ..AdKmnConfig::default()
            });
            let start = Instant::now();
            let result = adkmn.run(window.tuples, Pollutant::Co2);
            K0Row {
                k0,
                models: result.model_count(),
                rounds: result.rounds,
                worst_error: result.worst_error_percent(),
                build_secs: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// One row of the `abl-split` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitRow {
    /// The strategy.
    pub strategy: SplitStrategy,
    /// Final number of models.
    pub models: usize,
    /// Split rounds performed.
    pub rounds: usize,
    /// Worst per-region training error (%).
    pub worst_error: f64,
}

/// abl-split: does the worst-error seed (the paper's choice) beat random
/// seeds or centroid jitter?
pub fn split_sweep(workload: &Workload, h: usize) -> Vec<SplitRow> {
    let Some(window) = Windows::new(&workload.dataset, WindowSpec::ByCount(h)).next() else {
        return Vec::new();
    };
    [
        SplitStrategy::WorstErrorPoint,
        SplitStrategy::RandomPoint,
        SplitStrategy::CentroidJitter,
    ]
    .iter()
    .map(|&strategy| {
        let adkmn = AdKmn::new(AdKmnConfig {
            split: strategy,
            tau_percent: 1.0, // see k0_sweep: force the adaptive loop to act
            ..AdKmnConfig::default()
        });
        let result = adkmn.run(window.tuples, Pollutant::Co2);
        SplitRow {
            strategy,
            models: result.model_count(),
            rounds: result.rounds,
            worst_error: result.worst_error_percent(),
        }
    })
    .collect()
}

/// One row of the `abl-tau` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TauRow {
    /// The threshold τ_n in percent.
    pub tau: f64,
    /// Mean models per window.
    pub mean_models: f64,
    /// Model-cover accuracy over the workload.
    pub report: AccuracyReport,
}

/// abl-tau: the model-count / accuracy trade-off as τ_n varies.
pub fn tau_sweep(workload: &Workload, h: usize, taus: &[f64]) -> Vec<TauRow> {
    taus.iter()
        .map(|&tau| {
            let engine = QueryEngine::new(
                workload.dataset.clone(),
                WindowSpec::ByCount(h),
                AdKmnConfig {
                    tau_percent: tau,
                    ..AdKmnConfig::default()
                },
                RADIUS_M,
            );
            engine.prepare(QueryMethod::ModelCover);
            let total_models: usize = (0..engine.window_count())
                .map(|i| engine.cover(i).len())
                .sum();
            let report =
                AccuracyReport::from_predictions(workload.accuracy_queries.iter().map(|q| {
                    (
                        engine.query(q, QueryMethod::ModelCover),
                        workload.sim.true_value(q.time, &q.pos),
                    )
                }));
            TauRow {
                tau,
                mean_models: total_models as f64 / engine.window_count().max(1) as f64,
                report,
            }
        })
        .collect()
}

/// One row of the `abl-codec` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecRow {
    /// Codec name.
    pub codec: &'static str,
    /// The fig7b comparison under that codec.
    pub comparison: fig7b::Comparison,
}

/// abl-codec: rerun Figure 7(b) with the verbose text codec.
pub fn codec_sweep(seed: u64) -> Vec<CodecRow> {
    vec![
        CodecRow {
            codec: "binary",
            comparison: fig7b::run_with(BinaryCodec, LinkProfile::GPRS, seed),
        },
        CodecRow {
            codec: "text",
            comparison: fig7b::run_with(TextCodec, LinkProfile::GPRS, seed),
        },
    ]
}

/// One row of the `abl-radius` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RadiusRow {
    /// Query radius in meters.
    pub radius: f64,
    /// Naïve-method accuracy at that radius.
    pub report: AccuracyReport,
    /// Naïve-method time for the workload, seconds.
    pub elapsed_secs: f64,
}

/// abl-radius: how the raw-data methods trade coverage, accuracy and time
/// as `r` varies (the paper fixes r = 1 km without discussion).
pub fn radius_sweep(workload: &Workload, h: usize, radii: &[f64]) -> Vec<RadiusRow> {
    radii
        .iter()
        .map(|&radius| {
            let engine = QueryEngine::new(
                workload.dataset.clone(),
                WindowSpec::ByCount(h),
                AdKmnConfig::default(),
                radius,
            );
            let start = Instant::now();
            let report = AccuracyReport::from_predictions(workload.queries.iter().map(|q| {
                (
                    engine.query(q, QueryMethod::Naive),
                    workload.sim.true_value(q.time, &q.pos),
                )
            }));
            RadiusRow {
                radius,
                report,
                elapsed_secs: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// One row of the `abl-spread` sweep: accuracy vs lateral query distance
/// from the corridors.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadRow {
    /// Lateral spread of query positions, meters.
    pub spread: f64,
    /// Model-cover accuracy.
    pub cover: AccuracyReport,
    /// Naive-method accuracy.
    pub naive: AccuracyReport,
}

/// abl-spread: both methods learn from on-track data only; how fast does
/// accuracy degrade as queries move away from the corridors? (This is the
/// question the paper's on-track NRMSE cannot answer.)
pub fn spread_sweep(workload: &Workload, h: usize, spreads: &[f64]) -> Vec<SpreadRow> {
    let engine = QueryEngine::new(
        workload.dataset.clone(),
        WindowSpec::ByCount(h),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    engine.prepare(QueryMethod::ModelCover);
    spreads
        .iter()
        .map(|&spread| {
            let queries =
                workload
                    .sim
                    .query_workload(workload.accuracy_queries.len(), spread, 0x5BEAD);
            let eval = |method: QueryMethod| {
                AccuracyReport::from_predictions(queries.iter().map(|q| {
                    (
                        engine.query(q, method),
                        workload.sim.true_value(q.time, &q.pos),
                    )
                }))
            };
            SpreadRow {
                spread,
                cover: eval(QueryMethod::ModelCover),
                naive: eval(QueryMethod::Naive),
            }
        })
        .collect()
}

/// One row of the `abl-interval` sweep: the Android app's settings screen
/// exposes "the interval for the position updates"; this quantifies what
/// that knob costs.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRow {
    /// Position-update interval, seconds.
    pub interval_secs: i64,
    /// The fig7b comparison at that interval (same 100-minute journey).
    pub comparison: fig7b::Comparison,
}

/// abl-interval: bandwidth/time of a fixed-duration journey as the app's
/// update interval varies. The baseline cost scales with the number of
/// updates; the model-cache cost does not (one download serves any rate).
pub fn interval_sweep(seed: u64, intervals: &[i64]) -> Vec<IntervalRow> {
    intervals
        .iter()
        .map(|&interval_secs| IntervalRow {
            interval_secs,
            comparison: fig7b::run_with_interval(
                enviro_net::BinaryCodec,
                LinkProfile::GPRS,
                seed,
                interval_secs,
            ),
        })
        .collect()
}

/// One row of the `abl-loss` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRow {
    /// Per-attempt loss probability.
    pub loss: f64,
    /// The fig7b comparison under that loss rate.
    pub comparison: fig7b::Comparison,
}

/// abl-loss: does the model-cache advantage survive a lossy cell? The
/// baseline gives the bearer 100 chances per session to hit a
/// retransmission timeout; the model-cache gives it one.
pub fn loss_sweep(seed: u64, losses: &[f64]) -> Vec<LossRow> {
    losses
        .iter()
        .map(|&loss| LossRow {
            loss,
            comparison: fig7b::run_with(
                enviro_net::BinaryCodec,
                LinkProfile::GPRS.with_loss(loss),
                seed,
            ),
        })
        .collect()
}

/// One row of the `abl-build` comparison: the per-method cost of
/// materializing every window structure.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildRow {
    /// The method whose structures were built.
    pub method: QueryMethod,
    /// Time to prepare every window, seconds.
    pub prepare_secs: f64,
    /// Windows prepared.
    pub windows: usize,
}

/// abl-build: what does each method pay *before* the first query? This is
/// the cost the paper's lazy update policy amortizes over a window's
/// validity period — and the flip side of Figure 6(a), which deliberately
/// measures query time with structures prebuilt.
pub fn build_sweep(workload: &Workload, h: usize) -> Vec<BuildRow> {
    [
        QueryMethod::ModelCover,
        QueryMethod::VpTree,
        QueryMethod::RTree,
        QueryMethod::KdTree,
        QueryMethod::Grid,
        QueryMethod::Idw,
    ]
    .iter()
    .map(|&method| {
        let engine = QueryEngine::new(
            workload.dataset.clone(),
            WindowSpec::ByCount(h),
            AdKmnConfig::default(),
            RADIUS_M,
        );
        let start = Instant::now();
        engine.prepare(method);
        BuildRow {
            method,
            prepare_secs: start.elapsed().as_secs_f64(),
            windows: engine.window_count(),
        }
    })
    .collect()
}

/// One row of the `abl-warm` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmRow {
    /// "cold" or "warm".
    pub mode: &'static str,
    /// Total split rounds across all windows.
    pub total_rounds: usize,
    /// Mean models per window.
    pub mean_models: f64,
    /// Mean worst-region training error (%).
    pub mean_worst_error: f64,
    /// Total build time, seconds.
    pub build_secs: f64,
}

/// abl-warm: does warm-starting each window's Ad-KMN from the previous
/// window's centroids (cross-window adaptivity) save work without hurting
/// quality? Run at τ = 1 % so the adaptive loop actually splits.
pub fn warm_sweep(workload: &Workload, h: usize) -> Vec<WarmRow> {
    let windows: Vec<_> = Windows::new(&workload.dataset, WindowSpec::ByCount(h)).collect();
    let mut rows = Vec::with_capacity(3);
    for mode in ["cold", "warm", "warm+merge"] {
        let adkmn = AdKmn::new(AdKmnConfig {
            tau_percent: 1.0,
            merge_after_converge: mode == "warm+merge",
            ..AdKmnConfig::default()
        });
        let start = Instant::now();
        let mut total_rounds = 0usize;
        let mut total_models = 0usize;
        let mut total_worst = 0.0f64;
        let mut previous: Option<Vec<enviro_geo::Point>> = None;
        for w in &windows {
            let result = match (&previous, mode) {
                (Some(seeds), "warm") | (Some(seeds), "warm+merge") => {
                    adkmn.run_seeded(w.tuples, Pollutant::Co2, seeds)
                }
                _ => adkmn.run(w.tuples, Pollutant::Co2),
            };
            total_rounds += result.rounds;
            total_models += result.model_count();
            total_worst += result.worst_error_percent();
            if mode != "cold" {
                previous = Some(result.centroids);
            }
        }
        rows.push(WarmRow {
            mode,
            total_rounds,
            mean_models: total_models as f64 / windows.len().max(1) as f64,
            mean_worst_error: total_worst / windows.len().max(1) as f64,
            build_secs: start.elapsed().as_secs_f64(),
        });
    }
    rows
}

/// One row of the `abl-interp` sweep: interpolator comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpRow {
    /// Lateral spread of query positions, meters.
    pub spread: f64,
    /// Ad-KMN model cover.
    pub cover: AccuracyReport,
    /// Radius-bounded uniform average (the paper's naive).
    pub naive: AccuracyReport,
    /// Inverse-distance-weighted k-NN (extension).
    pub idw: AccuracyReport,
}

/// abl-interp: is the paper's uniform radius-average the right raw-data
/// strawman? IDW weights the same neighbourhood by distance and answers
/// everywhere — the strongest raw-data interpolator a practitioner would
/// reach for.
pub fn interp_sweep(workload: &Workload, h: usize, spreads: &[f64]) -> Vec<InterpRow> {
    let engine = QueryEngine::new(
        workload.dataset.clone(),
        WindowSpec::ByCount(h),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    engine.prepare(QueryMethod::ModelCover);
    engine.prepare(QueryMethod::Idw);
    spreads
        .iter()
        .map(|&spread| {
            let queries = if spread == 0.0 {
                workload.accuracy_queries.clone()
            } else {
                workload
                    .sim
                    .query_workload(workload.accuracy_queries.len(), spread, 0x1D6)
            };
            let eval = |method: QueryMethod| {
                AccuracyReport::from_predictions(queries.iter().map(|q| {
                    (
                        engine.query(q, method),
                        workload.sim.true_value(q.time, &q.pos),
                    )
                }))
            };
            InterpRow {
                spread,
                cover: eval(QueryMethod::ModelCover),
                naive: eval(QueryMethod::Naive),
                idw: eval(QueryMethod::Idw),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build, Scale};

    fn quick() -> Workload {
        build(Scale::Quick, 41)
    }

    #[test]
    fn k0_sweep_reports_each_value() {
        let rows = k0_sweep(&quick(), 240, &[1, 2, 4]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.models >= r.k0.min(240));
        }
    }

    #[test]
    fn split_sweep_covers_strategies() {
        let rows = split_sweep(&quick(), 240);
        assert_eq!(rows.len(), 3);
        assert!(rows
            .iter()
            .any(|r| r.strategy == SplitStrategy::WorstErrorPoint));
    }

    #[test]
    fn tau_sweep_monotone_models() {
        let w = quick();
        let rows = tau_sweep(&w, 240, &[8.0, 0.5]);
        // Tighter τ must not use fewer models.
        assert!(
            rows[1].mean_models >= rows[0].mean_models,
            "τ=0.5 {} vs τ=8 {}",
            rows[1].mean_models,
            rows[0].mean_models
        );
    }

    #[test]
    fn codec_sweep_text_heavier() {
        let rows = codec_sweep(42);
        let bin = &rows[0].comparison;
        let txt = &rows[1].comparison;
        assert!(txt.model_cache.usage.received_bytes > bin.model_cache.usage.received_bytes);
    }

    #[test]
    fn spread_sweep_degrades_with_distance() {
        let w = quick();
        let rows = spread_sweep(&w, 240, &[0.0, 800.0]);
        assert!(
            rows[1].cover.nrmse_percent >= rows[0].cover.nrmse_percent,
            "cover should degrade off-corridor"
        );
    }

    #[test]
    fn loss_sweep_lossy_links_cost_more_everywhere() {
        let rows = loss_sweep(61, &[0.0, 0.3]);
        let clean = &rows[0].comparison;
        let lossy = &rows[1].comparison;
        assert!(
            lossy.baseline.elapsed_secs > clean.baseline.elapsed_secs,
            "loss must slow the baseline"
        );
        // The caching advantage survives (and typically grows).
        assert!(lossy.time_factor() > 10.0, "{}", lossy.time_factor());
        // Answers unchanged: loss costs time/bytes, not correctness.
        assert_eq!(lossy.model_cache.values, clean.model_cache.values);
    }

    #[test]
    fn interval_sweep_baseline_scales_cache_does_not() {
        let rows = interval_sweep(51, &[120, 30]);
        let slow = &rows[0].comparison; // 120 s updates
        let fast = &rows[1].comparison; // 30 s updates: 4x the tuples
        assert!(
            fast.baseline.usage.sent_bytes > slow.baseline.usage.sent_bytes * 3,
            "baseline uplink must scale with update rate"
        );
        assert!(
            fast.model_cache.usage.sent_bytes <= slow.model_cache.usage.sent_bytes * 2,
            "model-cache uplink must stay ~flat"
        );
    }

    #[test]
    fn build_sweep_reports_every_method() {
        let w = quick();
        let rows = build_sweep(&w, 240);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.windows > 0));
        assert!(rows.iter().all(|r| r.prepare_secs >= 0.0));
    }

    #[test]
    fn warm_sweep_saves_rounds_without_losing_quality() {
        let w = quick();
        let rows = warm_sweep(&w, 500);
        let cold = &rows[0];
        let warm = &rows[1];
        assert!(warm.total_rounds <= cold.total_rounds);
        // Quality stays comparable (within 50 % relative).
        assert!(
            warm.mean_worst_error <= cold.mean_worst_error * 1.5 + 0.5,
            "warm {} vs cold {}",
            warm.mean_worst_error,
            cold.mean_worst_error
        );
    }

    #[test]
    fn interp_sweep_idw_full_coverage() {
        let w = quick();
        let rows = interp_sweep(&w, 240, &[0.0, 400.0]);
        for r in &rows {
            assert!(
                (r.idw.coverage() - 1.0).abs() < 1e-9,
                "IDW answers everywhere"
            );
        }
        // On sensed positions the cover clearly beats the uniform average;
        // IDW sits at the sensor-noise floor by construction (its nearest
        // neighbour IS the sensed sample), so the cover only needs to be
        // comparable to it — from ~20x less state.
        assert!(rows[0].cover.nrmse_percent < rows[0].naive.nrmse_percent);
        assert!(
            rows[0].cover.nrmse_percent < rows[0].idw.nrmse_percent * 1.5,
            "cover {} vs idw {}",
            rows[0].cover.nrmse_percent,
            rows[0].idw.nrmse_percent
        );
    }

    #[test]
    fn radius_sweep_wider_radius_more_coverage() {
        let w = quick();
        let rows = radius_sweep(&w, 240, &[250.0, 4_000.0]);
        assert!(rows[1].report.coverage() >= rows[0].report.coverage());
    }
}
