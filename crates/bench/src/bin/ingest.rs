//! Runs the durable-write-path sweep and writes
//! `results/BENCH_ingest.json`.
//!
//! ```text
//! ingest [--out PATH] [--seed N] [--tuples M] [--queries Q] [--workers W]
//! ```
//!
//! Sweeps ingest throughput over `IngestBatch` sizes {1, 16, 64, 256},
//! then measures per-frame query latency (p50/p99) twice — on a quiet
//! server and under a concurrent resilient writer with background cover
//! rebuilds — so the cost of the write path on the read path is a number,
//! not a claim. Latency cells are wall-clock timed; run on an idle host.

#![forbid(unsafe_code)]

use enviro_bench::ingest::{run, IngestBenchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = IngestBenchConfig::default();
    let mut out_path = String::from("results/BENCH_ingest.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().ok_or("--out needs a path")?.clone(),
            "--seed" => cfg.seed = iter.next().ok_or("--seed needs an integer")?.parse()?,
            "--tuples" => {
                cfg.tuples = iter.next().ok_or("--tuples needs an integer")?.parse()?;
            }
            "--queries" => {
                cfg.queries = iter.next().ok_or("--queries needs an integer")?.parse()?;
            }
            "--workers" => {
                cfg.workers = iter.next().ok_or("--workers needs an integer")?.parse()?;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: ingest [--out PATH] [--seed N] [--tuples M] [--queries Q] \
                     [--workers W]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    eprintln!(
        "ingest sweep: batches {:?}, {} tuples/cell, {} queries, {} workers (seed {})",
        cfg.batches, cfg.tuples, cfg.queries, cfg.workers, cfg.seed
    );
    let report = run(&cfg);
    for row in &report.throughput {
        println!(
            "batch {:>4}: {:>9.0} tuples/s ({} acked, {} failed, {} durable, {:.3} s)",
            row.batch, row.tuples_per_sec, row.acked, row.failed, row.durable, row.elapsed_secs
        );
    }
    for row in &report.latency {
        println!(
            "queries {}: p50 {:>7.1} us, p99 {:>8.1} us, {:>7.0} q/s \
             ({} tuples ingested alongside, {} generations published)",
            if row.concurrent_ingest {
                "under ingest"
            } else {
                "quiet       "
            },
            row.p50_us,
            row.p99_us,
            row.qps,
            row.ingested_during,
            row.generations_published
        );
    }
    for row in &report.throughput {
        if row.acked + row.failed != report.tuples as u64 {
            return Err(format!(
                "batch {}: {} tuples unaccounted for — durability invariant broken",
                row.batch,
                report.tuples as u64 - row.acked - row.failed
            )
            .into());
        }
    }
    std::fs::write(&out_path, report.to_json())?;
    eprintln!("wrote {out_path}");
    Ok(())
}
