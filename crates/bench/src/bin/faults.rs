//! Runs the fault-rate resilience sweep and writes
//! `results/BENCH_faults.json`.
//!
//! ```text
//! faults [--out PATH] [--seed N] [--tuples M] [--batch B]
//! ```
//!
//! Sweeps the base fault rate {0, 2, 5, 10, 20}% through a seeded chaos
//! wire and reports goodput, retry cost and outcome mix per rate. All time
//! is virtual, so the report is deterministic for a fixed seed and the
//! sweep finishes in seconds regardless of the injected latency.

#![forbid(unsafe_code)]

use enviro_bench::faults::{run, FaultsConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = FaultsConfig::default();
    let mut out_path = String::from("results/BENCH_faults.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().ok_or("--out needs a path")?.clone(),
            "--seed" => cfg.seed = iter.next().ok_or("--seed needs an integer")?.parse()?,
            "--tuples" => {
                cfg.tuples = iter.next().ok_or("--tuples needs an integer")?.parse()?;
            }
            "--batch" => cfg.batch = iter.next().ok_or("--batch needs an integer")?.parse()?,
            "--help" | "-h" => {
                eprintln!("usage: faults [--out PATH] [--seed N] [--tuples M] [--batch B]");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    eprintln!(
        "fault sweep: rates {:?}, {} tuples, batch {} (seed {})",
        cfg.rates, cfg.tuples, cfg.batch, cfg.seed
    );
    let report = run(&cfg);
    for row in &report.rows {
        println!(
            "rate {:>5.1}%: {:>6.0} fresh-q/s ({} fresh, {} stale, {} unavailable), \
             {} retries, {} exchanges, {} wrong",
            row.rate * 100.0,
            row.goodput_qps,
            row.fresh,
            row.stale,
            row.unavailable,
            row.client.retries,
            row.exchanges,
            row.wrong
        );
    }
    if report.total_wrong() != 0 {
        return Err(format!(
            "{} wrong answers — resilience invariant broken",
            report.total_wrong()
        )
        .into());
    }
    std::fs::write(&out_path, report.to_json())?;
    eprintln!("wrote {out_path}");
    Ok(())
}
