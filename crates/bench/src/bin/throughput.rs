//! Runs the concurrent-serving throughput sweep and writes
//! `results/BENCH_throughput.json`.
//!
//! ```text
//! throughput [--out PATH] [--seed N] [--clients K] [--queries M]
//! ```
//!
//! Sweeps worker count {1, 2, 4} × batch size {1, 16, 64} against the
//! single-thread `ChannelTransport` per-query baseline. The JSON records
//! the measuring host's core count: on a single core the speedup comes
//! from batch frames amortizing round-trip overhead, not from parallelism.

#![forbid(unsafe_code)]

use enviro_bench::throughput::{run, ThroughputConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ThroughputConfig::default();
    let mut out_path = String::from("results/BENCH_throughput.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().ok_or("--out needs a path")?.clone(),
            "--seed" => cfg.seed = iter.next().ok_or("--seed needs an integer")?.parse()?,
            "--clients" => {
                cfg.clients = iter.next().ok_or("--clients needs an integer")?.parse()?;
            }
            "--queries" => {
                cfg.queries_per_client =
                    iter.next().ok_or("--queries needs an integer")?.parse()?;
            }
            "--help" | "-h" => {
                eprintln!("usage: throughput [--out PATH] [--seed N] [--clients K] [--queries M]");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    eprintln!(
        "throughput sweep: workers {:?} x batch {:?}, {} clients x {} queries (seed {})",
        cfg.workers, cfg.batches, cfg.clients, cfg.queries_per_client, cfg.seed
    );
    let report = run(&cfg);
    println!(
        "baseline (channel, per-query): {:.0} qps, {:.1} B/query",
        report.baseline.qps, report.baseline.bytes_per_query
    );
    for row in &report.rows {
        println!(
            "workers={} batch={:>3}: {:>8.0} qps ({:.2}x), {:.1} B/query",
            row.workers,
            row.batch,
            row.qps,
            row.qps / report.baseline.qps.max(1e-9),
            row.bytes_per_query
        );
    }
    std::fs::write(&out_path, report.to_json())?;
    eprintln!("wrote {out_path}");
    Ok(())
}
