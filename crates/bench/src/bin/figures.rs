//! Regenerates every figure of the paper's evaluation (and the ablations).
//!
//! ```text
//! figures [--quick] [--seed N] <fig6a|fig6b|fig7a|fig7b|abl-k0|abl-split|abl-tau|abl-codec|abl-radius|all>
//! ```
//!
//! `--quick` runs the CI-sized workload (~10 K tuples, 1000 queries);
//! without it the paper-scale workload (~173 K tuples, 5000 queries) is
//! used. Results print as aligned text tables; EXPERIMENTS.md records a
//! reference run next to the paper's numbers.

#![forbid(unsafe_code)]
// Panic-prone sites here are legacy debt tracked by the xtask panic
// ratchet (crates/xtask/panic-baseline.toml); prefer typed errors in new
// code.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_bench::workload::{build, Scale, Workload};
use enviro_bench::{ablations, fig6a, fig6b, fig7a, fig7b, table};
use enviro_meter::QueryMethod;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut seed = 0u64;
    let mut targets = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage("no experiment named");
    }
    let expanded: Vec<String> = if targets.iter().any(|t| t == "all") {
        [
            "fig6a",
            "fig6b",
            "fig7a",
            "fig7b",
            "abl-k0",
            "abl-split",
            "abl-tau",
            "abl-codec",
            "abl-radius",
            "abl-spread",
            "abl-interp",
            "abl-warm",
            "abl-build",
            "abl-interval",
            "abl-loss",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        targets
    };

    // Workload is shared across fig6a/fig6b/ablations; build lazily.
    let needs_workload = expanded.iter().any(|t| {
        !matches!(
            t.as_str(),
            "fig7a" | "fig7b" | "abl-codec" | "abl-interval" | "abl-loss"
        )
    });
    let workload: Option<Workload> = if needs_workload {
        eprintln!(
            "building {} workload (seed {seed})...",
            if scale == Scale::Paper {
                "paper-scale"
            } else {
                "quick"
            }
        );
        Some(build(scale, seed))
    } else {
        None
    };
    let w = || workload.as_ref().expect("workload built above");

    for target in &expanded {
        match target.as_str() {
            "fig6a" => run_fig6a(w()),
            "fig6b" => run_fig6b(w()),
            "fig7a" => run_fig7a(),
            "fig7b" => run_fig7b(seed),
            "abl-k0" => run_abl_k0(w()),
            "abl-split" => run_abl_split(w()),
            "abl-tau" => run_abl_tau(w()),
            "abl-codec" => run_abl_codec(seed),
            "abl-radius" => run_abl_radius(w()),
            "abl-spread" => run_abl_spread(w()),
            "abl-interp" => run_abl_interp(w()),
            "abl-warm" => run_abl_warm(w()),
            "abl-build" => run_abl_build(w()),
            "abl-interval" => run_abl_interval(seed),
            "abl-loss" => run_abl_loss(seed),
            other => usage(&format!("unknown experiment {other:?}")),
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: figures [--quick] [--seed N] \
         <fig6a|fig6b|fig7a|fig7b|abl-k0|abl-split|abl-tau|abl-codec|abl-radius|abl-spread|abl-interp|abl-warm|abl-build|abl-interval|abl-loss|all>"
    );
    std::process::exit(2);
}

fn run_fig6a(w: &Workload) {
    println!("\n== Figure 6(a): query time (seconds) vs window size H ==");
    println!(
        "({} queries, r = 1 km, tau = 2 %; per-window structures prebuilt)",
        w.queries.len()
    );
    let rows = fig6a::run(w, &fig6a::PAPER_H_VALUES);
    let mut out = Vec::new();
    for &h in &fig6a::PAPER_H_VALUES {
        let mut cells = vec![h.to_string()];
        for m in fig6a::METHODS {
            let r = rows
                .iter()
                .find(|r| r.h == h && r.method == m)
                .expect("row exists");
            cells.push(table::fmt_f64(r.elapsed_secs));
        }
        out.push(cells);
    }
    println!(
        "{}",
        table::render(&["H", "Ad-KMN", "VP-tree", "R-tree", "naive"], &out)
    );
    for (h, other, paper) in [
        (40usize, QueryMethod::VpTree, "7.1x"),
        (240, QueryMethod::RTree, "39.4x"),
    ] {
        if let Some(s) = fig6a::speedup(&rows, h, other) {
            println!(
                "Ad-KMN vs {other} at H={h}: {:.1}x faster (paper: {paper})",
                s
            );
        }
    }
}

fn run_fig6b(w: &Workload) {
    println!("\n== Figure 6(b): NRMSE (%) vs window size H ==");
    let rows = fig6b::run(w, &fig6a::PAPER_H_VALUES);
    let mut out = Vec::new();
    for &h in &fig6a::PAPER_H_VALUES {
        let of = |m: QueryMethod| {
            rows.iter()
                .find(|r| r.h == h && r.method == m)
                .expect("row exists")
        };
        let cover = of(QueryMethod::ModelCover);
        let naive = of(QueryMethod::Naive);
        out.push(vec![
            h.to_string(),
            table::fmt_f64(cover.common_nrmse_percent),
            table::fmt_f64(naive.common_nrmse_percent),
            table::fmt_f64(cover.report.nrmse_percent),
            table::fmt_f64(naive.report.nrmse_percent),
            format!("{:.2}", naive.report.coverage()),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "H",
                "Ad-KMN NRMSE*",
                "naive NRMSE*",
                "Ad-KMN all",
                "naive answered",
                "naive cov",
            ],
            &out
        )
    );
    println!(
        "(* = common support: queries both methods answer; the cover also \
answers the rest.\n paper: Ad-KMN consistently below naive)"
    );
}

fn run_fig7a() {
    println!("\n== Figure 7(a): memory (KiB) of the queryable representation, H = 5000 ==");
    let rows = fig7a::run(10);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.name().to_string(),
                format!("{:.1}", r.mean_bytes / 1024.0),
            ]
        })
        .collect();
    println!("{}", table::render(&["method", "KiB"], &out));
    for (m, paper) in [
        (QueryMethod::Naive, "7x"),
        (QueryMethod::RTree, "70x"),
        (QueryMethod::VpTree, "407x"),
    ] {
        if let Some(f) = fig7a::factor_vs_cover(&rows, m) {
            println!(
                "{} uses {f:.1}x the model-cover memory (paper: {paper})",
                m.name()
            );
        }
    }
    println!("(averaged over 10 independent runs, as in the paper)");
}

fn run_fig7b(seed: u64) {
    println!("\n== Figure 7(b): bandwidth & time, 100-tuple continuous query over GPRS ==");
    let c = fig7b::run(seed);
    print_fig7b(&c);
}

fn print_fig7b(c: &fig7b::Comparison) {
    let out = vec![
        vec![
            "baseline".into(),
            format!("{:.2}", c.baseline.usage.sent_bytes as f64 / 1024.0),
            format!("{:.2}", c.baseline.usage.received_bytes as f64 / 1024.0),
            table::fmt_f64(c.baseline.elapsed_secs),
            c.baseline.server_exchanges.to_string(),
        ],
        vec![
            "model-cache".into(),
            format!("{:.2}", c.model_cache.usage.sent_bytes as f64 / 1024.0),
            format!("{:.2}", c.model_cache.usage.received_bytes as f64 / 1024.0),
            table::fmt_f64(c.model_cache.elapsed_secs),
            c.model_cache.server_exchanges.to_string(),
        ],
    ];
    println!(
        "{}",
        table::render(
            &[
                "technique",
                "sent (KiB)",
                "recv (KiB)",
                "time (s)",
                "round-trips"
            ],
            &out
        )
    );
    println!(
        "factors: sent {:.0}x (paper 113x), received {:.0}x (paper 31x), time {:.0}x (paper ~100x)",
        c.sent_factor(),
        c.received_factor(),
        c.time_factor()
    );
}

fn run_abl_k0(w: &Workload) {
    println!("\n== abl-k0: initial k vs Ad-KMN outcome (one H = 240 window) ==");
    let rows = ablations::k0_sweep(w, 240, &[1, 2, 4, 8]);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.k0.to_string(),
                r.models.to_string(),
                r.rounds.to_string(),
                table::fmt_f64(r.worst_error),
                table::fmt_f64(r.build_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["k0", "models", "rounds", "worst err %", "build (s)"],
            &out
        )
    );
}

fn run_abl_split(w: &Workload) {
    println!("\n== abl-split: split-seed strategy (one H = 240 window) ==");
    let rows = ablations::split_sweep(w, 240);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.strategy),
                r.models.to_string(),
                r.rounds.to_string(),
                table::fmt_f64(r.worst_error),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["strategy", "models", "rounds", "worst err %"], &out)
    );
}

fn run_abl_tau(w: &Workload) {
    println!("\n== abl-tau: threshold tau vs model count & accuracy ==");
    let rows = ablations::tau_sweep(w, 240, &[0.5, 1.0, 2.0, 4.0, 8.0]);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                table::fmt_f64(r.tau),
                table::fmt_f64(r.mean_models),
                table::fmt_f64(r.report.nrmse_percent),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["tau %", "mean models/window", "NRMSE %"], &out)
    );
}

fn run_abl_codec(seed: u64) {
    println!("\n== abl-codec: binary vs text wire format on Figure 7(b) ==");
    for row in ablations::codec_sweep(seed) {
        println!("\n-- codec: {} --", row.codec);
        print_fig7b(&row.comparison);
    }
}

fn run_abl_radius(w: &Workload) {
    println!("\n== abl-radius: naive-method radius sweep (H = 240) ==");
    let rows = ablations::radius_sweep(w, 240, &[250.0, 500.0, 1_000.0, 2_000.0, 4_000.0]);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.radius),
                format!("{:.2}", r.report.coverage()),
                table::fmt_f64(r.report.nrmse_percent),
                table::fmt_f64(r.elapsed_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["r (m)", "coverage", "NRMSE %", "time (s)"], &out)
    );
}

fn run_abl_spread(w: &Workload) {
    println!("\n== abl-spread: accuracy vs lateral query distance from the corridors ==");
    let rows = ablations::spread_sweep(w, 240, &[0.0, 100.0, 200.0, 400.0, 800.0]);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.spread),
                table::fmt_f64(r.cover.nrmse_percent),
                table::fmt_f64(r.naive.nrmse_percent),
                format!("{:.2}", r.naive.coverage()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["spread (m)", "Ad-KMN NRMSE %", "naive NRMSE %", "naive cov"],
            &out
        )
    );
}

fn run_abl_interp(w: &Workload) {
    println!("\n== abl-interp: interpolator comparison (NRMSE %, H = 240) ==");
    let rows = ablations::interp_sweep(w, 240, &[0.0, 200.0, 400.0]);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.spread),
                table::fmt_f64(r.cover.nrmse_percent),
                table::fmt_f64(r.idw.nrmse_percent),
                table::fmt_f64(r.naive.nrmse_percent),
                format!("{:.2}", r.naive.coverage()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["spread (m)", "Ad-KMN", "IDW k=8", "naive avg", "naive cov"],
            &out
        )
    );
    println!("(IDW and Ad-KMN answer every query; naive only within r = 1 km)");
}

fn run_abl_warm(w: &Workload) {
    println!(
        "\n== abl-warm: cold vs warm-started Ad-KMN across all windows (tau = 1 %, H = 240) =="
    );
    let rows = ablations::warm_sweep(w, 240);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.total_rounds.to_string(),
                table::fmt_f64(r.mean_models),
                table::fmt_f64(r.mean_worst_error),
                table::fmt_f64(r.build_secs),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "mode",
                "total rounds",
                "mean models",
                "mean worst err %",
                "build (s)"
            ],
            &out
        )
    );
}

fn run_abl_build(w: &Workload) {
    println!("\n== abl-build: cost to materialize every window structure (H = 240) ==");
    let rows = ablations::build_sweep(w, 240);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.name().to_string(),
                table::fmt_f64(r.prepare_secs),
                r.windows.to_string(),
                table::fmt_f64(r.prepare_secs / r.windows.max(1) as f64 * 1e3),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["method", "prepare (s)", "windows", "per window (ms)"],
            &out
        )
    );
    println!("(naive needs no preparation; Fig. 6a measures queries after this cost is paid)");
}

fn run_abl_interval(seed: u64) {
    println!(
        "\n== abl-interval: position-update interval vs session cost (100-minute journey, GPRS) =="
    );
    let rows = ablations::interval_sweep(seed, &[30, 60, 120, 300]);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let c = &r.comparison;
            vec![
                r.interval_secs.to_string(),
                c.baseline.values.len().to_string(),
                format!("{:.2}", c.baseline.usage.sent_bytes as f64 / 1024.0),
                format!("{:.2}", c.model_cache.usage.sent_bytes as f64 / 1024.0),
                format!("{:.0}", c.time_factor()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "interval (s)",
                "updates",
                "baseline sent (KiB)",
                "cache sent (KiB)",
                "time factor"
            ],
            &out
        )
    );
    println!("(the app's settings screen exposes this interval; caching makes it free)");
}

fn run_abl_loss(seed: u64) {
    println!("\n== abl-loss: Figure 7(b) under per-attempt packet loss (GPRS) ==");
    let rows = ablations::loss_sweep(seed, &[0.0, 0.1, 0.3]);
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let c = &r.comparison;
            vec![
                format!("{:.0}%", r.loss * 100.0),
                table::fmt_f64(c.baseline.elapsed_secs),
                table::fmt_f64(c.model_cache.elapsed_secs),
                format!("{:.0}", c.time_factor()),
                format!("{:.0}", c.sent_factor()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "loss",
                "baseline time (s)",
                "cache time (s)",
                "time factor",
                "sent factor"
            ],
            &out
        )
    );
    println!("(the baseline rolls the retransmission dice 100x per session; the cache, once)");
}
