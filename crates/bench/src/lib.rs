//! The EnviroMeter experiment harness.
//!
//! One module per panel of the paper's evaluation (§4) plus the ablations
//! from DESIGN.md. Every experiment is a plain function returning row
//! structs, so the `figures` binary, the criterion benches and the
//! integration tests all share one implementation.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig6a`] | Figure 6(a): query time vs window size `H`, four methods |
//! | [`fig6b`] | Figure 6(b): NRMSE vs `H`, Ad-KMN vs naïve |
//! | [`fig7a`] | Figure 7(a): memory at `H = 5000`, four representations |
//! | [`fig7b`] | Figure 7(b): bandwidth/time, baseline vs model-cache |
//! | [`ablations`] | abl-k0 / abl-split / abl-tau / abl-codec / abl-radius |
//! | [`throughput`] | concurrent serving: qps & wire bytes, workers × batch |
//! | [`faults`] | resilience cost: goodput & retries vs injected fault rate |
//! | [`ingest`] | durable write path: tuples/s vs batch, query p50/p99 under ingest |

#![forbid(unsafe_code)]
// Panic-prone sites in this crate are legacy debt tracked by the xtask
// panic ratchet (crates/xtask/panic-baseline.toml): counts may only go
// down. The clippy warn-level lints stay crate-allowed until the burn-down
// reaches zero; prefer typed errors in new code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod faults;
pub mod fig6a;
pub mod fig6b;
pub mod fig7a;
pub mod fig7b;
pub mod ingest;
pub mod table;
pub mod throughput;
pub mod workload;
