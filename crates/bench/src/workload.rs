//! Shared workload construction for all experiments.

use enviro_data::{Dataset, LausanneSim, QueryTuple, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The size of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's regime: ~173 K raw tuples (≈ the 176 K of
    /// `lausanne-data`), 5000 point queries.
    Paper,
    /// A CI-friendly regime: ~10 K tuples, 1000 queries. Same shapes,
    /// seconds instead of minutes.
    Quick,
}

impl Scale {
    /// Simulation config for this scale.
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        match self {
            Scale::Paper => SimConfig {
                duration_secs: 30 * 86_400,
                sampling_interval_secs: 30,
                seed,
                ..SimConfig::default()
            },
            Scale::Quick => SimConfig {
                duration_secs: 3 * 86_400 + 43_200, // 3.5 days
                sampling_interval_secs: 60,
                seed,
                ..SimConfig::default()
            },
        }
    }

    /// Number of point queries the evaluation issues.
    pub fn query_count(&self) -> usize {
        match self {
            Scale::Paper => 5_000,
            Scale::Quick => 1_000,
        }
    }
}

/// The standard evaluation environment: the simulator, its dataset, and the
/// point-query workloads.
pub struct Workload {
    /// The simulator (keeps the ground-truth field for NRMSE).
    pub sim: LausanneSim,
    /// The community-sensed dataset.
    pub dataset: Dataset,
    /// The point queries for the *efficiency* experiments: positions within
    /// a few hundred meters of the corridors, uniform times.
    pub queries: Vec<QueryTuple>,
    /// The point queries for the *accuracy* experiments: the (time,
    /// position) of a random sample of raw tuples. The paper's NRMSE is
    /// necessarily computed where reference sensor values exist — at
    /// sensed positions; accuracy away from the corridors is a separate
    /// question (see the `abl-spread` ablation).
    pub accuracy_queries: Vec<QueryTuple>,
}

/// The paper's query radius `r` = 1 km.
pub const RADIUS_M: f64 = 1_000.0;

/// Lateral spread of *efficiency* query positions around the bus corridors
/// (meters). Queries land mostly inside the radius-`r` band where the
/// raw-data methods can answer.
pub const QUERY_SPREAD_M: f64 = 400.0;

/// Builds the standard workload for a scale and seed.
pub fn build(scale: Scale, seed: u64) -> Workload {
    let sim = LausanneSim::lausanne(scale.sim_config(seed));
    let dataset = sim.generate();
    let queries = sim.query_workload(scale.query_count(), QUERY_SPREAD_M, seed ^ 0x51);
    // Accuracy queries sit at sensed (time, position) pairs: every method
    // has reference data there, whatever the window size.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAC);
    let accuracy_queries = (0..scale.query_count())
        .map(|_| {
            let t = &dataset.tuples()[rng.gen_range(0..dataset.len())];
            QueryTuple::new(t.time, t.pos)
        })
        .collect();
    Workload {
        sim,
        dataset,
        queries,
        accuracy_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_sizes() {
        let w = build(Scale::Quick, 1);
        // 3.5 days × 1440 samples/day × 2 buses = 10 080 tuples.
        assert_eq!(w.dataset.len(), 10_080);
        assert_eq!(w.queries.len(), 1_000);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = build(Scale::Quick, 7);
        let b = build(Scale::Quick, 7);
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn paper_scale_config_matches_paper() {
        let cfg = Scale::Paper.sim_config(0);
        let tuples = (cfg.duration_secs / cfg.sampling_interval_secs) * 2;
        assert!((150_000..200_000).contains(&tuples), "{tuples}");
        assert_eq!(Scale::Paper.query_count(), 5_000);
    }
}
