//! Figure 6(a): elapsed time of the point-query workload vs window size `H`.
//!
//! "We use a varying window size H from 40 to 240 raw tuples (4 hour
//! window), a radius r of 1 km, and error threshold τ_n = 2 %. … We use
//! 5000 point queries for comparing the efficiency." Per-window structures
//! (covers, indexes) are prepared before the clock starts, so the figure
//! measures pure query-processing cost — the regime in which the paper
//! reports Ad-KMN 7.1× faster than the VP-tree at H = 40 and 39.4× faster
//! than the R-tree at H = 240.

use crate::workload::{Workload, RADIUS_M};
use enviro_data::WindowSpec;
use enviro_meter::{AdKmnConfig, QueryEngine, QueryMethod};
use std::time::Instant;

/// The H values of the paper's sweep.
pub const PAPER_H_VALUES: [usize; 6] = [40, 80, 120, 160, 200, 240];

/// One measured point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Window size in raw tuples.
    pub h: usize,
    /// Query-processing method.
    pub method: QueryMethod,
    /// Wall-clock seconds for the whole query workload.
    pub elapsed_secs: f64,
    /// Queries answered (with a value) out of the workload.
    pub answered: usize,
}

/// The methods Figure 6(a) compares.
pub const METHODS: [QueryMethod; 4] = [
    QueryMethod::ModelCover,
    QueryMethod::VpTree,
    QueryMethod::RTree,
    QueryMethod::Naive,
];

/// Builds the engine for one `H` (shared by 6a and 6b).
pub fn engine_for_h(workload: &Workload, h: usize) -> QueryEngine {
    QueryEngine::new(
        workload.dataset.clone(),
        WindowSpec::ByCount(h),
        AdKmnConfig::default(), // τ_n = 2 %, the paper's setting
        RADIUS_M,
    )
}

/// Runs the sweep and returns one row per (H, method).
pub fn run(workload: &Workload, h_values: &[usize]) -> Vec<Row> {
    let mut rows = Vec::with_capacity(h_values.len() * METHODS.len());
    for &h in h_values {
        let engine = engine_for_h(workload, h);
        for method in METHODS {
            engine.prepare(method);
            let start = Instant::now();
            let mut answered = 0usize;
            for q in &workload.queries {
                if engine.query(q, method).is_some() {
                    answered += 1;
                }
            }
            rows.push(Row {
                h,
                method,
                elapsed_secs: start.elapsed().as_secs_f64(),
                answered,
            });
        }
    }
    rows
}

/// The headline speedup: model-cover time vs `other` at window size `h`.
pub fn speedup(rows: &[Row], h: usize, other: QueryMethod) -> Option<f64> {
    let time_of = |m: QueryMethod| {
        rows.iter()
            .find(|r| r.h == h && r.method == m)
            .map(|r| r.elapsed_secs)
    };
    Some(time_of(other)? / time_of(QueryMethod::ModelCover)?.max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build, Scale};

    #[test]
    fn sweep_produces_all_rows_and_cover_wins() {
        let w = build(Scale::Quick, 3);
        // Tiny sweep to keep the test fast.
        let rows = run(&w, &[40, 240]);
        assert_eq!(rows.len(), 2 * METHODS.len());
        for &h in &[40usize, 240] {
            let cover = rows
                .iter()
                .find(|r| r.h == h && r.method == QueryMethod::ModelCover)
                .unwrap();
            let naive = rows
                .iter()
                .find(|r| r.h == h && r.method == QueryMethod::Naive)
                .unwrap();
            // Cover answers every query; naive answers most (queries are
            // near corridors).
            assert_eq!(cover.answered, w.queries.len());
            assert!(naive.answered > w.queries.len() / 2);
            // The paper's qualitative claim — model cover beats the raw
            // scan — is asserted at H = 240, where the scan cost clearly
            // dominates even in unoptimized test builds. (At H = 40 the
            // gap exists only in release builds; the `figures` binary runs
            // the full sweep under `--release`.)
            if h == 240 {
                assert!(
                    cover.elapsed_secs < naive.elapsed_secs,
                    "H={h}: cover {} vs naive {}",
                    cover.elapsed_secs,
                    naive.elapsed_secs
                );
            }
        }
    }

    #[test]
    fn speedup_helper() {
        let rows = vec![
            Row {
                h: 40,
                method: QueryMethod::ModelCover,
                elapsed_secs: 0.1,
                answered: 10,
            },
            Row {
                h: 40,
                method: QueryMethod::Naive,
                elapsed_secs: 1.0,
                answered: 10,
            },
        ];
        assert!((speedup(&rows, 40, QueryMethod::Naive).unwrap() - 10.0).abs() < 1e-9);
        assert!(speedup(&rows, 80, QueryMethod::Naive).is_none());
    }
}
