//! Plain-text table rendering for the `figures` binary.

/// Renders an aligned text table with a header row and a separator.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["method", "time"],
            &[
                vec!["naive".into(), "12.5".into()],
                vec!["Ad-KMN".into(), "0.3".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("Ad-KMN"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5678), "1234.6");
        assert_eq!(fmt_f64(12.3456), "12.346");
        assert_eq!(fmt_f64(0.00123), "0.00123");
    }
}
