//! Figure 7(b): bandwidth and time of a 100-tuple continuous query —
//! baseline vs model-cache.
//!
//! "We use a continuous query of 100 query tuples. We measured the total
//! number of bytes transmitted and received by the mobile device, and the
//! total time to complete the query." The paper reports model-cache using
//! 113× fewer transmitted bytes, 30× fewer received bytes and ~100× less
//! time than the baseline.

use crate::workload::{Scale, RADIUS_M};
use enviro_data::WindowSpec;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BaselineClient, EnviroServer, LinkProfile, ModelCacheClient, SessionStats, SimulatedLink,
    WireCodec,
};

/// The paper's continuous-query length.
pub const QUERY_TUPLES: usize = 100;

/// The outcome of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The baseline session (one round-trip per tuple).
    pub baseline: SessionStats,
    /// The model-cache session.
    pub model_cache: SessionStats,
}

impl Comparison {
    /// Transmitted-bytes factor (paper: ≈113×).
    pub fn sent_factor(&self) -> f64 {
        self.baseline.usage.sent_bytes as f64 / (self.model_cache.usage.sent_bytes as f64).max(1.0)
    }

    /// Received-bytes factor (paper: ≈30×, "31×" in the figure).
    pub fn received_factor(&self) -> f64 {
        self.baseline.usage.received_bytes as f64
            / (self.model_cache.usage.received_bytes as f64).max(1.0)
    }

    /// Completion-time factor (paper: ≈100×).
    pub fn time_factor(&self) -> f64 {
        self.baseline.elapsed_secs / self.model_cache.elapsed_secs.max(1e-9)
    }
}

/// Runs the experiment with an explicit codec and link profile.
pub fn run_with<C: WireCodec + Copy>(codec: C, profile: LinkProfile, seed: u64) -> Comparison {
    run_with_interval(codec, profile, seed, 60)
}

/// Like [`run_with`], with an explicit position-update interval: the
/// journey lasts a fixed 100 minutes, so a shorter interval means more
/// query tuples over the same route (the `abl-interval` ablation).
pub fn run_with_interval<C: WireCodec + Copy>(
    codec: C,
    profile: LinkProfile,
    seed: u64,
    interval_secs: i64,
) -> Comparison {
    run_full(codec, profile, seed, interval_secs)
}

fn run_full<C: WireCodec + Copy>(
    codec: C,
    profile: LinkProfile,
    seed: u64,
    interval_secs: i64,
) -> Comparison {
    let sim = enviro_data::LausanneSim::lausanne(Scale::Quick.sim_config(seed));
    let dataset = sim.generate();
    // 4-hour model windows — the paper's "4 hour window" granularity; a
    // 100-tuple trajectory at 60 s fits inside one validity period.
    let platform = EnviroMeter::new(
        dataset,
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    let server = EnviroServer::new(platform, codec, QueryMethod::ModelCover);
    // The paper's session is served by a single model download, so the
    // fixed 100-minute journey is placed inside one 4-hour validity window
    // (starting one minute past a window boundary).
    let journey_secs: i64 = QUERY_TUPLES as i64 * 60;
    let tuples = (journey_secs / interval_secs.max(1)).max(1) as usize;
    let mut trajectory = sim.continuous_trajectory(tuples, interval_secs, seed ^ 0x7B);
    let base = enviro_data::Timestamp::from_secs(4 * 3_600 + 60);
    for (i, q) in trajectory.iter_mut().enumerate() {
        q.time = base + i as i64 * interval_secs;
    }

    // The sessions run in-process against a trusted server, so an
    // undecodable reply is a bug in this harness, not a runtime condition.
    let mut baseline_link = SimulatedLink::with_seed(profile, seed ^ 0xBA5E);
    let baseline = BaselineClient::new(codec)
        .run(&server, &trajectory, &mut baseline_link)
        .unwrap_or_else(|e| panic!("baseline session failed: {e}"));

    let mut cache_link = SimulatedLink::with_seed(profile, seed ^ 0xCAC4E);
    let model_cache = ModelCacheClient::new(codec)
        .run(&server, &trajectory, &mut cache_link)
        .unwrap_or_else(|e| panic!("model-cache session failed: {e}"));

    Comparison {
        baseline,
        model_cache,
    }
}

/// Runs the standard experiment: binary codec over GPRS.
pub fn run(seed: u64) -> Comparison {
    run_with(enviro_net::BinaryCodec, LinkProfile::GPRS, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_cache_dominates_baseline() {
        let c = run(21);
        assert!(
            c.sent_factor() > 20.0,
            "sent factor {} too small",
            c.sent_factor()
        );
        assert!(
            c.received_factor() > 2.0,
            "received factor {} too small",
            c.received_factor()
        );
        assert!(
            c.time_factor() > 20.0,
            "time factor {} too small",
            c.time_factor()
        );
    }

    #[test]
    fn both_sessions_answer_all_tuples() {
        let c = run(22);
        assert_eq!(c.baseline.values.len(), QUERY_TUPLES);
        assert_eq!(c.model_cache.values.len(), QUERY_TUPLES);
        assert!(c.baseline.values.iter().all(Option::is_some));
        assert!(c.model_cache.values.iter().all(Option::is_some));
    }

    #[test]
    fn baseline_round_trips_equal_tuples() {
        let c = run(23);
        assert_eq!(c.baseline.server_exchanges, QUERY_TUPLES);
        assert!(c.model_cache.server_exchanges <= 3);
    }
}
