//! Figure 6(b): NRMSE of Ad-KMN vs the naïve method, per window size `H`.
//!
//! The paper compares only these two — "The R-tree and the VP-tree methods
//! are not considered, since they produce the same result as the naïve
//! method." Our simulator provides exact ground truth (the analytic field),
//! so NRMSE is computed against the true value at each query point rather
//! than a held-out estimate.
//!
//! Queries are placed **on the corridors** (`accuracy_queries`): the
//! paper's NRMSE can only be computed where reference values exist — at
//! sensed positions. Off-corridor accuracy, where no method has data, is
//! explored separately by the `abl-spread` ablation.

use crate::fig6a::engine_for_h;
use crate::workload::Workload;
use enviro_meter::{nrmse_percent, AccuracyReport, QueryMethod};

/// One measured point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Window size in raw tuples.
    pub h: usize,
    /// Query-processing method.
    pub method: QueryMethod,
    /// Accuracy over the queries this method answered.
    pub report: AccuracyReport,
    /// NRMSE restricted to the queries *every* compared method answered —
    /// the apples-to-apples column: the model cover answers everywhere,
    /// including queries the raw methods give up on, and must not be
    /// penalized for attempting them.
    pub common_nrmse_percent: f64,
}

/// The methods Figure 6(b) compares.
pub const METHODS: [QueryMethod; 2] = [QueryMethod::ModelCover, QueryMethod::Naive];

/// Runs the accuracy sweep.
pub fn run(workload: &Workload, h_values: &[usize]) -> Vec<Row> {
    let mut rows = Vec::with_capacity(h_values.len() * METHODS.len());
    for &h in h_values {
        let engine = engine_for_h(workload, h);
        // Predictions per method, aligned with the query list.
        let preds: Vec<Vec<Option<f64>>> = METHODS
            .iter()
            .map(|&m| {
                workload
                    .accuracy_queries
                    .iter()
                    .map(|q| engine.query(q, m))
                    .collect()
            })
            .collect();
        let truths: Vec<f64> = workload
            .accuracy_queries
            .iter()
            .map(|q| workload.sim.true_value(q.time, &q.pos))
            .collect();
        // Queries answered by every method.
        let common: Vec<usize> = (0..truths.len())
            .filter(|&i| preds.iter().all(|p| p[i].is_some()))
            .collect();
        for (mi, &method) in METHODS.iter().enumerate() {
            let report = AccuracyReport::from_predictions(
                preds[mi].iter().copied().zip(truths.iter().copied()),
            );
            let common_pairs: Vec<(f64, f64)> = common
                .iter()
                .filter_map(|&i| preds[mi][i].map(|p| (p, truths[i])))
                .collect();
            rows.push(Row {
                h,
                method,
                report,
                common_nrmse_percent: nrmse_percent(&common_pairs),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{build, Scale};

    #[test]
    fn cover_is_more_accurate_than_naive() {
        let w = build(Scale::Quick, 11);
        let rows = run(&w, &[120]);
        let of = |m: QueryMethod| rows.iter().find(|r| r.method == m).unwrap();
        let cover = of(QueryMethod::ModelCover);
        let naive = of(QueryMethod::Naive);
        // The paper's claim: Ad-KMN "consistently generates a smaller
        // NRMSE than the naïve method" (on the queries both can answer).
        assert!(
            cover.common_nrmse_percent < naive.common_nrmse_percent,
            "cover {} vs naive {}",
            cover.common_nrmse_percent,
            naive.common_nrmse_percent
        );
        // And both are sane: below 50 % of the value range.
        assert!(cover.report.nrmse_percent < 50.0);
        assert!(naive.report.nrmse_percent < 50.0);
    }

    #[test]
    fn all_h_values_reported() {
        let w = build(Scale::Quick, 12);
        let rows = run(&w, &[40, 80]);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.h == 40));
        assert!(rows.iter().any(|r| r.h == 80));
    }
}
