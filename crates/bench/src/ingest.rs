//! The durable write path: ingest throughput over the batch-size sweep,
//! and what concurrent ingestion costs the read path.
//!
//! Two questions the WAL tentpole raises, answered by measurement:
//!
//! 1. **Throughput vs batch size** — each `IngestBatch` frame pays one
//!    round trip, one WAL append (with an fsync-equivalent buffer flush)
//!    and one ack, so batching should amortize the per-frame cost the
//!    same way `QueryBatch` frames amortize the read path's. The sweep
//!    streams the same tuple set at several batch sizes and reports
//!    acked tuples/second.
//! 2. **Query latency under ingestion** — the maintenance worker rebuilds
//!    Ad-KMN covers off the hot path, so queries should see (almost) the
//!    same p50/p99 whether or not a writer is streaming. Two cells, same
//!    query load: one quiet, one with a concurrent resilient writer plus
//!    the background maintenance thread, measured per-frame.
//!
//! Latency cells use wall-clock timing; run on an idle host for clean
//! numbers. The report JSON records both cells so the overhead is
//! auditable rather than asserted.

use crate::workload::{Scale, RADIUS_M};
use enviro_data::{Pollutant, QueryTuple, RawTuple, Timestamp, WindowSpec};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BinaryCodec, ConcurrentTransport, EnviroClient, EnviroServer, IngestConfig, IngestState,
    ModelMaintenance,
};
use enviro_schedule::sync::Arc;
use enviro_storage::WalConfig;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// WAL window width used by every cell (one simulated hour).
const WINDOW_SECS: i64 = 3_600;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct IngestBenchConfig {
    /// Ingest batch sizes (tuples per `IngestBatch` frame) to sweep.
    pub batches: Vec<usize>,
    /// Tuples streamed per throughput cell.
    pub tuples: usize,
    /// Queries issued per latency cell.
    pub queries: usize,
    /// Tuples per `QueryBatch` frame in the latency cells.
    pub query_batch: usize,
    /// Worker threads backing the concurrent transport.
    pub workers: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for IngestBenchConfig {
    fn default() -> Self {
        Self {
            batches: vec![1, 16, 64, 256],
            tuples: 20_000,
            queries: 4_000,
            query_batch: 32,
            workers: 2,
            seed: 0x001A_6E57,
        }
    }
}

/// One throughput cell: all `tuples` streamed at one batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestThroughputRow {
    /// Tuples per `IngestBatch` frame.
    pub batch: usize,
    /// Tuples acknowledged durable.
    pub acked: u64,
    /// Tuples the retry budget gave up on (0 on the clean wire).
    pub failed: u64,
    /// Tuples recovered from the WAL by the server at the end of the run.
    pub durable: u64,
    /// Wall-clock seconds for the stream.
    pub elapsed_secs: f64,
    /// Acked tuples per second.
    pub tuples_per_sec: f64,
}

/// One latency cell: the full query load, quiet or under ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLatencyRow {
    /// Whether a concurrent writer + maintenance thread ran during the
    /// measurement.
    pub concurrent_ingest: bool,
    /// Queries answered.
    pub queries: usize,
    /// Median per-frame round-trip, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-frame round-trip, microseconds.
    pub p99_us: f64,
    /// Mean per-frame round-trip, microseconds.
    pub mean_us: f64,
    /// Queries per second over the whole cell.
    pub qps: f64,
    /// Tuples the concurrent writer landed while queries ran (0 when
    /// quiet).
    pub ingested_during: u64,
    /// Cover generations published while queries ran.
    pub generations_published: u64,
}

/// The full report.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReportJson {
    /// Throughput sweep, in `batches` order.
    pub throughput: Vec<IngestThroughputRow>,
    /// Latency cells: `[quiet, under_ingest]`.
    pub latency: Vec<QueryLatencyRow>,
    /// Tuples per throughput cell.
    pub tuples: usize,
    /// Sweep seed.
    pub seed: u64,
}

impl IngestReportJson {
    /// p99 latency under ingestion relative to quiet (1.0 = free writes).
    pub fn p99_ratio(&self) -> Option<f64> {
        let quiet = self.latency.iter().find(|r| !r.concurrent_ingest)?;
        let busy = self.latency.iter().find(|r| r.concurrent_ingest)?;
        Some(busy.p99_us / quiet.p99_us.max(1e-9))
    }

    /// Serializes the report as pretty-printed JSON (no dependencies;
    /// every value is a number, so no string escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"ingest\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"tuples_per_cell\": {},", self.tuples);
        let _ = writeln!(out, "  \"throughput\": [");
        for (i, row) in self.throughput.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"batch\": {},", row.batch);
            let _ = writeln!(out, "      \"acked\": {},", row.acked);
            let _ = writeln!(out, "      \"failed\": {},", row.failed);
            let _ = writeln!(out, "      \"durable\": {},", row.durable);
            let _ = writeln!(out, "      \"elapsed_secs\": {:.6},", row.elapsed_secs);
            let _ = writeln!(out, "      \"tuples_per_sec\": {:.1}", row.tuples_per_sec);
            let _ = writeln!(
                out,
                "    }}{}",
                if i + 1 < self.throughput.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"latency\": [");
        for (i, row) in self.latency.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(
                out,
                "      \"concurrent_ingest\": {},",
                row.concurrent_ingest
            );
            let _ = writeln!(out, "      \"queries\": {},", row.queries);
            let _ = writeln!(out, "      \"p50_us\": {:.1},", row.p50_us);
            let _ = writeln!(out, "      \"p99_us\": {:.1},", row.p99_us);
            let _ = writeln!(out, "      \"mean_us\": {:.1},", row.mean_us);
            let _ = writeln!(out, "      \"qps\": {:.1},", row.qps);
            let _ = writeln!(out, "      \"ingested_during\": {},", row.ingested_during);
            let _ = writeln!(
                out,
                "      \"generations_published\": {}",
                row.generations_published
            );
            let _ = writeln!(
                out,
                "    }}{}",
                if i + 1 < self.latency.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"p99_under_ingest_ratio\": {:.3}",
            self.p99_ratio().unwrap_or(0.0)
        );
        let _ = writeln!(out, "}}");
        out
    }
}

/// A deterministic synthetic tuple stream: distinct times two simulated
/// seconds apart (spanning `n / 1800` hour windows), positions and values
/// varied by modular arithmetic.
pub fn synthetic_tuples(n: usize, seed: u64) -> Vec<RawTuple> {
    (0..n)
        .map(|i| {
            let j = i as u64 ^ (seed & 0xFF);
            RawTuple::new(
                Timestamp::from_secs(i as i64 * 2),
                Point::new(
                    (j % 89) as f64 * 45.0 - 2_000.0,
                    (j % 53) as f64 * 60.0 - 1_500.0,
                ),
                400.0 + (j % 41) as f64 * 2.5,
            )
        })
        .collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("enviro-bench-ingest-{tag}-{}", std::process::id()))
}

fn open_state(dir: &PathBuf) -> Option<Arc<IngestState>> {
    let _ = std::fs::remove_dir_all(dir);
    match IngestState::open(
        dir,
        WalConfig {
            window_secs: WINDOW_SECS,
            ..WalConfig::default()
        },
        IngestConfig::default(),
    ) {
        Ok(state) => Some(Arc::new(state)),
        Err(e) => {
            eprintln!("ingest: WAL at {} failed to open: {e}", dir.display());
            None
        }
    }
}

/// An ingest-only server: empty static platform, every frame goes to the
/// WAL.
fn ingest_server(state: &Arc<IngestState>) -> EnviroServer<BinaryCodec> {
    EnviroServer::new(
        EnviroMeter::new(
            enviro_data::Dataset::new(Pollutant::Co2),
            WindowSpec::ByDuration(WINDOW_SECS),
            AdKmnConfig::default(),
            RADIUS_M,
        ),
        BinaryCodec,
        QueryMethod::ModelCover,
    )
    .with_ingest(Arc::clone(state))
}

/// The read-path server for the latency cells: quick-scale platform with
/// prebuilt covers, plus an attached ingest state for the busy cell.
fn query_server(seed: u64, state: &Arc<IngestState>) -> EnviroServer<BinaryCodec> {
    let sim = enviro_data::LausanneSim::lausanne(Scale::Quick.sim_config(seed));
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    platform
        .engine()
        .prepare_parallel_auto(QueryMethod::ModelCover);
    EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover).with_ingest(Arc::clone(state))
}

/// Measures one throughput cell: `cfg.tuples` tuples at `batch` per frame.
fn run_throughput_cell(cfg: &IngestBenchConfig, batch: usize) -> IngestThroughputRow {
    // A zeroed row for a cell that could not even start (WAL open or
    // thread-spawn failure); impossible to measure, visible in the output.
    let failed_row = || {
        eprintln!("ingest: cell batch={batch} could not start");
        IngestThroughputRow {
            batch,
            acked: 0,
            failed: 0,
            durable: 0,
            elapsed_secs: f64::INFINITY,
            tuples_per_sec: 0.0,
        }
    };
    let dir = bench_dir(&format!("tput-{batch}"));
    let Some(state) = open_state(&dir) else {
        return failed_row();
    };
    let transport =
        match ConcurrentTransport::spawn_shared(Arc::new(ingest_server(&state)), cfg.workers) {
            Ok(t) => t,
            Err(_) => return failed_row(),
        };
    let tuples = synthetic_tuples(cfg.tuples, cfg.seed);
    let mut wire = transport.session();
    let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(batch);

    let start = Instant::now();
    let report = client.ingest_resilient(&mut wire, 0xBE, &tuples);
    let elapsed = start.elapsed().as_secs_f64();

    let durable = state.stats().durable_tuples;
    let _ = std::fs::remove_dir_all(&dir);
    IngestThroughputRow {
        batch,
        acked: report.acked_tuples,
        failed: report.failed_tuples,
        durable,
        elapsed_secs: elapsed,
        tuples_per_sec: report.acked_tuples as f64 / elapsed.max(1e-9),
    }
}

/// Measures one latency cell. When `with_ingest` is set, a second session
/// streams tuples (and the maintenance thread rebuilds covers) for the
/// whole measurement.
fn run_latency_cell(cfg: &IngestBenchConfig, with_ingest: bool) -> QueryLatencyRow {
    let failed_row = || {
        eprintln!("ingest: latency cell (ingest={with_ingest}) could not start");
        QueryLatencyRow {
            concurrent_ingest: with_ingest,
            queries: 0,
            p50_us: 0.0,
            p99_us: 0.0,
            mean_us: 0.0,
            qps: 0.0,
            ingested_during: 0,
            generations_published: 0,
        }
    };
    let dir = bench_dir(if with_ingest { "lat-busy" } else { "lat-quiet" });
    let Some(state) = open_state(&dir) else {
        return failed_row();
    };
    let gen_before = state.generation();
    let maintenance = with_ingest
        .then(|| ModelMaintenance::spawn(Arc::clone(&state)).ok())
        .flatten();
    let server = Arc::new(query_server(cfg.seed, &state));
    let transport = match ConcurrentTransport::spawn_shared(Arc::clone(&server), cfg.workers) {
        Ok(t) => t,
        Err(_) => return failed_row(),
    };
    let sim = enviro_data::LausanneSim::lausanne(Scale::Quick.sim_config(cfg.seed));
    let traj: Vec<QueryTuple> = sim.continuous_trajectory(cfg.queries, 60, cfg.seed ^ 9);
    let writer_tuples = synthetic_tuples(cfg.tuples, cfg.seed ^ 0x0077_1217);

    let stop = enviro_schedule::sync::atomic::AtomicBool::new(false);
    let (latencies_us, elapsed, ingested) = std::thread::scope(|scope| {
        let writer = with_ingest.then(|| {
            let transport = &transport;
            let stop = &stop;
            let tuples = &writer_tuples;
            scope.spawn(move || {
                let mut wire = transport.session();
                let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(64);
                let mut landed = 0u64;
                // Keep writing until the query side finishes.
                // ordering: Relaxed — a polled stop flag; the writer only
                // needs to observe the store eventually, and the scope join
                // below is what synchronizes its counters back.
                while !stop.load(enviro_schedule::sync::atomic::Ordering::Relaxed) {
                    landed += client
                        .ingest_resilient(&mut wire, 0xADD, tuples)
                        .acked_tuples;
                }
                landed
            })
        });

        let mut wire = transport.session();
        let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(cfg.query_batch);
        let mut latencies = Vec::with_capacity(traj.len() / cfg.query_batch + 1);
        let mut values = Vec::new();
        let start = Instant::now();
        for frame in traj.chunks(cfg.query_batch) {
            let t0 = Instant::now();
            let _ = client.query_batch(&mut wire, frame, &mut values);
            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        let elapsed = start.elapsed().as_secs_f64();
        // ordering: Relaxed — see the writer's polling load above.
        stop.store(true, enviro_schedule::sync::atomic::Ordering::Relaxed);
        let ingested = writer.and_then(|h| h.join().ok()).unwrap_or(0);
        (latencies, elapsed, ingested)
    });
    drop(maintenance);
    let generations = state.generation().saturating_sub(gen_before);
    let _ = std::fs::remove_dir_all(&dir);

    let mut sorted = latencies_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    QueryLatencyRow {
        concurrent_ingest: with_ingest,
        queries: traj.len(),
        p50_us: percentile(&sorted, 50.0),
        p99_us: percentile(&sorted, 99.0),
        mean_us: sorted.iter().sum::<f64>() / (sorted.len() as f64).max(1.0),
        qps: traj.len() as f64 / elapsed.max(1e-9),
        ingested_during: ingested,
        generations_published: generations,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice, in the slice's
/// units.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the full sweep.
pub fn run(cfg: &IngestBenchConfig) -> IngestReportJson {
    let throughput = cfg
        .batches
        .iter()
        .map(|&batch| run_throughput_cell(cfg, batch))
        .collect();
    let latency = vec![run_latency_cell(cfg, false), run_latency_cell(cfg, true)];
    IngestReportJson {
        throughput,
        latency,
        tuples: cfg.tuples,
        seed: cfg.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> IngestBenchConfig {
        IngestBenchConfig {
            batches: vec![1, 64],
            tuples: 800,
            queries: 400,
            query_batch: 16,
            workers: 2,
            seed: 0x001A_6E57,
        }
    }

    #[test]
    fn throughput_cells_land_every_tuple() {
        let report = run(&tiny_config());
        assert_eq!(report.throughput.len(), 2);
        for row in &report.throughput {
            assert_eq!(row.acked, 800, "{row:?}");
            assert_eq!(row.failed, 0, "{row:?}");
            assert_eq!(row.durable, 800, "{row:?}");
            assert!(row.tuples_per_sec > 0.0, "{row:?}");
        }
    }

    #[test]
    fn batching_raises_ingest_throughput() {
        let report = run(&tiny_config());
        let (one, big) = (&report.throughput[0], &report.throughput[1]);
        assert!(
            big.tuples_per_sec > one.tuples_per_sec,
            "batch 64 {} !> batch 1 {}",
            big.tuples_per_sec,
            one.tuples_per_sec
        );
    }

    #[test]
    fn latency_cells_answer_the_full_load() {
        let report = run(&tiny_config());
        assert_eq!(report.latency.len(), 2);
        let quiet = &report.latency[0];
        let busy = &report.latency[1];
        assert!(!quiet.concurrent_ingest && busy.concurrent_ingest);
        assert_eq!(quiet.queries, 400);
        assert_eq!(busy.queries, 400);
        assert!(quiet.p50_us > 0.0 && quiet.p99_us >= quiet.p50_us);
        assert!(busy.ingested_during > 0, "{busy:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = run(&tiny_config()).to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"batch\"").count(), 2);
        assert_eq!(json.matches("\"concurrent_ingest\"").count(), 2);
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
