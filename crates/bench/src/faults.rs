//! Goodput under injected faults: what resilience costs, swept over the
//! fault rate.
//!
//! Each cell drives one resilient [`EnviroClient`] through a seeded
//! [`ChaosWire`] over an in-process loopback, with all time charged to a
//! shared [`VirtualClock`] — so every number in the report is
//! deterministic for a fixed seed, including the simulated elapsed time.
//! The sweep answers: as the fault rate climbs, how fast does goodput
//! (fresh answers per simulated second) fall, how many extra wire
//! exchanges do retries cost, and — the invariant the chaos suite pins —
//! does the client ever return a *wrong* value (it must not, at any rate).

use crate::workload::{Scale, RADIUS_M};
use enviro_data::{LausanneSim, QueryTuple, WindowSpec};
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod, QueryOutcome};
use enviro_net::{
    BinaryCodec, ChaosStats, ChaosWire, Clock, EnviroClient, EnviroServer, FaultPlan, LinkProfile,
    LoopbackWire, ResilienceStats, SimulatedLink, VirtualClock,
};
use std::fmt::Write as _;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Base fault rates to sweep (0.0 = clean-wire control row).
    pub rates: Vec<f64>,
    /// Continuous-query tuples per cell.
    pub tuples: usize,
    /// Tuples per `QueryBatch` frame.
    pub batch: usize,
    /// Seed for the workload, the chaos wire and the client's jitter RNG.
    pub seed: u64,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        Self {
            rates: vec![0.0, 0.02, 0.05, 0.10, 0.20],
            tuples: 2_000,
            batch: 32,
            seed: 0xFA_07,
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsRow {
    /// Base fault rate (drop probability; the other faults scale off it).
    pub rate: f64,
    /// Tuples issued.
    pub tuples: usize,
    /// Tuples answered fresh.
    pub fresh: usize,
    /// Tuples answered from degraded/stale state.
    pub stale: usize,
    /// Tuples with no answer at all (retry budget exhausted).
    pub unavailable: usize,
    /// Fresh answers not bit-identical to the fault-free oracle. The
    /// whole point of the resilience layer is that this stays 0.
    pub wrong: usize,
    /// Wire exchanges attempted (first sends + retries).
    pub exchanges: u64,
    /// Client retry/rejection counters.
    pub client: ResilienceStats,
    /// Faults the wire actually injected.
    pub wire: ChaosStats,
    /// Simulated milliseconds the run consumed on the virtual clock.
    pub virtual_elapsed_ms: u64,
    /// Fresh answers per simulated second.
    pub goodput_qps: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsReport {
    /// One row per swept fault rate, in `rates` order.
    pub rows: Vec<FaultsRow>,
    /// Tuples per cell.
    pub tuples: usize,
    /// Batch size used.
    pub batch: usize,
    /// Sweep seed (reproduces the report bit-for-bit).
    pub seed: u64,
}

impl FaultsReport {
    /// Total wrong answers across the sweep — must be 0.
    pub fn total_wrong(&self) -> usize {
        self.rows.iter().map(|r| r.wrong).sum()
    }

    /// Goodput at `rate` relative to the clean-wire control row.
    pub fn goodput_ratio(&self, rate: f64) -> Option<f64> {
        let clean = self.rows.iter().find(|r| r.rate == 0.0)?;
        let row = self.rows.iter().find(|r| r.rate == rate)?;
        Some(row.goodput_qps / clean.goodput_qps.max(1e-9))
    }

    /// Serializes the report as pretty-printed JSON (no dependencies;
    /// every value is a number, so no string escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"faults\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"tuples\": {},", self.tuples);
        let _ = writeln!(out, "  \"batch\": {},", self.batch);
        let _ = writeln!(out, "  \"total_wrong\": {},", self.total_wrong());
        let _ = writeln!(out, "  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"rate\": {:.3},", row.rate);
            let _ = writeln!(out, "      \"fresh\": {},", row.fresh);
            let _ = writeln!(out, "      \"stale\": {},", row.stale);
            let _ = writeln!(out, "      \"unavailable\": {},", row.unavailable);
            let _ = writeln!(out, "      \"wrong\": {},", row.wrong);
            let _ = writeln!(out, "      \"exchanges\": {},", row.exchanges);
            let _ = writeln!(out, "      \"retries\": {},", row.client.retries);
            let _ = writeln!(out, "      \"timeouts\": {},", row.client.timeouts);
            let _ = writeln!(
                out,
                "      \"corrupt_replies\": {},",
                row.client.corrupt_replies
            );
            let _ = writeln!(
                out,
                "      \"stale_replies\": {},",
                row.client.stale_replies
            );
            let _ = writeln!(out, "      \"wire_dropped\": {},", row.wire.dropped);
            let _ = writeln!(
                out,
                "      \"wire_corrupted\": {},",
                row.wire.corrupted_requests + row.wire.corrupted_replies
            );
            let _ = writeln!(out, "      \"wire_duplicated\": {},", row.wire.duplicated);
            let _ = writeln!(
                out,
                "      \"virtual_elapsed_ms\": {},",
                row.virtual_elapsed_ms
            );
            let _ = writeln!(out, "      \"goodput_qps\": {:.1}", row.goodput_qps);
            let _ = writeln!(
                out,
                "    }}{}",
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// The fault mix at base rate `r`: drops and delays at `r`, duplicates and
/// corruption at half, reordering and stalls at a quarter — the same shape
/// the chaos matrix test sweeps.
pub fn plan_for(rate: f64) -> FaultPlan {
    FaultPlan {
        drop: rate,
        duplicate: rate / 2.0,
        corrupt: rate / 2.0,
        reorder: rate / 4.0,
        stall: rate / 4.0,
        delay: rate,
        ..FaultPlan::default()
    }
}

fn build_server(seed: u64) -> EnviroServer<BinaryCodec> {
    let sim = LausanneSim::lausanne(Scale::Quick.sim_config(seed));
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        RADIUS_M,
    );
    platform
        .engine()
        .prepare_parallel_auto(QueryMethod::ModelCover);
    EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover)
}

/// The fault-free ground truth through the same client and codec stack.
fn oracle(
    server: &EnviroServer<BinaryCodec>,
    traj: &[QueryTuple],
    batch: usize,
) -> Vec<Option<f64>> {
    let mut client = EnviroClient::new(
        BinaryCodec,
        server.platform().engine().dataset().pollutant(),
    )
    .with_batch(batch);
    let mut link = SimulatedLink::new(LinkProfile::IDEAL);
    let mut wire = LoopbackWire::new(server, &mut link);
    let mut values = Vec::new();
    client
        .query_batch(&mut wire, traj, &mut values)
        .unwrap_or_default();
    values
}

/// Measures one cell: `cfg.tuples` resilient queries at base rate `rate`.
fn run_cell(
    server: &EnviroServer<BinaryCodec>,
    truth: &[Option<f64>],
    traj: &[QueryTuple],
    cfg: &FaultsConfig,
    rate: f64,
) -> FaultsRow {
    let clock = VirtualClock::new();
    let mut link = SimulatedLink::new(LinkProfile::IDEAL);
    let mut wire = ChaosWire::new(
        LoopbackWire::new(server, &mut link),
        plan_for(rate),
        cfg.seed ^ (rate * 1_000.0) as u64,
        clock.clone(),
    );
    let mut client = EnviroClient::new(
        BinaryCodec,
        server.platform().engine().dataset().pollutant(),
    )
    .with_batch(cfg.batch)
    .with_clock(clock.clone())
    .with_rng_seed(cfg.seed ^ 0xD1CE);
    let mut outcomes = Vec::new();
    client.query_resilient(&mut wire, traj, &mut outcomes);

    let (mut fresh, mut stale, mut unavailable, mut wrong) = (0, 0, 0, 0);
    for (got, want) in outcomes.iter().zip(truth) {
        match got {
            QueryOutcome::Fresh(v) => {
                fresh += 1;
                let matches = match (v, want) {
                    (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
                    (None, None) => true,
                    _ => false,
                };
                if !matches {
                    wrong += 1;
                }
            }
            QueryOutcome::Stale(_) => stale += 1,
            QueryOutcome::Unavailable => unavailable += 1,
        }
    }
    let virtual_elapsed_ms = clock.now_ms().max(1);
    FaultsRow {
        rate,
        tuples: traj.len(),
        fresh,
        stale,
        unavailable,
        wrong,
        exchanges: client.exchanges() as u64,
        client: client.resilience_stats(),
        wire: wire.stats(),
        virtual_elapsed_ms,
        goodput_qps: fresh as f64 * 1_000.0 / virtual_elapsed_ms as f64,
    }
}

/// Runs the full sweep.
pub fn run(cfg: &FaultsConfig) -> FaultsReport {
    let server = build_server(cfg.seed);
    let sim = LausanneSim::lausanne(Scale::Quick.sim_config(cfg.seed));
    let traj = sim.continuous_trajectory(cfg.tuples, 30, cfg.seed ^ 1);
    let truth = oracle(&server, &traj, cfg.batch);
    let rows = cfg
        .rates
        .iter()
        .map(|&rate| run_cell(&server, &truth, &traj, cfg, rate))
        .collect();
    FaultsReport {
        rows,
        tuples: cfg.tuples,
        batch: cfg.batch,
        seed: cfg.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> FaultsConfig {
        FaultsConfig {
            rates: vec![0.0, 0.05, 0.15],
            tuples: 400,
            batch: 16,
            seed: 0xFA_07,
        }
    }

    #[test]
    fn sweep_never_returns_wrong_values() {
        let report = run(&tiny_config());
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.total_wrong(), 0, "{report:?}");
        for row in &report.rows {
            assert_eq!(
                row.fresh + row.stale + row.unavailable,
                row.tuples,
                "{row:?}"
            );
        }
    }

    #[test]
    fn clean_control_row_needs_no_retries() {
        let report = run(&tiny_config());
        let clean = &report.rows[0];
        assert_eq!(clean.rate, 0.0);
        assert_eq!(clean.client.retries, 0, "{clean:?}");
        assert_eq!(clean.unavailable, 0, "{clean:?}");
        assert_eq!(clean.fresh, clean.tuples, "{clean:?}");
    }

    #[test]
    fn faults_cost_goodput_and_exchanges() {
        let report = run(&tiny_config());
        let (clean, faulty) = (&report.rows[0], &report.rows[2]);
        assert!(faulty.client.retries > 0, "{faulty:?}");
        assert!(faulty.exchanges > clean.exchanges, "{faulty:?}");
        assert!(
            faulty.goodput_qps < clean.goodput_qps,
            "goodput {} !< {}",
            faulty.goodput_qps,
            clean.goodput_qps
        );
    }

    #[test]
    fn report_is_deterministic_for_a_seed() {
        let a = run(&tiny_config());
        let b = run(&tiny_config());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = run(&tiny_config()).to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"rate\"").count(), 3);
        assert!(json.contains("\"total_wrong\": 0"));
        assert!(!json.contains("inf") && !json.contains("NaN"), "{json}");
    }
}
