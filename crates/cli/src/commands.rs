//! The subcommand implementations.

use crate::args::Args;
use crate::{CliError, USAGE};
use enviro_data::csv::{read_csv, write_csv};
use enviro_data::{Dataset, LausanneSim, Pollutant, QueryTuple, SimConfig, WindowSpec};
use enviro_geo::{Point, Polyline};
use enviro_meter::{default_parallelism, AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BinaryCodec, Clock, ConcurrentTransport, EnviroClient, EnviroServer, IngestConfig, IngestState,
    ModelMaintenance, RetryPolicy, SystemClock, TransportConfig, VirtualClock, Wire, WireCodec,
};
use enviro_schedule::sync::Arc;
use enviro_storage::{TupleStore, WalConfig};
use std::io::Write;

/// Routes a raw argument list to its subcommand.
pub fn dispatch(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        writeln!(out, "{USAGE}").map_err(io_err)?;
        return Ok(());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "simulate" => cmd_simulate(&args, out),
        "info" => cmd_info(&args, out),
        "query" => cmd_query(&args, out),
        "heatmap" => cmd_heatmap(&args, out),
        "route" => cmd_route(&args, out),
        "serve" => cmd_serve(&args, out),
        "ingest" => cmd_ingest(&args, out),
        "store" => cmd_store(&args, out),
        "--help" | "help" => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n{USAGE}"
        ))),
    }
}

fn io_err(e: std::io::Error) -> CliError {
    CliError::runtime(format!("I/O error: {e}"))
}

fn load_dataset(args: &Args) -> Result<Dataset, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("missing dataset path (CSV)"))?;
    let file = std::fs::File::open(path)
        .map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
    let pollutant: Pollutant = args
        .get("pollutant")
        .unwrap_or("CO2")
        .parse()
        .map_err(CliError::usage)?;
    read_csv(pollutant, file).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

fn platform_from(args: &Args, dataset: Dataset) -> Result<EnviroMeter, CliError> {
    let spec = match (args.get("window"), args.get("window-secs")) {
        (Some(_), Some(_)) => return Err(CliError::usage("give either --window or --window-secs")),
        (Some(_), None) => WindowSpec::ByCount(args.require_parsed("window")?),
        (None, Some(_)) => WindowSpec::ByDuration(args.require_parsed("window-secs")?),
        (None, None) => WindowSpec::ByDuration(4 * 3_600),
    };
    let adkmn = AdKmnConfig {
        tau_percent: args.get_or("tau", 2.0)?,
        ..AdKmnConfig::default()
    };
    let radius = args.get_or("radius", 1_000.0)?;
    Ok(EnviroMeter::new(dataset, spec, adkmn, radius))
}

fn parse_method(args: &Args) -> Result<QueryMethod, CliError> {
    match args
        .get("method")
        .unwrap_or("ad-kmn")
        .to_ascii_lowercase()
        .as_str()
    {
        "ad-kmn" | "adkmn" | "cover" | "model-cover" => Ok(QueryMethod::ModelCover),
        "naive" => Ok(QueryMethod::Naive),
        "rtree" | "r-tree" => Ok(QueryMethod::RTree),
        "vptree" | "vp-tree" => Ok(QueryMethod::VpTree),
        "kdtree" | "kd-tree" => Ok(QueryMethod::KdTree),
        "grid" => Ok(QueryMethod::Grid),
        "idw" => Ok(QueryMethod::Idw),
        other => Err(CliError::usage(format!("unknown --method {other:?}"))),
    }
}

fn cmd_simulate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.has("help") {
        writeln!(
            out,
            "usage: enviro simulate --out FILE [--hours N | --days N] \
             [--interval SECS] [--seed N]"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let out_path = args.require("out")?;
    let hours: i64 = args.get_or("hours", 0)?;
    let days: i64 = args.get_or("days", 0)?;
    let duration_secs = match (hours, days) {
        (0, 0) => 24 * 3_600,
        (h, 0) => h * 3_600,
        (0, d) => d * 86_400,
        _ => return Err(CliError::usage("give either --hours or --days")),
    };
    let config = SimConfig {
        duration_secs,
        sampling_interval_secs: args.get_or("interval", 60)?,
        seed: args.get_or("seed", SimConfig::default().seed)?,
        ..SimConfig::default()
    };
    let sim = LausanneSim::lausanne(config);
    let dataset = sim.generate();
    let mut file = std::io::BufWriter::new(
        std::fs::File::create(out_path)
            .map_err(|e| CliError::runtime(format!("cannot create {out_path}: {e}")))?,
    );
    write_csv(&dataset, &mut file).map_err(io_err)?;
    writeln!(
        out,
        "wrote {} tuples ({} bus lines, {} s sampling) to {out_path}",
        dataset.len(),
        sim.lines().len(),
        sim.config().sampling_interval_secs
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_info(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.has("help") {
        writeln!(out, "usage: enviro info FILE [--pollutant P]").map_err(io_err)?;
        return Ok(());
    }
    let dataset = load_dataset(args)?;
    writeln!(out, "tuples:    {}", dataset.len()).map_err(io_err)?;
    writeln!(out, "pollutant: {}", dataset.pollutant()).map_err(io_err)?;
    if let Some((from, to)) = dataset.time_span() {
        writeln!(out, "time span: {from} .. {to}").map_err(io_err)?;
    }
    let b = dataset.bounds();
    if !b.is_empty() {
        writeln!(
            out,
            "extent:    {:.1} x {:.1} km",
            b.width() / 1_000.0,
            b.height() / 1_000.0
        )
        .map_err(io_err)?;
    }
    if let Some(s) = dataset.stats() {
        writeln!(
            out,
            "values:    min {:.1}  mean {:.1}  max {:.1}  sd {:.1} {}",
            s.min,
            s.mean,
            s.max,
            s.std_dev,
            dataset.pollutant().unit()
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.has("help") {
        writeln!(
            out,
            "usage: enviro query FILE --time T --x X --y Y [--method M] \
             [--radius R] [--window H | --window-secs S] [--tau PCT]"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let dataset = load_dataset(args)?;
    let pollutant = dataset.pollutant();
    let platform = platform_from(args, dataset)?;
    let time = args
        .time("time")?
        .ok_or_else(|| CliError::usage("missing required flag --time"))?;
    let x: f64 = args.require_parsed("x")?;
    let y: f64 = args.require_parsed("y")?;
    let method = parse_method(args)?;
    let q = QueryTuple::new(time, Point::new(x, y));
    match platform.point_query(&q, method) {
        Some(v) => {
            let level = pollutant.classify(v);
            writeln!(
                out,
                "{v:.1} {} at ({x}, {y}) {time} via {method} — {level}",
                pollutant.unit()
            )
            .map_err(io_err)?;
        }
        None => writeln!(out, "no data within radius for ({x}, {y}) at {time}").map_err(io_err)?,
    }
    Ok(())
}

fn cmd_heatmap(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.has("help") {
        writeln!(
            out,
            "usage: enviro heatmap FILE --time T --out FILE.ppm \
             [--cols N] [--rows N] [--ascii]"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let dataset = load_dataset(args)?;
    let platform = platform_from(args, dataset)?;
    let time = args
        .time("time")?
        .ok_or_else(|| CliError::usage("missing required flag --time"))?;
    let cols = args.get_or("cols", 96u32)?;
    let rows = args.get_or("rows", 64u32)?;
    let hm = platform
        .heatmap(time, cols, rows)
        .ok_or_else(|| CliError::runtime("no data to render".to_string()))?;
    if args.has("ascii") {
        write!(out, "{}", hm.to_ascii()).map_err(io_err)?;
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, hm.to_ppm())
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        let (lo, hi) = hm.value_range();
        writeln!(
            out,
            "wrote {cols}x{rows} heatmap ({lo:.0}..{hi:.0} {}) to {path}",
            hm.pollutant.unit()
        )
        .map_err(io_err)?;
    } else if !args.has("ascii") {
        return Err(CliError::usage("give --out FILE.ppm and/or --ascii"));
    }
    Ok(())
}

fn cmd_route(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.has("help") {
        writeln!(
            out,
            "usage: enviro route FILE --points \"x,y;x,y;...\" --start T \
             [--speed MPS] [--interval SECS] [--method M]"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let dataset = load_dataset(args)?;
    let platform = platform_from(args, dataset)?;
    let start = args
        .time("start")?
        .ok_or_else(|| CliError::usage("missing required flag --start"))?;
    let speed: f64 = args.get_or("speed", 1.4)?;
    let interval: i64 = args.get_or("interval", 60)?;
    if speed <= 0.0 || interval <= 0 {
        return Err(CliError::usage("--speed and --interval must be positive"));
    }
    let vertices = parse_points(args.require("points")?)?;
    if vertices.len() < 2 {
        return Err(CliError::usage("--points needs at least two x,y pairs"));
    }
    let walk = Polyline::new(vertices);
    let fixes = (walk.length() / (speed * interval as f64)).ceil() as usize + 1;
    let trajectory: Vec<QueryTuple> = (0..fixes)
        .map(|i| {
            QueryTuple::new(
                start + i as i64 * interval,
                walk.point_at(i as f64 * interval as f64 * speed),
            )
        })
        .collect();
    let method = parse_method(args)?;
    let route = platform.record_route(&trajectory, method);
    let summary = route.summary();
    writeln!(out, "{}", summary.advisory).map_err(io_err)?;
    writeln!(
        out,
        "points: {} recorded, {} answered; route length {:.0} m",
        summary.recorded,
        summary.answered,
        walk.length()
    )
    .map_err(io_err)?;
    Ok(())
}

/// Counts wire bytes crossing an [`EnviroClient`] session.
struct MeteredWire<W> {
    inner: W,
    bytes: u64,
}

impl<W: Wire> Wire for MeteredWire<W> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], enviro_net::TransportError> {
        self.bytes += request.len() as u64;
        let reply = self.inner.exchange(request)?;
        self.bytes += reply.len() as u64;
        Ok(reply)
    }
}

fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.has("help") {
        writeln!(
            out,
            "usage: enviro serve FILE [--workers N] [--batch B] [--clients K] \
             [--requests M] [--method M] [--window H | --window-secs S]\n\
             [--max-queue Q] [--deadline-ms MS] [--retries R] [--ingest DIR]\n\
             runs the concurrent server over FILE and drives it with K \
             in-process clients issuing M queries each;\n\
             --workers defaults to the detected CPU parallelism;\n\
             --max-queue bounds each worker's queue (overload is shed with \
             Busy replies);\n\
             --deadline-ms and --retries set each client's per-request \
             deadline and retry budget;\n\
             --ingest DIR opens a WAL-backed ingest state at DIR, streams \
             the dataset through the durable write path concurrently with \
             the query load, and publishes covers online"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let dataset = load_dataset(args)?;
    let pollutant = dataset.pollutant();
    let (from, to) = dataset
        .time_span()
        .ok_or_else(|| CliError::runtime("dataset is empty".to_string()))?;
    let bounds = dataset.bounds();
    // With --ingest the same tuples are streamed through the durable write
    // path while the query clients run; keep a copy before the platform
    // consumes the dataset.
    let ingest_dir = args.get("ingest").map(str::to_string);
    let stream: Vec<enviro_data::RawTuple> = if ingest_dir.is_some() {
        dataset.tuples().to_vec()
    } else {
        Vec::new()
    };
    let platform = platform_from(args, dataset)?;
    let method = parse_method(args)?;
    let workers: usize = args.get_or("workers", default_parallelism())?;
    let batch: usize = args.get_or("batch", 64)?;
    let clients: usize = args.get_or("clients", 4)?;
    let requests: usize = args.get_or("requests", 10_000)?;
    let max_queue: usize = args.get_or("max-queue", TransportConfig::default().max_queue)?;
    let policy = RetryPolicy {
        deadline_ms: args.get_or("deadline-ms", RetryPolicy::default().deadline_ms)?,
        max_retries: args.get_or("retries", RetryPolicy::default().max_retries)?,
        ..RetryPolicy::default()
    };
    if workers == 0 || batch == 0 || clients == 0 || requests == 0 || max_queue == 0 {
        return Err(CliError::usage(
            "--workers, --batch, --clients, --requests and --max-queue must be positive",
        ));
    }

    // Build every per-window structure up front (in parallel across the
    // worker count) so the measured load sees steady-state serving.
    platform.engine().prepare_parallel(method, workers);
    let ingest = match &ingest_dir {
        Some(dir) => {
            let window_secs: i64 = args.get_or("window-secs", 4 * 3_600)?;
            let state = Arc::new(
                IngestState::open(
                    std::path::Path::new(dir),
                    WalConfig {
                        window_secs,
                        ..WalConfig::default()
                    },
                    IngestConfig {
                        pollutant,
                        ..IngestConfig::default()
                    },
                )
                .map_err(|e| CliError::runtime(format!("cannot open ingest dir {dir}: {e}")))?,
            );
            let maintenance = ModelMaintenance::spawn(Arc::clone(&state))
                .map_err(|e| CliError::runtime(format!("cannot spawn maintenance: {e}")))?;
            Some((state, maintenance))
        }
        None => None,
    };
    let mut server = EnviroServer::new(platform, BinaryCodec, method);
    if let Some((state, _)) = &ingest {
        server = server.with_ingest(Arc::clone(state));
    }
    let server = Arc::new(server);
    let transport = ConcurrentTransport::spawn_shared_with(
        server,
        TransportConfig {
            workers,
            max_queue,
            ..TransportConfig::default()
        },
    )
    .map_err(|e| CliError::runtime(format!("cannot spawn workers: {e}")))?;

    // Each client walks its own diagonal of the dataset's extent over its
    // full time span: deterministic, allocation-cheap, and distinct per
    // client so cross-session reply mixups would surface as misses.
    let span_secs = (to - from).max(1);
    let trajectories: Vec<Vec<QueryTuple>> = (0..clients)
        .map(|k| {
            (0..requests)
                .map(|i| {
                    let f = i as f64 / requests.max(1) as f64;
                    let g = ((i + k * 7919) % requests.max(1)) as f64 / requests.max(1) as f64;
                    QueryTuple::new(
                        from + (f * span_secs as f64) as i64,
                        Point::new(
                            bounds.min.x + g * bounds.width(),
                            bounds.min.y + (1.0 - g) * bounds.height(),
                        ),
                    )
                })
                .collect()
        })
        .collect();

    let start = std::time::Instant::now();
    type ClientResult = (u64, usize, usize, u64, enviro_net::ResilienceStats);
    type ServeOutcome = (Vec<ClientResult>, Option<enviro_net::IngestReport>);
    let (results, ingest_report): ServeOutcome = std::thread::scope(|scope| {
        // The durable write path runs concurrently with the query load:
        // one extra session streams the dataset as `IngestBatch` frames.
        let ingest_handle = (!stream.is_empty()).then(|| {
            let transport = &transport;
            let stream = &stream;
            scope.spawn(move || {
                let mut wire = transport.session();
                let mut client = EnviroClient::new(BinaryCodec, pollutant)
                    .with_batch(batch)
                    .with_retry_policy(policy);
                client.ingest_resilient(&mut wire, 0xC11, stream)
            })
        });
        let handles: Vec<_> = trajectories
            .iter()
            .map(|traj| {
                let transport = &transport;
                scope.spawn(move || {
                    let mut wire = MeteredWire {
                        inner: transport.session(),
                        bytes: 0,
                    };
                    let mut client = EnviroClient::new(BinaryCodec, pollutant)
                        .with_batch(batch)
                        .with_retry_policy(policy);
                    let mut outcomes = Vec::new();
                    client.query_resilient(&mut wire, traj, &mut outcomes);
                    let answered = outcomes.iter().filter(|o| o.value().is_some()).count();
                    let unavailable = outcomes.iter().filter(|o| o.is_unavailable()).count() as u64;
                    let completed = outcomes.len() - unavailable as usize;
                    (
                        wire.bytes,
                        completed,
                        answered,
                        unavailable,
                        client.resilience_stats(),
                    )
                })
            })
            .collect();
        let results = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or((0, 0, 0, 0, enviro_net::ResilienceStats::default()))
            })
            .collect();
        let report = ingest_handle.and_then(|h| h.join().ok());
        (results, report)
    });
    let elapsed = start.elapsed().as_secs_f64();

    let total: usize = results.iter().map(|r| r.1).sum();
    let answered: usize = results.iter().map(|r| r.2).sum();
    let bytes: u64 = results.iter().map(|r| r.0).sum();
    let unavailable: u64 = results.iter().map(|r| r.3).sum();
    let retries: u64 = results.iter().map(|r| r.4.retries).sum();
    let busy: u64 = results.iter().map(|r| r.4.busy_replies).sum();
    if total == 0 {
        return Err(CliError::runtime("no queries completed".to_string()));
    }
    writeln!(
        out,
        "served {total} queries ({answered} answered) with {workers} workers, \
         batch {batch}, {clients} clients"
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "throughput: {:.0} queries/s; wire: {:.1} bytes/query; elapsed {:.3} s",
        total as f64 / elapsed.max(1e-9),
        bytes as f64 / total as f64,
        elapsed
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "resilience: {retries} retries, {busy} busy replies, {} shed by server, \
         {unavailable} unavailable",
        transport.shed_total()
    )
    .map_err(io_err)?;
    if let Some((state, _maintenance)) = &ingest {
        // Publish whatever is still pending so the summary reflects the
        // whole run, not the maintenance worker's race with shutdown.
        state
            .rebuild_dirty_now()
            .map_err(|e| CliError::runtime(format!("cover rebuild failed: {e}")))?;
        let stats = state.stats();
        let report = ingest_report.unwrap_or_default();
        writeln!(
            out,
            "ingest: {} tuples acked, {} failed, durable {}, \
             {} windows published, generation {}",
            report.acked_tuples,
            report.failed_tuples,
            stats.durable_tuples,
            stats.published_windows,
            state.generation()
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// A [`Wire`] that calls the server in-process with no simulated link —
/// the `enviro ingest` replayer's transport.
struct DirectWire<'a, C: WireCodec> {
    server: &'a EnviroServer<C>,
    reply: Vec<u8>,
}

impl<C: WireCodec> Wire for DirectWire<'_, C> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], enviro_net::TransportError> {
        self.server.handle_bytes_into(request, &mut self.reply);
        Ok(&self.reply)
    }
}

fn cmd_ingest(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.has("help") {
        writeln!(
            out,
            "usage: enviro ingest FILE --dir DIR [--rate N] [--batch B] \
             [--window-secs S] [--source ID] [--virtual-clock]\n\
             replays FILE through the durable write path at --rate tuples/s \
             (default 1000): tuples are appended to the WAL at DIR, \
             acknowledged once durable, and background maintenance \
             publishes Ad-KMN covers online;\n\
             --virtual-clock paces on a virtual clock (no real sleeping), \
             for deterministic tests"
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let dataset = load_dataset(args)?;
    let pollutant = dataset.pollutant();
    let dir = args.require("dir")?;
    let rate: f64 = args.get_or("rate", 1_000.0)?;
    let batch: usize = args.get_or("batch", 64)?;
    let window_secs: i64 = args.get_or("window-secs", 3_600)?;
    let source: u64 = args.get_or("source", 1)?;
    if !rate.is_finite() || rate <= 0.0 || batch == 0 || window_secs <= 0 {
        return Err(CliError::usage(
            "--rate, --batch and --window-secs must be positive",
        ));
    }

    let state = Arc::new(
        IngestState::open(
            std::path::Path::new(dir),
            WalConfig {
                window_secs,
                ..WalConfig::default()
            },
            IngestConfig {
                pollutant,
                ..IngestConfig::default()
            },
        )
        .map_err(|e| CliError::runtime(format!("cannot open ingest dir {dir}: {e}")))?,
    );
    let maintenance = ModelMaintenance::spawn(Arc::clone(&state))
        .map_err(|e| CliError::runtime(format!("cannot spawn maintenance: {e}")))?;
    // An ingest-only endpoint: the static platform behind it is empty, so
    // every query answer comes from the stream's published covers.
    let server = EnviroServer::new(
        EnviroMeter::new(
            Dataset::new(pollutant),
            WindowSpec::ByDuration(window_secs),
            AdKmnConfig::default(),
            1_000.0,
        ),
        BinaryCodec,
        QueryMethod::ModelCover,
    )
    .with_ingest(Arc::clone(&state));

    let clock: Box<dyn Clock> = if args.has("virtual-clock") {
        Box::new(VirtualClock::new())
    } else {
        Box::new(SystemClock::new())
    };
    let mut wire = DirectWire {
        server: &server,
        reply: Vec::new(),
    };
    let mut client = EnviroClient::new(BinaryCodec, pollutant).with_batch(batch);

    let start_ms = clock.now_ms();
    let mut sent = 0u64;
    let mut acked = 0u64;
    let mut failed = 0u64;
    let mut durable = 0u64;
    for chunk in dataset.tuples().chunks(batch) {
        let report = client.ingest_resilient(&mut wire, source, chunk);
        acked += report.acked_tuples;
        failed += report.failed_tuples;
        durable = durable.max(report.durable_upto);
        sent += chunk.len() as u64;
        // Pace the replay: sleep until `sent` tuples' worth of virtual (or
        // real) time has elapsed at the target rate.
        let target_ms = start_ms + (sent as f64 / rate * 1_000.0) as u64;
        let now = clock.now_ms();
        if target_ms > now {
            clock.sleep_ms(target_ms - now);
        }
    }
    drop(maintenance); // shut the worker down before the final sync rebuild
    state
        .rebuild_dirty_now()
        .map_err(|e| CliError::runtime(format!("cover rebuild failed: {e}")))?;
    let stats = state.stats();
    let elapsed = (clock.now_ms() - start_ms) as f64 / 1_000.0;
    writeln!(
        out,
        "ingested {acked} tuples ({failed} failed) at target {rate:.0} tuples/s; \
         durable {durable}; {} windows published (generation {}); elapsed {elapsed:.3} s",
        stats.published_windows,
        state.generation()
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_store(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let sub = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("--help");
    match sub {
        "ingest" => {
            let csv_path = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::usage("usage: enviro store ingest FILE --dir DIR"))?;
            let dir = args.require("dir")?;
            let file = std::fs::File::open(csv_path)
                .map_err(|e| CliError::runtime(format!("cannot open {csv_path}: {e}")))?;
            let dataset = read_csv(Pollutant::Co2, file)
                .map_err(|e| CliError::runtime(format!("{csv_path}: {e}")))?;
            let mut store = TupleStore::open(dir).map_err(|e| CliError::runtime(e.to_string()))?;
            store
                .append(dataset.tuples())
                .and_then(|()| store.sync())
                .map_err(|e| CliError::runtime(e.to_string()))?;
            let stats = store.stats();
            writeln!(
                out,
                "ingested {} tuples; store now holds {} tuples in {} segments ({} bytes)",
                dataset.len(),
                stats.tuples,
                stats.segments,
                stats.bytes
            )
            .map_err(io_err)?;
            Ok(())
        }
        "export" => {
            let dir = args.require("dir")?;
            let out_path = args.require("out")?;
            let store = TupleStore::open(dir).map_err(|e| CliError::runtime(e.to_string()))?;
            let dataset = store
                .load_dataset(Pollutant::Co2)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            let mut file = std::io::BufWriter::new(
                std::fs::File::create(out_path)
                    .map_err(|e| CliError::runtime(format!("cannot create {out_path}: {e}")))?,
            );
            write_csv(&dataset, &mut file).map_err(io_err)?;
            writeln!(out, "exported {} tuples to {out_path}", dataset.len()).map_err(io_err)?;
            Ok(())
        }
        "stats" => {
            let dir = args.require("dir")?;
            let store = TupleStore::open(dir).map_err(|e| CliError::runtime(e.to_string()))?;
            let s = store.stats();
            writeln!(
                out,
                "segments: {}  tuples: {}  bytes: {}  recovered-torn-tail: {}",
                s.segments, s.tuples, s.bytes, s.recovered_torn_tail
            )
            .map_err(io_err)?;
            Ok(())
        }
        "compact" => {
            let dir = args.require("dir")?;
            let mut store = TupleStore::open(dir).map_err(|e| CliError::runtime(e.to_string()))?;
            let before = store.stats();
            store
                .compact()
                .map_err(|e| CliError::runtime(e.to_string()))?;
            let after = store.stats();
            writeln!(
                out,
                "compacted {} segments ({} bytes) into {} ({} bytes); {} tuples",
                before.segments, before.bytes, after.segments, after.bytes, after.tuples
            )
            .map_err(io_err)?;
            Ok(())
        }
        _ => {
            writeln!(
                out,
                "usage: enviro store <ingest FILE --dir DIR | export --dir DIR --out FILE | stats --dir DIR | compact --dir DIR>"
            )
            .map_err(io_err)?;
            Ok(())
        }
    }
}

/// Parses `"x,y;x,y;…"` into points.
fn parse_points(raw: &str) -> Result<Vec<Point>, CliError> {
    raw.split(';')
        .filter(|s| !s.trim().is_empty())
        .map(|pair| {
            let mut it = pair.split(',');
            let x = it
                .next()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .ok_or_else(|| CliError::usage(format!("bad point {pair:?}")))?;
            let y = it
                .next()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .ok_or_else(|| CliError::usage(format!("bad point {pair:?}")))?;
            if it.next().is_some() {
                return Err(CliError::usage(format!("bad point {pair:?}")));
            }
            Ok(Point::new(x, y))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(argv: &[&str]) -> (i32, String) {
        let args: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = crate::run(&args, &mut out);
        (code, String::from_utf8(out).expect("utf8 output"))
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("enviro-cli-{name}-{}", std::process::id()))
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, out) = run_cmd(&[]);
        assert_eq!(code, 0);
        assert!(out.contains("usage: enviro"));
    }

    #[test]
    fn unknown_command_fails_with_usage_code() {
        let (code, _) = run_cmd(&["frobnicate"]);
        assert_eq!(code, 2);
    }

    #[test]
    fn simulate_then_info_query_heatmap_route() {
        let csv = temp_path("pipeline.csv");
        let csv_str = csv.to_str().unwrap();
        let (code, out) = run_cmd(&["simulate", "--hours", "6", "--seed", "3", "--out", csv_str]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("wrote 720 tuples"), "{out}");

        let (code, out) = run_cmd(&["info", csv_str]);
        assert_eq!(code, 0);
        assert!(out.contains("tuples:    720"), "{out}");
        assert!(out.contains("pollutant: CO2"));

        let (code, out) = run_cmd(&["query", csv_str, "--time", "2h", "--x", "0", "--y", "-200"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("ppm"), "{out}");
        assert!(out.contains("Ad-KMN"), "{out}");

        let ppm = temp_path("map.ppm");
        let (code, out) = run_cmd(&[
            "heatmap",
            csv_str,
            "--time",
            "2h",
            "--out",
            ppm.to_str().unwrap(),
            "--cols",
            "16",
            "--rows",
            "12",
        ]);
        assert_eq!(code, 0, "{out}");
        let img = std::fs::read(&ppm).unwrap();
        assert!(img.starts_with(b"P6\n16 12\n255\n"));

        let (code, out) = run_cmd(&[
            "route",
            csv_str,
            "--start",
            "1h",
            "--points",
            "0,-200;500,0;800,100",
            "--speed",
            "2.0",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Average CO2"), "{out}");

        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&ppm).ok();
    }

    #[test]
    fn store_roundtrip() {
        let csv = temp_path("store-src.csv");
        let back = temp_path("store-back.csv");
        let dir = temp_path("store-dir");
        let _ = std::fs::remove_dir_all(&dir);
        let (code, _) = run_cmd(&["simulate", "--hours", "2", "--out", csv.to_str().unwrap()]);
        assert_eq!(code, 0);
        let (code, out) = run_cmd(&[
            "store",
            "ingest",
            csv.to_str().unwrap(),
            "--dir",
            dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("ingested 240 tuples"), "{out}");
        let (code, out) = run_cmd(&[
            "store",
            "export",
            "--dir",
            dir.to_str().unwrap(),
            "--out",
            back.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        let a = std::fs::read_to_string(&csv).unwrap();
        let b = std::fs::read_to_string(&back).unwrap();
        assert_eq!(a, b, "store round trip must be lossless");
        let (code, out) = run_cmd(&["store", "stats", "--dir", dir.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(out.contains("tuples: 240"), "{out}");
        let (code, out) = run_cmd(&["store", "compact", "--dir", dir.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("240 tuples"), "{out}");
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&back).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_drives_concurrent_load() {
        let csv = temp_path("serve.csv");
        run_cmd(&["simulate", "--hours", "4", "--out", csv.to_str().unwrap()]);
        let (code, out) = run_cmd(&[
            "serve",
            csv.to_str().unwrap(),
            "--workers",
            "2",
            "--batch",
            "16",
            "--clients",
            "2",
            "--requests",
            "200",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("served 400 queries"), "{out}");
        assert!(out.contains("queries/s"), "{out}");
        assert!(out.contains("bytes/query"), "{out}");
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn serve_rejects_zero_workers() {
        let csv = temp_path("serve-zero.csv");
        run_cmd(&["simulate", "--hours", "1", "--out", csv.to_str().unwrap()]);
        let (code, _) = run_cmd(&["serve", csv.to_str().unwrap(), "--workers", "0"]);
        assert_eq!(code, 2);
        let (code, _) = run_cmd(&["serve", csv.to_str().unwrap(), "--max-queue", "0"]);
        assert_eq!(code, 2);
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn serve_with_tiny_queue_sheds_but_still_answers_everything() {
        let csv = temp_path("serve-shed.csv");
        run_cmd(&["simulate", "--hours", "2", "--out", csv.to_str().unwrap()]);
        // A one-slot queue under two pipelining clients forces shedding;
        // the resilient clients must absorb every Busy via retries.
        let (code, out) = run_cmd(&[
            "serve",
            csv.to_str().unwrap(),
            "--workers",
            "1",
            "--max-queue",
            "1",
            "--batch",
            "8",
            "--clients",
            "2",
            "--requests",
            "100",
            "--deadline-ms",
            "30000",
            "--retries",
            "1000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("served 200 queries"), "{out}");
        assert!(out.contains("resilience:"), "{out}");
        assert!(out.contains("0 unavailable"), "{out}");
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn ingest_replays_at_rate_on_a_virtual_clock() {
        let csv = temp_path("ingest-replay.csv");
        let dir = temp_path("ingest-replay-wal");
        let _ = std::fs::remove_dir_all(&dir);
        run_cmd(&["simulate", "--hours", "2", "--out", csv.to_str().unwrap()]);
        let (code, out) = run_cmd(&[
            "ingest",
            csv.to_str().unwrap(),
            "--dir",
            dir.to_str().unwrap(),
            "--rate",
            "120",
            "--batch",
            "32",
            "--virtual-clock",
        ]);
        assert_eq!(code, 0, "{out}");
        // 2 simulated hours at 60 s sampling = 240 tuples; at 120 tuples/s
        // the virtual-clock pacing makes the replay exactly 2 s long.
        assert!(out.contains("ingested 240 tuples (0 failed)"), "{out}");
        assert!(out.contains("durable 240"), "{out}");
        assert!(out.contains("elapsed 2.000 s"), "{out}");
        assert!(out.contains("windows published"), "{out}");
        std::fs::remove_file(&csv).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_rejects_bad_rate() {
        let csv = temp_path("ingest-bad-rate.csv");
        let dir = temp_path("ingest-bad-rate-wal");
        run_cmd(&["simulate", "--hours", "1", "--out", csv.to_str().unwrap()]);
        let (code, _) = run_cmd(&[
            "ingest",
            csv.to_str().unwrap(),
            "--dir",
            dir.to_str().unwrap(),
            "--rate",
            "0",
        ]);
        assert_eq!(code, 2);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_with_ingest_streams_the_write_path_under_query_load() {
        let csv = temp_path("serve-ingest.csv");
        let dir = temp_path("serve-ingest-wal");
        let _ = std::fs::remove_dir_all(&dir);
        run_cmd(&["simulate", "--hours", "2", "--out", csv.to_str().unwrap()]);
        let (code, out) = run_cmd(&[
            "serve",
            csv.to_str().unwrap(),
            "--workers",
            "2",
            "--batch",
            "16",
            "--clients",
            "2",
            "--requests",
            "100",
            "--ingest",
            dir.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("served 200 queries"), "{out}");
        assert!(out.contains("ingest: 240 tuples acked, 0 failed"), "{out}");
        assert!(out.contains("durable 240"), "{out}");
        std::fs::remove_file(&csv).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_requires_time() {
        let csv = temp_path("notime.csv");
        run_cmd(&["simulate", "--hours", "1", "--out", csv.to_str().unwrap()]);
        let (code, _) = run_cmd(&["query", csv.to_str().unwrap(), "--x", "0", "--y", "0"]);
        assert_eq!(code, 2);
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn query_method_selection() {
        let csv = temp_path("methods.csv");
        run_cmd(&["simulate", "--hours", "2", "--out", csv.to_str().unwrap()]);
        for m in [
            "naive", "rtree", "vptree", "kdtree", "grid", "idw", "ad-kmn",
        ] {
            let (code, out) = run_cmd(&[
                "query",
                csv.to_str().unwrap(),
                "--time",
                "1h",
                "--x",
                "0",
                "--y",
                "-200",
                "--method",
                m,
            ]);
            assert_eq!(code, 0, "{m}: {out}");
        }
        let (code, _) = run_cmd(&[
            "query",
            csv.to_str().unwrap(),
            "--time",
            "1h",
            "--x",
            "0",
            "--y",
            "0",
            "--method",
            "quantum",
        ]);
        assert_eq!(code, 2);
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn parse_points_rejects_garbage() {
        assert!(parse_points("1,2;3,4").is_ok());
        assert!(parse_points("1,2;nope").is_err());
        assert!(parse_points("1,2,3").is_err());
        assert_eq!(parse_points("").unwrap().len(), 0);
    }

    #[test]
    fn missing_file_is_runtime_error() {
        let (code, _) = run_cmd(&["info", "/definitely/not/here.csv"]);
        assert_eq!(code, 1);
    }
}
