//! The `enviro` binary: a thin shell around [`enviro_cli::run`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(enviro_cli::run(&args, &mut stdout));
}
