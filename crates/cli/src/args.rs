//! Minimal `--flag value` argument parsing.

use crate::CliError;
use enviro_data::Timestamp;
use std::collections::BTreeMap;

/// Parsed arguments of one subcommand: positionals plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
    /// Flags that were present without a value (e.g. `--help`).
    switches: Vec<String>,
}

impl Args {
    /// Parses a flat token list. A token starting with `--` consumes the
    /// next token as its value unless it is itself a `--switch` at the end
    /// or followed by another flag (then it is a boolean switch).
    pub fn parse(tokens: &[String]) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err(CliError::usage("stray `--`"));
                }
                let next_is_value = tokens
                    .get(i + 1)
                    .map(|n| !n.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    if args
                        .flags
                        .insert(name.to_string(), tokens[i + 1].clone())
                        .is_some()
                    {
                        return Err(CliError::usage(format!("duplicate flag --{name}")));
                    }
                    i += 2;
                } else {
                    args.switches.push(name.to_string());
                    i += 1;
                }
            } else {
                args.positional.push(tok.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// `true` if `--name` appeared (as a switch or with a value).
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.flags.contains_key(name)
    }

    /// The raw value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::usage(format!("missing required flag --{name}")))
    }

    /// An optional parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::usage(format!("invalid value for --{name}: {raw:?}"))),
        }
    }

    /// A required parsed flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let raw = self.require(name)?;
        raw.parse()
            .map_err(|_| CliError::usage(format!("invalid value for --{name}: {raw:?}")))
    }

    /// Parses a `--time` style value: plain seconds (`3600`), hours (`8h`),
    /// minutes (`30m`), or days (`2d`).
    pub fn time(&self, name: &str) -> Result<Option<Timestamp>, CliError> {
        let Some(raw) = self.get(name) else {
            return Ok(None);
        };
        parse_time(raw)
            .map(Some)
            .ok_or_else(|| CliError::usage(format!("invalid time for --{name}: {raw:?}")))
    }

    /// Flags that were given but never read — currently unused, reserved
    /// for strict-mode validation.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }
}

/// Parses `3600`, `90m`, `8h` or `2d` into a timestamp.
pub fn parse_time(raw: &str) -> Option<Timestamp> {
    let raw = raw.trim();
    let (num, mult) = match raw.chars().last()? {
        'd' => (&raw[..raw.len() - 1], 86_400),
        'h' => (&raw[..raw.len() - 1], 3_600),
        'm' => (&raw[..raw.len() - 1], 60),
        's' => (&raw[..raw.len() - 1], 1),
        _ => (raw, 1),
    };
    let v: i64 = num.parse().ok()?;
    Some(Timestamp::from_secs(v * mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&toks(&[
            "data.csv",
            "--time",
            "8h",
            "--x",
            "-100",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(a.positional, vec!["data.csv"]);
        assert_eq!(a.get("time"), Some("8h"));
        assert_eq!(a.get("x"), Some("-100"));
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let a = Args::parse(&toks(&["--y", "-200.5"])).unwrap();
        assert_eq!(a.get("y"), Some("-200.5"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(Args::parse(&toks(&["--x", "1", "--x", "2"])).is_err());
    }

    #[test]
    fn trailing_switch() {
        let a = Args::parse(&toks(&["--help"])).unwrap();
        assert!(a.has("help"));
    }

    #[test]
    fn flag_followed_by_flag_is_switch() {
        let a = Args::parse(&toks(&["--force", "--out", "x.csv"])).unwrap();
        assert!(a.has("force"));
        assert_eq!(a.get("out"), Some("x.csv"));
    }

    #[test]
    fn require_and_parse() {
        let a = Args::parse(&toks(&["--n", "42"])).unwrap();
        assert_eq!(a.require_parsed::<u32>("n").unwrap(), 42);
        assert!(a.require("missing").is_err());
        assert_eq!(a.get_or("m", 7u32).unwrap(), 7);
        assert!(a.get_or::<u32>("n", 0).unwrap() == 42);
    }

    #[test]
    fn time_suffixes() {
        assert_eq!(parse_time("3600"), Some(Timestamp::from_secs(3_600)));
        assert_eq!(parse_time("8h"), Some(Timestamp::from_hours(8)));
        assert_eq!(parse_time("90m"), Some(Timestamp::from_secs(5_400)));
        assert_eq!(parse_time("2d"), Some(Timestamp::from_days(2)));
        assert_eq!(parse_time("15s"), Some(Timestamp::from_secs(15)));
        assert_eq!(parse_time("abc"), None);
        assert_eq!(parse_time(""), None);
    }

    #[test]
    fn stray_double_dash_rejected() {
        assert!(Args::parse(&toks(&["--"])).is_err());
    }
}
