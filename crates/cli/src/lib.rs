//! The `enviro` command-line tool.
//!
//! One binary exposing the platform's surfaces over CSV datasets and
//! segment stores:
//!
//! ```text
//! enviro simulate --hours 24 --out day.csv          # generate a dataset
//! enviro info day.csv                               # inspect it
//! enviro query day.csv --time 8h --x 0 --y -200     # point query
//! enviro heatmap day.csv --time 8h --out map.ppm    # web UI's heatmap mode
//! enviro route day.csv --start 7h --points "x,y;…"  # app's route summary
//! enviro serve day.csv --workers 4 --batch 64       # concurrent load drive
//! enviro ingest day.csv --dir ./wal --rate 500      # durable write path
//! enviro store ingest day.csv --dir ./store         # durable segment store
//! enviro store export --dir ./store --out back.csv
//! ```
//!
//! Argument parsing is hand-rolled (`--flag value` pairs after a
//! subcommand) to stay inside the approved dependency set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

use std::fmt;

/// A CLI failure: a message and the exit code to report.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message for stderr.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime failure).
    pub code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 2,
        }
    }

    /// A runtime error (exit code 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code: 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Runs the CLI with `args` (without the program name), writing normal
/// output to `out`. Returns the process exit code.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> i32 {
    match commands::dispatch(args, out) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("enviro: {}", e.message);
            e.code
        }
    }
}

/// The top-level usage text.
pub const USAGE: &str = "\
usage: enviro <command> [flags]

commands:
  simulate   generate a community-sensed dataset (CSV)
  info       summarize a dataset
  query      interpolate the pollutant value at a time and position
  heatmap    render the model cover as a PPM image
  route      evaluate a route and print the OSHA summary
  serve      run the concurrent server and drive it with in-process clients
  ingest     replay a dataset through the WAL-backed durable write path
  store      durable segment-store operations (ingest | export | stats)

run `enviro <command> --help` for the command's flags";
