//! End-to-end self-tests for the lint gate.
//!
//! Two directions: the real workspace must pass, and synthetic violations —
//! a layering edge, a panic-count regression, an unhooked invariant checker
//! — must each turn the gate red. The synthetic workspaces are materialized
//! under the target directory and cleaned up afterwards.

// Integration-test harness code; panicking is how it reports failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;
use std::path::{Path, PathBuf};

/// Builds a throwaway mini-workspace under `target/` and hands it to `f`.
fn with_workspace(test_name: &str, files: &[(&str, &str)], f: impl FnOnce(&Path)) {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("xtask-selftest-{}-{test_name}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, contents) in files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create synthetic workspace dir");
        }
        fs::write(&path, contents).expect("write synthetic workspace file");
    }
    f(&root);
    let _ = fs::remove_dir_all(&root);
}

fn manifest(name: &str, deps: &[&str]) -> String {
    let mut out = format!("[package]\nname = \"{name}\"\n\n[dependencies]\n");
    for d in deps {
        out.push_str(&format!("{d} = {{ workspace = true }}\n"));
    }
    out.push_str("\n[lints]\nworkspace = true\n");
    out
}

const EMPTY_BASELINE: &str = "[counts]\n";
const EMPTY_LOCK_ORDER: &str = "[locks]\n";

#[test]
fn the_real_workspace_passes_the_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let outcome = xtask::run_lint(root, false);
    assert!(
        outcome.passed(),
        "the repository fails its own lint gate:\n{}",
        outcome.errors.join("\n")
    );
    // The burn-down this gate rode in on: storage and net library code is
    // panic-free outside tests, and may not regress.
    assert_eq!(outcome.counts.get("enviro-storage"), Some(&0));
    assert_eq!(outcome.counts.get("enviro-net"), Some(&0));
    assert_eq!(outcome.counts.get("xtask"), Some(&0));
}

#[test]
fn synthetic_layering_violation_fails_the_gate() {
    with_workspace(
        "layering",
        &[
            (
                "crates/core/Cargo.toml",
                &manifest("enviro-meter", &["enviro-geo", "enviro-cli"]),
            ),
            ("crates/core/src/lib.rs", "//! Synthetic crate.\n"),
            ("crates/xtask/panic-baseline.toml", EMPTY_BASELINE),
        ],
        |root| {
            let outcome = xtask::run_lint(root, false);
            assert!(!outcome.passed());
            assert!(
                outcome
                    .errors
                    .iter()
                    .any(|e| e.contains("`enviro-meter` -> `enviro-cli`")),
                "missing layering error: {:?}",
                outcome.errors
            );
        },
    );
}

#[test]
fn synthetic_panic_regression_fails_the_gate() {
    with_workspace(
        "ratchet",
        &[
            (
                "crates/geo/Cargo.toml",
                &manifest("enviro-geo", &["enviro-memsize"]),
            ),
            (
                "crates/geo/src/lib.rs",
                "//! Synthetic crate.\npub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
            ),
            // The baseline says geo is clean, so one unwrap is a regression.
            (
                "crates/xtask/panic-baseline.toml",
                "[counts]\nenviro-geo = 0\n",
            ),
        ],
        |root| {
            let outcome = xtask::run_lint(root, false);
            assert!(!outcome.passed());
            assert!(
                outcome.errors.iter().any(|e| e.contains("panic-ratchet")
                    && e.contains("enviro-geo")
                    && e.contains("src/lib.rs:2")),
                "missing ratchet error: {:?}",
                outcome.errors
            );
        },
    );
}

#[test]
fn synthetic_unhooked_invariant_checker_fails_the_gate() {
    with_workspace(
        "invariants",
        &[
            ("crates/geo/Cargo.toml", &manifest("enviro-geo", &["enviro-memsize"])),
            (
                "crates/geo/src/lib.rs",
                "//! Synthetic crate.\npub struct T;\nimpl T {\n    pub fn check_invariants(&self) -> Result<(), String> { Ok(()) }\n}\n",
            ),
            ("crates/xtask/panic-baseline.toml", EMPTY_BASELINE),
        ],
        |root| {
            let outcome = xtask::run_lint(root, false);
            assert!(!outcome.passed());
            assert!(
                outcome.errors.iter().any(|e| e.contains("invariants")
                    && e.contains("never invokes it under debug_assertions")),
                "missing invariant error: {:?}",
                outcome.errors
            );
        },
    );
}

#[test]
fn synthetic_raw_std_sync_import_fails_the_gate() {
    with_workspace(
        "stdsync",
        &[
            (
                "crates/geo/Cargo.toml",
                &manifest("enviro-geo", &["enviro-memsize"]),
            ),
            (
                "crates/geo/src/lib.rs",
                "//! Synthetic crate.\nuse std::sync::Mutex;\npub static M: Mutex<u32> = Mutex::new(0);\n",
            ),
            ("crates/xtask/panic-baseline.toml", EMPTY_BASELINE),
        ],
        |root| {
            let outcome = xtask::run_lint(root, false);
            assert!(!outcome.passed());
            assert!(
                outcome.errors.iter().any(|e| e.contains("std-sync")
                    && e.contains("enviro-geo/src/lib.rs:2")
                    && e.contains("enviro_schedule::sync")),
                "missing std-sync error: {:?}",
                outcome.errors
            );
        },
    );
}

#[test]
fn synthetic_lock_order_cycle_fails_the_gate() {
    with_workspace(
        "lockorder",
        &[
            (
                "crates/geo/Cargo.toml",
                &manifest("enviro-geo", &["enviro-memsize"]),
            ),
            ("crates/geo/src/lib.rs", "//! Synthetic crate.\n"),
            ("crates/xtask/panic-baseline.toml", EMPTY_BASELINE),
            (
                "crates/xtask/lock-order.toml",
                "[locks]\na = \"first\"\nb = \"second\"\n\n\
                 [[order]]\nbefore = \"a\"\nafter = \"b\"\n\n\
                 [[order]]\nbefore = \"b\"\nafter = \"a\"\n",
            ),
        ],
        |root| {
            let outcome = xtask::run_lint(root, false);
            assert!(!outcome.passed());
            assert!(
                outcome
                    .errors
                    .iter()
                    .any(|e| e.contains("lock-order") && e.contains("form a cycle")),
                "missing cycle error: {:?}",
                outcome.errors
            );
        },
    );
}

#[test]
fn ratchet_improvement_warns_until_baseline_updated() {
    with_workspace(
        "improvement",
        &[
            (
                "crates/geo/Cargo.toml",
                &manifest("enviro-geo", &["enviro-memsize"]),
            ),
            (
                "crates/geo/src/lib.rs",
                "//! Synthetic crate.\npub fn f() {}\n",
            ),
            (
                "crates/xtask/panic-baseline.toml",
                "[counts]\nenviro-geo = 4\n",
            ),
            ("crates/xtask/lock-order.toml", EMPTY_LOCK_ORDER),
        ],
        |root| {
            let outcome = xtask::run_lint(root, false);
            assert!(outcome.passed(), "{:?}", outcome.errors);
            assert!(
                outcome.warnings.iter().any(|w| w.contains("improved to 0")),
                "missing improvement warning: {:?}",
                outcome.warnings
            );
            // Locking it in rewrites the baseline and clears the warning.
            let updated = xtask::run_lint(root, true);
            assert!(updated.passed());
            let text =
                fs::read_to_string(root.join(xtask::BASELINE_PATH)).expect("baseline rewritten");
            assert!(text.contains("enviro-geo = 0"), "{text}");
            let clean = xtask::run_lint(root, false);
            assert!(clean.passed());
            assert!(clean.warnings.is_empty(), "{:?}", clean.warnings);
        },
    );
}
