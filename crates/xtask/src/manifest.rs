//! A minimal `Cargo.toml` reader.
//!
//! The linter needs four facts per crate — package name, dependency names,
//! dev-dependency names, and whether `[lints] workspace = true` is set — so
//! this module implements just enough line-oriented TOML to extract them,
//! instead of pulling a TOML parser into the offline build.

/// The subset of a crate manifest the linter inspects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// Keys of `[dependencies]` (and `[dependencies.<key>]` headers).
    pub deps: Vec<String>,
    /// Keys of `[dev-dependencies]` (and `[dev-dependencies.<key>]` headers).
    pub dev_deps: Vec<String>,
    /// `true` when the manifest opts into `[lints] workspace = true`.
    pub workspace_lints: bool,
}

/// Parses the linter-relevant subset out of manifest text.
///
/// Unknown sections and keys are ignored, so manifests may grow freely
/// without breaking the linter.
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = section_header(line) {
            section = name.to_string();
            // `[dependencies.foo]` declares the dependency `foo` directly
            // in the header.
            for (prefix, out) in [
                ("dependencies.", DepKind::Normal),
                ("dev-dependencies.", DepKind::Dev),
            ] {
                if let Some(dep) = section.strip_prefix(prefix) {
                    push_dep(&mut m, out, dep);
                }
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => m.name = value.trim_matches('"').to_string(),
            "dependencies" => push_dep(&mut m, DepKind::Normal, key),
            "dev-dependencies" => push_dep(&mut m, DepKind::Dev, key),
            "lints" if key == "workspace" => m.workspace_lints = value == "true",
            _ => {}
        }
    }
    m
}

#[derive(Clone, Copy)]
enum DepKind {
    Normal,
    Dev,
}

fn push_dep(m: &mut Manifest, kind: DepKind, name: &str) {
    let name = name.trim().trim_matches('"').to_string();
    let list = match kind {
        DepKind::Normal => &mut m.deps,
        DepKind::Dev => &mut m.dev_deps,
    };
    if !list.contains(&name) {
        list.push(name);
    }
}

fn section_header(line: &str) -> Option<&str> {
    let inner = line.strip_prefix('[')?.strip_suffix(']')?;
    Some(inner.trim().trim_matches('"'))
}

/// Drops a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_deps_and_lints() {
        let m = parse(
            r#"
[package]
name = "enviro-net" # the wire crate
version.workspace = true

[dependencies]
enviro-geo = { workspace = true }
bytes = { workspace = true }

[dev-dependencies]
proptest = { workspace = true }

[dev-dependencies.enviro-storage]
workspace = true

[lints]
workspace = true
"#,
        );
        assert_eq!(m.name, "enviro-net");
        assert_eq!(m.deps, vec!["enviro-geo", "bytes"]);
        assert_eq!(m.dev_deps, vec!["proptest", "enviro-storage"]);
        assert!(m.workspace_lints);
    }

    #[test]
    fn missing_lints_table_is_reported() {
        let m = parse("[package]\nname = \"x\"\n");
        assert!(!m.workspace_lints);
        assert!(m.deps.is_empty());
    }

    #[test]
    fn comments_do_not_hide_sections() {
        let m = parse("[dependencies] # heavy\nfoo = \"1\" # pinned\n");
        assert_eq!(m.deps, vec!["foo"]);
    }
}
