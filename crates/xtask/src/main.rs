//! CLI entry point: `cargo run -p xtask -- lint [--update-baseline]`.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-baseline");
            if let Some(unknown) = args[1..].iter().find(|a| *a != "--update-baseline") {
                eprintln!("xtask: unknown argument `{unknown}`");
                return usage();
            }
            lint(update)
        }
        _ => usage(),
    }
}

fn lint(update_baseline: bool) -> ExitCode {
    // The binary always runs from a source checkout, so the workspace root
    // is two levels above this crate's manifest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent);
    let Some(root) = root else {
        eprintln!("xtask: cannot locate the workspace root");
        return ExitCode::FAILURE;
    };
    let outcome = xtask::run_lint(root, update_baseline);
    for w in &outcome.warnings {
        eprintln!("warning: {w}");
    }
    for e in &outcome.errors {
        eprintln!("error: {e}");
    }
    let crates = outcome.counts.len();
    let sites: usize = outcome.counts.values().sum();
    if outcome.passed() {
        println!(
            "xtask lint: OK — {crates} crates, {sites} baselined panic-prone sites, \
             layering + invariant hooks + concurrency discipline clean"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: FAILED with {} error(s)", outcome.errors.len());
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--update-baseline]\n\n\
         Runs the workspace static-analysis gate:\n  \
         * dependency-DAG layering check (+ [lints] workspace adoption)\n  \
         * panic-policy ratchet against crates/xtask/panic-baseline.toml\n  \
         * debug_assertions invariant-hook audit\n  \
         * concurrency discipline: std::sync facade ratchet, `// ordering:`\n    \
         justifications, lock-scope check, lock-order registry\n    \
         (crates/xtask/lock-order.toml)"
    );
    ExitCode::FAILURE
}
