//! The panic-policy ratchet.
//!
//! Counts panic-prone call sites — `.unwrap()`, `.expect(…)`, `panic!`,
//! `todo!`, `unimplemented!` — in non-`#[cfg(test)]` source, per crate, and
//! compares against the checked-in baseline
//! (`crates/xtask/panic-baseline.toml`). Counts may only go **down**: a
//! crate above its baseline fails the lint; a crate below it produces a
//! warning asking for a `--update-baseline` run so the improvement is
//! locked in.

use crate::scan;
use std::collections::BTreeMap;

/// Panic-prone sites found in one crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrateCount {
    /// Total non-test sites across the crate's `src/`.
    pub total: usize,
    /// Per-file `(relative path, line, kind)` detail for reporting.
    pub sites: Vec<(String, usize, &'static str)>,
}

/// Methods counted when invoked as `.name(`.
const METHODS: &[&str] = &["unwrap", "expect"];
/// Macros counted when invoked as `name!`.
const MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Counts panic-prone sites in one file's source. `rel_path` is used to
/// label the recorded sites.
pub fn count_file(rel_path: &str, src: &str) -> CrateCount {
    let masked = scan::strip_cfg_test(scan::mask(src));
    let mut out = CrateCount::default();
    for id in scan::idents(&masked) {
        let counted = if METHODS.contains(&id.text) {
            scan::prev_nonspace(&masked, id.start) == Some(b'.')
                && scan::next_nonspace(&masked, id.end) == Some(b'(')
        } else if MACROS.contains(&id.text) {
            scan::next_nonspace(&masked, id.end) == Some(b'!')
        } else {
            false
        };
        if counted {
            out.total += 1;
            let kind = METHODS
                .iter()
                .chain(MACROS.iter())
                .find(|k| **k == id.text)
                .copied()
                .unwrap_or("?");
            out.sites
                .push((rel_path.to_string(), scan::line_of(&masked, id.start), kind));
        }
    }
    out
}

/// Merges per-file counts into a per-crate total.
pub fn merge(counts: impl IntoIterator<Item = CrateCount>) -> CrateCount {
    let mut out = CrateCount::default();
    for c in counts {
        out.total += c.total;
        out.sites.extend(c.sites);
    }
    out
}

/// Parses the `[counts]` table of a baseline file into `crate -> count`.
pub fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let mut in_counts = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_counts = line == "[counts]";
            continue;
        }
        if !in_counts {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if let Ok(n) = value.trim().parse::<usize>() {
                out.insert(key.trim().trim_matches('"').to_string(), n);
            }
        }
    }
    out
}

/// Renders a baseline file from per-crate counts.
pub fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# Panic-policy baseline: non-test `.unwrap()` / `.expect(` / `panic!` /\n\
         # `todo!` / `unimplemented!` sites per crate, as counted by\n\
         # `cargo run -p xtask -- lint`. The ratchet only lets these numbers go\n\
         # DOWN; after burning sites down, lock the gain in with\n\
         #     cargo run -p xtask -- lint --update-baseline\n\
         # (See DESIGN.md \"Static analysis & code policy\".)\n\n[counts]\n",
    );
    for (name, n) in counts {
        out.push_str(&format!("{name} = {n}\n"));
    }
    out
}

/// Outcome of comparing fresh counts against the baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Hard failures: crates above their baseline.
    pub errors: Vec<String>,
    /// Improvements not yet locked in.
    pub warnings: Vec<String>,
}

/// Compares `counts` against `baseline`. Crates absent from the baseline
/// are held to zero, so new crates start clean.
pub fn compare(
    counts: &BTreeMap<String, CrateCount>,
    baseline: &BTreeMap<String, usize>,
) -> RatchetReport {
    let mut report = RatchetReport::default();
    for (name, count) in counts {
        let allowed = baseline.get(name).copied().unwrap_or(0);
        if count.total > allowed {
            let mut msg = format!(
                "panic-ratchet: `{name}` has {} panic-prone sites, baseline allows {allowed}:",
                count.total
            );
            for (file, line, kind) in &count.sites {
                msg.push_str(&format!("\n    {file}:{line}: {kind}"));
            }
            report.errors.push(msg);
        } else if count.total < allowed {
            report.warnings.push(format!(
                "panic-ratchet: `{name}` improved to {} (baseline {allowed}) — run \
                 `cargo run -p xtask -- lint --update-baseline` to lock it in",
                count.total
            ));
        }
    }
    for name in baseline.keys() {
        if !counts.contains_key(name) {
            report.warnings.push(format!(
                "panic-ratchet: baseline lists `{name}` but the crate no longer exists — \
                 run `cargo run -p xtask -- lint --update-baseline`"
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_all_five_kinds() {
        let src = r#"
fn f(o: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = o.unwrap();
    let b = r.expect("msg");
    if a == 0 { panic!("zero"); }
    if b == 1 { todo!(); }
    if b == 2 { unimplemented!("later"); }
    a + b
}
"#;
        let c = count_file("f.rs", src);
        assert_eq!(c.total, 5);
        let kinds: Vec<_> = c.sites.iter().map(|s| s.2).collect();
        assert_eq!(
            kinds,
            vec!["unwrap", "expect", "panic", "todo", "unimplemented"]
        );
    }

    #[test]
    fn ignores_strings_comments_and_test_modules() {
        let src = r#"
/// Never call `.unwrap()` here; prefer `expect("…")`.
fn f() { let _ = "panic!('no')"; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}
"#;
        assert_eq!(count_file("f.rs", src).total, 0);
    }

    #[test]
    fn ignores_lookalikes() {
        let src = r#"
fn f(o: Option<u32>) -> u32 {
    let a = o.unwrap_or(3);            // not unwrap()
    let b = std::panic::catch_unwind(|| 1).unwrap_or(Ok(2));
    let _ = o.map(Option2::unwrap_fn);
    a
}
"#;
        assert_eq!(count_file("f.rs", src).total, 0);
    }

    #[test]
    fn qualified_macro_counts() {
        assert_eq!(
            count_file("f.rs", "fn f() { core::panic!(\"x\"); }").total,
            1
        );
    }

    #[test]
    fn baseline_roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert("enviro-net".to_string(), 0usize);
        counts.insert("enviro-bench".to_string(), 12usize);
        let parsed = parse_baseline(&render_baseline(&counts));
        assert_eq!(parsed, counts);
    }

    #[test]
    fn ratchet_fails_above_and_warns_below() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "a".to_string(),
            CrateCount {
                total: 3,
                sites: vec![("x.rs".into(), 7, "unwrap")],
            },
        );
        counts.insert("b".to_string(), CrateCount::default());
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), 1usize);
        baseline.insert("b".to_string(), 2usize);
        let r = compare(&counts, &baseline);
        assert_eq!(r.errors.len(), 1);
        assert!(r.errors[0].contains("x.rs:7"), "{:?}", r.errors);
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn unknown_crate_is_held_to_zero() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "newcrate".to_string(),
            CrateCount {
                total: 1,
                sites: vec![("y.rs".into(), 1, "panic")],
            },
        );
        let r = compare(&counts, &BTreeMap::new());
        assert_eq!(r.errors.len(), 1);
    }
}
