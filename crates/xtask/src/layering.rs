//! The dependency-DAG check.
//!
//! The workspace layering is declared here as an explicit allow-list: each
//! crate names the workspace crates it may depend on. Anything not listed —
//! a new crate, a new edge — fails the lint until the table is updated,
//! which makes architectural drift a reviewed decision instead of an
//! accident. Only `enviro-*` edges are checked; vendored shim crates
//! (`rand`, `bytes`, …) are infrastructure, not layers.

use crate::manifest::Manifest;

/// Allowed **normal**-dependency edges, bottom layer first.
///
/// Invariants encoded here (see DESIGN.md "Static analysis & code policy"):
/// * `enviro-memsize`, `enviro-geo`, `enviro-linalg`, and `enviro-schedule`
///   (the concurrency facade everything above may use) are leaves;
/// * `enviro-meter` (core) never depends on `enviro-cli`, `enviro-bench`,
///   or `enviro-net`;
/// * `enviro-net` never depends on `enviro-cli`.
pub const LAYERS: &[(&str, &[&str])] = &[
    ("enviro-schedule", &[]),
    ("enviro-memsize", &[]),
    ("enviro-linalg", &[]),
    ("enviro-geo", &["enviro-memsize"]),
    ("enviro-data", &["enviro-memsize", "enviro-geo"]),
    ("enviro-index", &["enviro-memsize", "enviro-geo"]),
    (
        "enviro-storage",
        &[
            "enviro-memsize",
            "enviro-geo",
            "enviro-data",
            "enviro-schedule",
        ],
    ),
    (
        "enviro-meter",
        &[
            "enviro-memsize",
            "enviro-linalg",
            "enviro-geo",
            "enviro-data",
            "enviro-index",
            "enviro-schedule",
        ],
    ),
    (
        "enviro-net",
        &[
            "enviro-memsize",
            "enviro-geo",
            "enviro-data",
            "enviro-meter",
            "enviro-storage",
            "enviro-schedule",
        ],
    ),
    (
        "enviro-cli",
        &[
            "enviro-geo",
            "enviro-data",
            "enviro-meter",
            "enviro-net",
            "enviro-storage",
            "enviro-schedule",
        ],
    ),
    (
        "enviro-bench",
        &[
            "enviro-memsize",
            "enviro-linalg",
            "enviro-geo",
            "enviro-data",
            "enviro-index",
            "enviro-storage",
            "enviro-meter",
            "enviro-net",
            "enviro-schedule",
        ],
    ),
    ("xtask", &[]),
];

/// Dev-dependency edges that are forbidden even for tests: depending on a
/// *higher* layer from tests creates a build cycle the allow-list above
/// exists to prevent. (Dev-deps on lower layers — e.g. core's tests using
/// `enviro-storage` — are fine and deliberately not restricted.)
const FORBIDDEN_DEV: &[(&str, &[&str])] = &[
    (
        "enviro-memsize",
        &[
            "enviro-geo",
            "enviro-data",
            "enviro-meter",
            "enviro-net",
            "enviro-cli",
            "enviro-bench",
        ],
    ),
    (
        "enviro-linalg",
        &[
            "enviro-geo",
            "enviro-data",
            "enviro-meter",
            "enviro-net",
            "enviro-cli",
            "enviro-bench",
        ],
    ),
    (
        "enviro-geo",
        &[
            "enviro-data",
            "enviro-meter",
            "enviro-net",
            "enviro-cli",
            "enviro-bench",
        ],
    ),
    (
        "enviro-meter",
        &["enviro-net", "enviro-cli", "enviro-bench"],
    ),
    ("enviro-net", &["enviro-cli", "enviro-bench"]),
];

/// Checks every manifest against the layering table, returning one message
/// per violation (empty means the DAG holds).
pub fn check(manifests: &[Manifest]) -> Vec<String> {
    let mut errors = Vec::new();
    for m in manifests {
        let Some(allowed) = LAYERS.iter().find(|(n, _)| *n == m.name).map(|(_, a)| *a) else {
            errors.push(format!(
                "layering: crate `{}` has no entry in xtask::layering::LAYERS — \
                 place it in the DAG before adding it to the workspace",
                m.name
            ));
            continue;
        };
        for dep in m.deps.iter().filter(|d| d.starts_with("enviro-")) {
            if !allowed.contains(&dep.as_str()) {
                errors.push(format!(
                    "layering: `{}` -> `{}` violates the dependency DAG \
                     (allowed: {:?})",
                    m.name, dep, allowed
                ));
            }
        }
        if let Some(forbidden) = FORBIDDEN_DEV
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, f)| *f)
        {
            for dep in &m.dev_deps {
                if forbidden.contains(&dep.as_str()) {
                    errors.push(format!(
                        "layering: dev-dependency `{}` -> `{}` reaches a higher layer",
                        m.name, dep
                    ));
                }
            }
        }
        if !m.workspace_lints {
            errors.push(format!(
                "lints: crate `{}` does not set `[lints] workspace = true`",
                m.name
            ));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    fn mf(name: &str, deps: &[&str], dev: &[&str]) -> Manifest {
        Manifest {
            name: name.to_string(),
            deps: deps.iter().map(|s| s.to_string()).collect(),
            dev_deps: dev.iter().map(|s| s.to_string()).collect(),
            workspace_lints: true,
        }
    }

    #[test]
    fn clean_workspace_passes() {
        let ms = vec![
            mf("enviro-geo", &["enviro-memsize"], &[]),
            mf(
                "enviro-net",
                &["enviro-geo", "enviro-meter"],
                &["enviro-storage"],
            ),
        ];
        assert_eq!(check(&ms), Vec::<String>::new());
    }

    #[test]
    fn core_depending_on_net_is_a_violation() {
        let ms = vec![mf("enviro-meter", &["enviro-net"], &[])];
        let errs = check(&ms);
        assert_eq!(errs.len(), 1);
        assert!(
            errs[0].contains("`enviro-meter` -> `enviro-net`"),
            "{errs:?}"
        );
    }

    #[test]
    fn leaf_gaining_a_dep_is_a_violation() {
        let ms = vec![mf("enviro-linalg", &["enviro-geo"], &[])];
        assert_eq!(check(&ms).len(), 1);
    }

    #[test]
    fn upward_dev_dep_is_a_violation() {
        let ms = vec![mf("enviro-meter", &[], &["enviro-cli"])];
        let errs = check(&ms);
        assert!(errs[0].contains("dev-dependency"), "{errs:?}");
    }

    #[test]
    fn unknown_crate_is_reported() {
        let ms = vec![mf("enviro-newthing", &[], &[])];
        assert!(check(&ms)[0].contains("no entry"));
    }

    #[test]
    fn missing_lints_optin_is_reported() {
        let mut m = mf("enviro-geo", &["enviro-memsize"], &[]);
        m.workspace_lints = false;
        assert!(check(&[m])[0].contains("workspace = true"));
    }

    #[test]
    fn real_manifest_text_roundtrips_through_check() {
        let m = manifest::parse(
            "[package]\nname = \"enviro-cli\"\n[dependencies]\nenviro-meter = {}\n[lints]\nworkspace = true\n",
        );
        assert_eq!(check(&[m]), Vec::<String>::new());
    }
}
