//! Concurrency-discipline lints: the static half of the soundness gate.
//!
//! Four analyses over the [`crate::scan`] lexical toolkit (masked,
//! test-stripped source):
//!
//! 1. **std-sync ratchet** — outside `enviro-schedule` itself, non-test
//!    code must go through the `enviro_schedule::sync` facade; a raw
//!    `std::sync` path bypasses both the deterministic model scheduler and
//!    the debug lock-order tracker.
//! 2. **Atomic-ordering justification** — every
//!    `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` site must carry a
//!    `// ordering:` comment (same line or the contiguous comment block
//!    directly above) saying what the chosen ordering pairs with.
//! 3. **Lock-scope** — a lock guard bound with `let` must not live across
//!    file I/O or an Ad-KMN rebuild (the forbidden-token list below). A
//!    deliberate exception carries `// lock-scope: allow(reason)` at the
//!    offending call.
//! 4. **Lock-order registry** — `crates/xtask/lock-order.toml` declares the
//!    workspace's lock classes and the acquisition edges allowed between
//!    them; the declared graph must be acyclic and closed over declared
//!    names. (Actual nesting is enforced at runtime by the facade's
//!    debug-build order tracker; the registry is the reviewed contract.)

use crate::scan;

/// Crates whose sources may use `std::sync` directly: the facade itself
/// (it *implements* the modeled primitives) and this linter.
const STD_SYNC_EXEMPT: &[&str] = &["enviro-schedule", "xtask"];

/// Atomic-ordering variants that require a justification comment.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Calls a held lock guard must not reach: file I/O (`fs::`, `File::`,
/// `OpenOptions`, `sync_all`) and model rebuilds (`CoverBuilder`), plus the
/// WAL's fsync-backed mutations (`append_batch`, `seal_windows_before`).
const FORBIDDEN_UNDER_LOCK: &[&str] = &[
    "OpenOptions",
    "sync_all",
    "CoverBuilder",
    "append_batch",
    "seal_windows_before",
];

/// One source file as the lint pass sees it.
#[derive(Debug)]
pub struct FileSource {
    /// Path relative to the crate directory.
    pub rel: String,
    /// The file verbatim (comments intact — justifications live here).
    pub raw: String,
    /// Masked + `#[cfg(test)]`-stripped text (what the token scans use).
    pub stripped: String,
}

/// Runs lints 1–3 over one crate's sources.
pub fn check_crate(crate_name: &str, files: &[FileSource]) -> Vec<String> {
    let mut errors = Vec::new();
    for f in files {
        if !STD_SYNC_EXEMPT.contains(&crate_name) {
            errors.extend(std_sync_sites(crate_name, f));
        }
        errors.extend(unjustified_orderings(crate_name, f));
        errors.extend(lock_scope_violations(crate_name, f));
    }
    errors
}

/// Lint 1: `std::sync` paths in non-test code.
fn std_sync_sites(crate_name: &str, f: &FileSource) -> Vec<String> {
    path_pairs(&f.stripped, "std", "sync")
        .into_iter()
        .map(|at| {
            format!(
                "std-sync: {crate_name}/{}:{}: raw `std::sync` bypasses the \
                 `enviro_schedule::sync` facade (and with it the model \
                 scheduler and the lock-order tracker); import from the \
                 facade instead",
                f.rel,
                scan::line_of(&f.stripped, at)
            )
        })
        .collect()
}

/// Byte offsets of every `first :: second` path in masked source.
fn path_pairs(stripped: &str, first: &str, second: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let ids: Vec<scan::Ident<'_>> = scan::idents(stripped).collect();
    for pair in ids.windows(2) {
        if pair[0].text == first
            && pair[1].text == second
            && between_is_path_sep(stripped, pair[0].end, pair[1].start)
        {
            out.push(pair[0].start);
        }
    }
    out
}

/// `true` when `stripped[a..b]` is `::` plus whitespace only.
fn between_is_path_sep(stripped: &str, a: usize, b: usize) -> bool {
    let gap: String = stripped[a..b].split_whitespace().collect();
    gap == "::"
}

/// Lint 2: `Ordering::X` sites without a `// ordering:` justification.
fn unjustified_orderings(crate_name: &str, f: &FileSource) -> Vec<String> {
    let mut errors = Vec::new();
    let ids: Vec<scan::Ident<'_>> = scan::idents(&f.stripped).collect();
    for pair in ids.windows(2) {
        if pair[0].text != "Ordering"
            || !ORDERINGS.contains(&pair[1].text)
            || !between_is_path_sep(&f.stripped, pair[0].end, pair[1].start)
        {
            continue;
        }
        let line = scan::line_of(&f.stripped, pair[0].start);
        if !has_marker(&f.raw, line, "// ordering:") {
            errors.push(format!(
                "atomic-ordering: {crate_name}/{}:{line}: `Ordering::{}` \
                 without a `// ordering:` justification (same line or the \
                 comment block directly above) saying what it pairs with",
                f.rel, pair[1].text
            ));
        }
    }
    errors
}

/// `true` when raw line `line` (1-based) carries `marker` on itself or in
/// the contiguous `//` comment block immediately above it.
fn has_marker(raw: &str, line: usize, marker: &str) -> bool {
    let lines: Vec<&str> = raw.lines().collect();
    if line == 0 || line > lines.len() {
        return false;
    }
    if lines[line - 1].contains(marker) {
        return true;
    }
    for above in lines[..line - 1].iter().rev() {
        let t = above.trim_start();
        if t.starts_with("//") {
            if t.starts_with(marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Lint 3: guard bindings whose scope reaches a forbidden token.
fn lock_scope_violations(crate_name: &str, f: &FileSource) -> Vec<String> {
    let mut errors = Vec::new();
    for binding in guard_bindings(&f.stripped) {
        let region = guard_region(&f.stripped, &binding);
        for (offset, token) in forbidden_in(&f.stripped, &region) {
            let line = scan::line_of(&f.stripped, offset);
            if has_marker(&f.raw, line, "// lock-scope: allow") {
                continue;
            }
            errors.push(format!(
                "lock-scope: {crate_name}/{}:{line}: `{token}` reached while \
                 guard `{}` (bound at line {}) is held — I/O and model \
                 rebuilds must not run under a lock; restructure, or mark a \
                 deliberate site with `// lock-scope: allow(reason)`",
                f.rel,
                binding.name,
                scan::line_of(&f.stripped, binding.stmt_end)
            ));
        }
    }
    errors
}

/// A `let <name> = ….lock()/.read()/.write();` binding in masked source.
#[derive(Debug)]
struct GuardBinding {
    name: String,
    /// Offset just past the binding statement's `;`.
    stmt_end: usize,
}

/// Offset of the first non-whitespace byte at or after `i`.
fn next_offset_nonspace(stripped: &str, i: usize) -> Option<usize> {
    stripped.as_bytes()[i..]
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .map(|p| i + p)
}

fn guard_bindings(stripped: &str) -> Vec<GuardBinding> {
    let bytes = stripped.as_bytes();
    let mut out = Vec::new();
    let ids: Vec<scan::Ident<'_>> = scan::idents(stripped).collect();
    for (k, id) in ids.iter().enumerate() {
        if !matches!(id.text, "lock" | "read" | "write") {
            continue;
        }
        // Method call position: `.name()` with an empty argument list.
        if scan::prev_nonspace(stripped, id.start) != Some(b'.') {
            continue;
        }
        let Some(open) = next_offset_nonspace(stripped, id.end) else {
            continue;
        };
        if bytes[open] != b'(' {
            continue;
        }
        let Some(close) = next_offset_nonspace(stripped, open + 1) else {
            continue;
        };
        if bytes[close] != b')' {
            continue; // has arguments: io::Read/Write, not a lock
        }
        // The enclosing statement must be a `let` binding.
        let stmt_start = stripped[..id.start]
            .rfind([';', '{', '}'])
            .map_or(0, |p| p + 1);
        let mut stmt_ids = ids[..k]
            .iter()
            .skip_while(|s| s.start < stmt_start)
            .peekable();
        if stmt_ids.peek().is_none_or(|s| s.text != "let") {
            continue;
        }
        let name = stmt_ids
            .by_ref()
            .find(|s| s.text != "let" && s.text != "mut")
            .map(|s| s.text.to_string());
        let Some(name) = name else { continue };
        let stmt_end = stripped[id.end..]
            .find(';')
            .map_or(stripped.len(), |p| id.end + p + 1);
        out.push(GuardBinding { name, stmt_end });
    }
    out
}

/// The byte range in which `binding`'s guard is live: from the end of its
/// statement to the close of the enclosing block, or to an explicit
/// `drop(<name>)`, whichever comes first.
fn guard_region(stripped: &str, binding: &GuardBinding) -> std::ops::Range<usize> {
    let bytes = stripped.as_bytes();
    let mut depth = 0usize;
    let mut end = stripped.len();
    let mut i = binding.stmt_end;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    end = i;
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    let explicit_drop = format!("drop({})", binding.name);
    let in_region = &stripped[binding.stmt_end..end];
    if let Some(p) = in_region
        .find(&explicit_drop)
        .or_else(|| in_region.find(&format!("drop ({})", binding.name)))
    {
        end = binding.stmt_end + p;
    }
    binding.stmt_end..end
}

/// Forbidden tokens inside `region`: the [`FORBIDDEN_UNDER_LOCK`]
/// identifiers plus `fs::` / `File::` path heads.
fn forbidden_in(stripped: &str, region: &std::ops::Range<usize>) -> Vec<(usize, String)> {
    let slice = &stripped[region.clone()];
    let mut out = Vec::new();
    let ids: Vec<scan::Ident<'_>> = scan::idents(slice).collect();
    for (k, id) in ids.iter().enumerate() {
        let hit = if FORBIDDEN_UNDER_LOCK.contains(&id.text) {
            Some(id.text.to_string())
        } else if matches!(id.text, "fs" | "File")
            && ids
                .get(k + 1)
                .is_some_and(|next| between_is_path_sep(slice, id.end, next.start))
        {
            Some(format!("{}::", id.text))
        } else {
            None
        };
        if let Some(token) = hit {
            out.push((region.start + id.start, token));
        }
    }
    out
}

/// Lint 4: parses and validates the declared lock-order registry.
///
/// The format is a deliberately small TOML subset:
/// `[locks]` maps class names to where the lock lives; each `[[order]]`
/// table declares one allowed `before`/`after` acquisition edge.
pub fn check_lock_order(toml: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut locks: Vec<String> = Vec::new();
    let mut edges: Vec<(String, String)> = Vec::new();
    let mut section = String::new();
    let mut pending: Option<(Option<String>, Option<String>, usize)> = None;
    for (ln, raw_line) in toml.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_edge(&mut pending, &mut edges, &mut errors);
            section = line.trim_matches(['[', ']']).to_string();
            if section == "order" {
                pending = Some((None, None, ln + 1));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(format!(
                "lock-order.toml:{}: expected `key = value`",
                ln + 1
            ));
            continue;
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"').to_string();
        match (section.as_str(), key) {
            ("locks", name) => locks.push(name.to_string()),
            ("order", "before") => {
                if let Some(p) = pending.as_mut() {
                    p.0 = Some(value);
                }
            }
            ("order", "after") => {
                if let Some(p) = pending.as_mut() {
                    p.1 = Some(value);
                }
            }
            _ => errors.push(format!(
                "lock-order.toml:{}: unexpected `{key}` in section `[{section}]`",
                ln + 1
            )),
        }
    }
    flush_edge(&mut pending, &mut edges, &mut errors);
    for (before, after) in &edges {
        for name in [before, after] {
            if !locks.contains(name) {
                errors.push(format!(
                    "lock-order: edge references `{name}`, which is not \
                     declared under [locks]"
                ));
            }
        }
    }
    if let Some(cycle) = find_cycle(&locks, &edges) {
        errors.push(format!(
            "lock-order: declared edges form a cycle: {} — a consistent \
             global order is impossible; remove or reverse one edge",
            cycle.join(" -> ")
        ));
    }
    errors
}

fn flush_edge(
    pending: &mut Option<(Option<String>, Option<String>, usize)>,
    edges: &mut Vec<(String, String)>,
    errors: &mut Vec<String>,
) {
    if let Some((before, after, ln)) = pending.take() {
        match (before, after) {
            (Some(b), Some(a)) => edges.push((b, a)),
            _ => errors.push(format!(
                "lock-order.toml:{ln}: [[order]] needs both `before` and `after`"
            )),
        }
    }
}

/// DFS cycle detection over the declared edge list; returns one witness
/// cycle as a node path.
fn find_cycle(locks: &[String], edges: &[(String, String)]) -> Option<Vec<String>> {
    fn visit(
        node: &str,
        edges: &[(String, String)],
        path: &mut Vec<String>,
        done: &mut Vec<String>,
    ) -> bool {
        if path.iter().any(|p| p == node) {
            path.push(node.to_string());
            return true;
        }
        if done.iter().any(|d| d == node) {
            return false;
        }
        path.push(node.to_string());
        for (b, a) in edges {
            if b == node && visit(a, edges, path, done) {
                return true;
            }
        }
        path.pop();
        done.push(node.to_string());
        false
    }
    let mut done = Vec::new();
    for start in locks {
        let mut path = Vec::new();
        if visit(start, edges, &mut path, &mut done) {
            // Trim the lead-in so the report starts at the cycle entry.
            let last = path.last().cloned().unwrap_or_default();
            let from = path.iter().position(|p| *p == last).unwrap_or(0);
            return Some(path[from..].to_vec());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;

    fn file(raw: &str) -> FileSource {
        FileSource {
            rel: "src/lib.rs".into(),
            raw: raw.to_string(),
            stripped: scan::strip_cfg_test(scan::mask(raw)),
        }
    }

    // ---- std-sync ratchet ----

    #[test]
    fn raw_std_sync_import_is_flagged() {
        let f = file("use std::sync::Mutex;\nfn f() {}\n");
        let errs = check_crate("enviro-net", &[f]);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("std-sync"), "{errs:?}");
    }

    #[test]
    fn facade_import_and_test_code_pass() {
        let f = file(
            "use enviro_schedule::sync::Mutex;\n\
             #[cfg(test)]\nmod tests { use std::sync::Arc; }\n",
        );
        assert_eq!(check_crate("enviro-net", &[f]), Vec::<String>::new());
    }

    #[test]
    fn the_facade_crate_itself_is_exempt() {
        let f = file("pub use std::sync::Arc;\n");
        assert_eq!(check_crate("enviro-schedule", &[f]), Vec::<String>::new());
    }

    #[test]
    fn std_sync_inside_a_string_is_not_flagged() {
        let f = file("fn f() -> &'static str { \"std::sync\" }\n");
        assert_eq!(check_crate("enviro-net", &[f]), Vec::<String>::new());
    }

    // ---- atomic-ordering justification ----

    #[test]
    fn bare_ordering_site_is_flagged() {
        let f = file("fn f(a: &A) { a.x.store(1, Ordering::Release); }\n");
        let errs = check_crate("enviro-net", &[f]);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("Ordering::Release"), "{errs:?}");
    }

    #[test]
    fn same_line_and_block_justifications_pass() {
        let f = file(
            "fn f(a: &A) {\n\
             \x20   a.x.store(1, Ordering::Release); // ordering: pairs with load\n\
             \x20   // A longer story,\n\
             \x20   // ordering: Acquire pairs with the store above.\n\
             \x20   a.x.load(Ordering::Acquire);\n\
             }\n",
        );
        assert_eq!(check_crate("enviro-net", &[f]), Vec::<String>::new());
    }

    #[test]
    fn blank_line_breaks_the_justifying_block() {
        let f = file(
            "fn f(a: &A) {\n\
             \x20   // ordering: too far away\n\n\
             \x20   a.x.load(Ordering::SeqCst);\n\
             }\n",
        );
        assert_eq!(check_crate("enviro-net", &[f]).len(), 1);
    }

    #[test]
    fn cmp_ordering_variants_are_ignored() {
        let f = file("fn f(a: i32) -> Ordering { Ordering::Less }\n");
        assert_eq!(check_crate("enviro-net", &[f]), Vec::<String>::new());
    }

    // ---- lock-scope ----

    #[test]
    fn io_under_a_guard_is_flagged() {
        let f = file(
            "fn f(s: &S) {\n\
             \x20   let mut inner = s.inner.lock();\n\
             \x20   inner.wal.append_batch(&t);\n\
             }\n",
        );
        let errs = check_crate("enviro-net", &[f]);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("append_batch"), "{errs:?}");
        assert!(errs[0].contains("guard `inner`"), "{errs:?}");
    }

    #[test]
    fn allow_comment_permits_a_deliberate_site() {
        let f = file(
            "fn f(s: &S) {\n\
             \x20   let mut inner = s.inner.lock();\n\
             \x20   // lock-scope: allow(durability) — fsync is the ack.\n\
             \x20   inner.wal.append_batch(&t);\n\
             }\n",
        );
        assert_eq!(check_crate("enviro-net", &[f]), Vec::<String>::new());
    }

    #[test]
    fn guard_scope_ends_at_block_close_and_drop() {
        let f = file(
            "fn f(s: &S) {\n\
             \x20   { let inner = s.inner.lock(); inner.touch(); }\n\
             \x20   std::fs::write(\"x\", b\"y\");\n\
             \x20   let g = s.inner.lock();\n\
             \x20   drop(g);\n\
             \x20   CoverBuilder::new(cfg).build(&w);\n\
             }\n",
        );
        assert_eq!(check_crate("enviro-net", &[f]), Vec::<String>::new());
    }

    #[test]
    fn rebuild_under_guard_is_flagged() {
        let f = file(
            "fn f(s: &S) {\n\
             \x20   let g = s.state.write();\n\
             \x20   let c = CoverBuilder::new(cfg).build(&w);\n\
             }\n",
        );
        let errs = check_crate("enviro-meter", &[f]);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("CoverBuilder"), "{errs:?}");
    }

    #[test]
    fn reads_with_arguments_are_not_guards() {
        let f = file(
            "fn f(file: &mut F, buf: &mut [u8]) {\n\
             \x20   let n = file.read(buf);\n\
             \x20   std::fs::write(\"x\", b\"y\");\n\
             }\n",
        );
        assert_eq!(check_crate("enviro-storage", &[f]), Vec::<String>::new());
    }

    // ---- lock-order registry ----

    #[test]
    fn acyclic_registry_passes() {
        let toml = "[locks]\n\
                    a = \"crates/x: A\"\n\
                    b = \"crates/x: B\"\n\
                    [[order]]\n\
                    before = \"a\"\n\
                    after = \"b\"\n";
        assert_eq!(check_lock_order(toml), Vec::<String>::new());
    }

    #[test]
    fn cyclic_registry_is_rejected() {
        let toml = "[locks]\n\
                    a = \"A\"\n\
                    b = \"B\"\n\
                    [[order]]\n\
                    before = \"a\"\n\
                    after = \"b\"\n\
                    [[order]]\n\
                    before = \"b\"\n\
                    after = \"a\"\n";
        let errs = check_lock_order(toml);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("cycle"), "{errs:?}");
    }

    #[test]
    fn undeclared_lock_in_an_edge_is_rejected() {
        let toml = "[locks]\na = \"A\"\n[[order]]\nbefore = \"a\"\nafter = \"ghost\"\n";
        let errs = check_lock_order(toml);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("ghost"), "{errs:?}");
    }

    #[test]
    fn incomplete_edge_is_rejected() {
        let toml = "[locks]\na = \"A\"\n[[order]]\nbefore = \"a\"\n";
        assert!(
            check_lock_order(toml)[0].contains("both"),
            "needs both ends"
        );
    }
}
