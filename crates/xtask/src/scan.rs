//! Lexical preprocessing shared by the panic ratchet and the invariant
//! audit.
//!
//! Full Rust parsing is overkill (and unavailable offline), but naive
//! substring counting would flag `panic!` inside doc comments and string
//! literals. The middle road: [`mask`] blanks out comments and literal
//! contents while preserving byte offsets and newlines, and
//! [`strip_cfg_test`] additionally blanks items annotated `#[cfg(test)]`.
//! Downstream analyses then work on the masked text with simple token
//! scans.

/// Replaces comments, string/char-literal contents, and literal delimiters
/// with spaces. Newlines survive so byte offsets and line numbers stay
/// meaningful. Handles line and (nested) block comments, plain and raw
/// (byte) strings, char literals, and lifetimes.
pub fn mask(src: &str) -> String {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < n {
        match bytes[i] {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < n {
                    if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => i = mask_string(bytes, &mut out, i),
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                if let Some(next) = raw_or_byte_string(bytes, i) {
                    i = next_masked(bytes, &mut out, i, next);
                } else {
                    i += 1;
                }
            }
            b'\'' => i = mask_char_or_lifetime(bytes, &mut out, i),
            _ => i += 1,
        }
    }
    // The scan above never splits multi-byte UTF-8 sequences: masking only
    // rewrites regions delimited by ASCII bytes, and any multi-byte
    // character inside such a region is replaced wholesale.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// If `bytes[i..]` starts a raw string (`r"`, `r#"`, `br#"`, …) or byte
/// string (`b"`), returns the exclusive end offset of the whole literal.
fn raw_or_byte_string(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= n {
            return None;
        }
    }
    if bytes[j] == b'"' {
        // b"..." — an escaped (non-raw) byte string.
        return Some(end_of_escaped_string(bytes, j));
    }
    if bytes[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < n && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || bytes[j] != b'"' {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < n {
        if bytes[j] == b'"'
            && bytes[j + 1..].len() >= hashes
            && bytes[j + 1..j + 1 + hashes].iter().all(|&b| b == b'#')
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(n)
}

/// Exclusive end of an escaped string literal whose opening quote is at
/// `open`.
fn end_of_escaped_string(bytes: &[u8], open: usize) -> usize {
    let n = bytes.len();
    let mut j = open + 1;
    while j < n {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

fn mask_string(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    next_masked(bytes, out, i, end_of_escaped_string(bytes, i))
}

/// Blanks `out[i..end]` (keeping newlines) and returns `end`.
fn next_masked(bytes: &[u8], out: &mut [u8], i: usize, end: usize) -> usize {
    for (j, b) in bytes.iter().enumerate().take(end.min(bytes.len())).skip(i) {
        if *b != b'\n' {
            out[j] = b' ';
        }
    }
    end
}

/// Distinguishes `'a'` / `'\n'` / `'"'` (masked) from `'static` lifetimes
/// (kept). A char literal holds exactly one (possibly escaped, possibly
/// multi-byte) character before its closing quote; anything else after a
/// lone `'` is a lifetime or loop label.
fn mask_char_or_lifetime(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    let n = bytes.len();
    if i + 1 >= n || bytes[i + 1] == b'\'' {
        return i + 1;
    }
    if bytes[i + 1] == b'\\' {
        // Escaped char literal: find the closing quote.
        let mut j = i + 2;
        while j < n && bytes[j] != b'\'' {
            j += if bytes[j] == b'\\' { 2 } else { 1 };
        }
        return next_masked(bytes, out, i, (j + 1).min(n));
    }
    // UTF-8 length of the content character from its lead byte.
    let len = match bytes[i + 1] {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    };
    let close = i + 1 + len;
    if close < n && bytes[close] == b'\'' {
        return next_masked(bytes, out, i, close + 1);
    }
    // A lifetime (or `'` in macro position): leave it.
    i + 1
}

/// Blanks every item guarded by a `#[cfg(test)]`-style attribute in
/// *masked* source: the attribute itself, any stacked attributes after it,
/// and the following item up to its closing `}` (or `;` for bodiless
/// items).
pub fn strip_cfg_test(masked: impl AsRef<str>) -> String {
    let masked = masked.as_ref();
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < n {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let Some(attr_end) = attribute_end(bytes, i) else {
            i += 1;
            continue;
        };
        let attr: String = masked[i..attr_end]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        if !(attr.contains("cfg(test)") || attr.contains("cfg(all(test")) {
            i = attr_end;
            continue;
        }
        // Blank the attribute, any stacked attributes, and the item.
        let mut j = attr_end;
        loop {
            while j < n && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < n && bytes[j] == b'#' {
                match attribute_end(bytes, j) {
                    Some(e) => j = e,
                    None => break,
                }
            } else {
                break;
            }
        }
        while j < n && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        if j < n && bytes[j] == b'{' {
            let mut depth = 0usize;
            while j < n {
                match bytes[j] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        } else if j < n {
            j += 1; // past the `;`
        }
        for (k, b) in bytes.iter().enumerate().take(j).skip(i) {
            if *b != b'\n' {
                out[k] = b' ';
            }
        }
        i = j;
    }
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Exclusive end of the `#[...]` attribute starting at `i`, bracket-matched.
fn attribute_end(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    let mut j = i + 1;
    if j < n && bytes[j] == b'!' {
        j += 1;
    }
    if j >= n || bytes[j] != b'[' {
        return None;
    }
    let mut depth = 0usize;
    while j < n {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// An identifier token in masked source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ident<'a> {
    /// The identifier text.
    pub text: &'a str,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Iterates identifier tokens (`[A-Za-z_][A-Za-z0-9_]*`) in masked source.
pub fn idents(masked: &str) -> impl Iterator<Item = Ident<'_>> {
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let mut i = 0;
    std::iter::from_fn(move || {
        while i < n {
            let b = bytes[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                return Some(Ident {
                    text: &masked[start..i],
                    start,
                    end: i,
                });
            }
            // Skip over multi-byte characters without splitting them.
            i += 1;
            while i < n && bytes[i] & 0xC0 == 0x80 {
                i += 1;
            }
        }
        None
    })
}

/// First non-whitespace byte at or after `i`.
pub fn next_nonspace(masked: &str, i: usize) -> Option<u8> {
    masked.as_bytes()[i..]
        .iter()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// Last non-whitespace byte strictly before `i`.
pub fn prev_nonspace(masked: &str, i: usize) -> Option<u8> {
    masked.as_bytes()[..i]
        .iter()
        .copied()
        .rev()
        .find(|b| !b.is_ascii_whitespace())
}

/// 1-based line number of byte offset `at`.
pub fn line_of(text: &str, at: usize) -> usize {
    text.as_bytes()[..at.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"panic!\"; // unwrap()\n/* expect( */ real();";
        let m = mask(src);
        assert!(!m.contains("panic"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("expect"));
        assert!(m.contains("real()"));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let m = mask("let a = r#\"unwrap()\"#; let b = b\"panic!\"; go();");
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("panic"));
        assert!(m.contains("go()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'p'; let d = '\\n'; }");
        assert!(m.contains("'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'p'"));
    }

    #[test]
    fn punctuation_char_literals_do_not_derail_string_state() {
        // A `'"'` misread as a lifetime would leave its quote live and
        // invert every string region after it.
        let m = mask("let q = s.trim_matches('\"'); let h = s.split('#'); \"unwrap()\"; live();");
        assert!(!m.contains("unwrap"), "{m}");
        assert!(m.contains("live()"));
        let m2 = mask("let c = 'µ'; after('x');");
        assert!(m2.contains("after"));
        assert!(!m2.contains("µ"));
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* outer /* unwrap() */ still */ after");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("after"));
    }

    #[test]
    fn strips_test_modules_and_stacked_attributes() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { b.unwrap(); } }\nfn live2() {}";
        let s = strip_cfg_test(mask(src));
        assert!(s.contains("live"));
        assert!(s.contains("live2"));
        assert_eq!(s.matches("unwrap").count(), 1);
    }

    #[test]
    fn strips_bodiless_cfg_test_items() {
        let s = strip_cfg_test(mask("#[cfg(test)]\nuse helper::x;\nfn keep() {}"));
        assert!(!s.contains("helper"));
        assert!(s.contains("keep"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let s = strip_cfg_test(mask("#[cfg(not(test))]\nfn live() { x.unwrap(); }"));
        assert!(s.contains("unwrap"));
    }

    #[test]
    fn ident_iteration_reports_offsets() {
        let ids: Vec<_> = idents("a.unwrap() + µ_b")
            .map(|i| i.text.to_string())
            .collect();
        assert_eq!(ids, vec!["a", "unwrap", "_b"]);
    }

    #[test]
    fn line_numbers() {
        assert_eq!(line_of("a\nb\nc", 0), 1);
        assert_eq!(line_of("a\nb\nc", 4), 3);
    }
}
