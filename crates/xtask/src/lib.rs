//! Workspace static-analysis gate for EnviroMeter.
//!
//! `cargo run -p xtask -- lint` runs four analyses over `crates/*`:
//!
//! 1. **Layering** ([`layering`]) — each crate's `Cargo.toml` is checked
//!    against the allowed dependency DAG, and each crate must opt into
//!    `[lints] workspace = true`.
//! 2. **Panic-policy ratchet** ([`ratchet`]) — panic-prone sites in
//!    non-test code are counted per crate and may only decrease relative to
//!    `crates/xtask/panic-baseline.toml`.
//! 3. **Invariant-hook audit** ([`invariants`]) — every
//!    `check_invariants()` definition must be invoked under
//!    `debug_assertions` from its mutation paths.
//! 4. **Concurrency discipline** ([`concurrency`]) — raw `std::sync` use
//!    outside the `enviro_schedule` facade, unjustified atomic orderings,
//!    lock guards held across I/O or model rebuilds, and the declared
//!    lock-order registry (`crates/xtask/lock-order.toml`).
//!
//! The tool is std-only by design: it must run in the offline build
//! environment and must never depend on the crates it polices.

#![forbid(unsafe_code)]

pub mod concurrency;
pub mod invariants;
pub mod layering;
pub mod manifest;
pub mod ratchet;
pub mod scan;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Relative location of the ratchet baseline within the workspace.
pub const BASELINE_PATH: &str = "crates/xtask/panic-baseline.toml";

/// Relative location of the declared lock-order registry.
pub const LOCK_ORDER_PATH: &str = "crates/xtask/lock-order.toml";

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Hard failures; non-empty means the gate is red.
    pub errors: Vec<String>,
    /// Non-fatal advice (e.g. unlocked ratchet improvements).
    pub warnings: Vec<String>,
    /// Fresh per-crate panic-site counts (what `--update-baseline` writes).
    pub counts: BTreeMap<String, usize>,
}

impl LintOutcome {
    /// `true` when the gate is green.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Runs all three analyses over the workspace at `root`.
///
/// With `update_baseline`, a below-baseline ratchet result rewrites
/// [`BASELINE_PATH`] instead of warning. I/O problems (unreadable crate
/// dirs, missing baseline) are reported as lint errors rather than aborting
/// the run, so one bad file never hides the rest of the report.
pub fn run_lint(root: &Path, update_baseline: bool) -> LintOutcome {
    let mut out = LintOutcome::default();

    let crates = match discover_crates(root) {
        Ok(c) => c,
        Err(e) => {
            out.errors
                .push(format!("cannot list {}/crates: {e}", root.display()));
            return out;
        }
    };

    // 1. Layering.
    let manifests: Vec<manifest::Manifest> = crates.iter().map(|c| c.manifest.clone()).collect();
    out.errors.extend(layering::check(&manifests));

    // 2 + 3. Source-level analyses share one pass over each crate's files.
    let mut counts: BTreeMap<String, ratchet::CrateCount> = BTreeMap::new();
    for c in &crates {
        let files = match read_sources(&c.dir) {
            Ok(f) => f,
            Err(e) => {
                out.errors
                    .push(format!("cannot read sources of `{}`: {e}", c.manifest.name));
                continue;
            }
        };
        let mut per_file = Vec::new();
        let mut audited = Vec::new();
        let mut sources = Vec::new();
        for (rel, src) in &files {
            per_file.push(ratchet::count_file(rel, src));
            let stripped = scan::strip_cfg_test(scan::mask(src));
            audited.push((rel.clone(), stripped.clone()));
            sources.push(concurrency::FileSource {
                rel: rel.clone(),
                raw: src.clone(),
                stripped,
            });
        }
        counts.insert(c.manifest.name.clone(), ratchet::merge(per_file));
        out.errors
            .extend(invariants::audit(&c.manifest.name, &audited));
        out.errors
            .extend(concurrency::check_crate(&c.manifest.name, &sources));
    }

    // 4b. The declared lock-order registry.
    let lock_order_file = root.join(LOCK_ORDER_PATH);
    match fs::read_to_string(&lock_order_file) {
        Ok(text) => out.errors.extend(concurrency::check_lock_order(&text)),
        Err(e) => out
            .errors
            .push(format!("cannot read {}: {e}", lock_order_file.display())),
    }
    out.counts = counts.iter().map(|(k, v)| (k.clone(), v.total)).collect();

    let baseline_file = root.join(BASELINE_PATH);
    let baseline = match fs::read_to_string(&baseline_file) {
        Ok(text) => ratchet::parse_baseline(&text),
        Err(e) => {
            if !update_baseline {
                out.errors
                    .push(format!("cannot read {}: {e}", baseline_file.display()));
            }
            BTreeMap::new()
        }
    };
    let report = ratchet::compare(&counts, &baseline);
    if update_baseline {
        match fs::write(&baseline_file, ratchet::render_baseline(&out.counts)) {
            Ok(()) => out.warnings.push(format!(
                "panic-ratchet: baseline rewritten at {}",
                baseline_file.display()
            )),
            Err(e) => out
                .errors
                .push(format!("cannot write {}: {e}", baseline_file.display())),
        }
    } else {
        out.warnings.extend(report.warnings);
    }
    out.errors.extend(report.errors);
    out
}

/// One workspace member under `crates/`.
#[derive(Debug, Clone)]
pub struct CrateDir {
    /// The crate's directory.
    pub dir: PathBuf,
    /// Its parsed manifest subset.
    pub manifest: manifest::Manifest,
}

/// Finds every `crates/*` directory containing a `Cargo.toml`, sorted by
/// package name for deterministic reports. Vendored shims (`vendor/*`) are
/// deliberately out of scope.
pub fn discover_crates(root: &Path) -> std::io::Result<Vec<CrateDir>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(root.join("crates"))? {
        let dir = entry?.path();
        let manifest_path = dir.join("Cargo.toml");
        if !manifest_path.is_file() {
            continue;
        }
        let text = fs::read_to_string(&manifest_path)?;
        out.push(CrateDir {
            dir,
            manifest: manifest::parse(&text),
        });
    }
    out.sort_by(|a, b| a.manifest.name.cmp(&b.manifest.name));
    Ok(out)
}

/// Reads every `.rs` file under `<crate>/src`, returning
/// `(path relative to the crate dir, contents)` sorted by path.
///
/// Only `src/` is scanned: `tests/`, `benches/`, and `examples/` are test
/// harness by definition, exactly like `#[cfg(test)]` blocks.
pub fn read_sources(crate_dir: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let src = crate_dir.join("src");
    if src.is_dir() {
        walk(&src, &mut files)?;
    }
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(crate_dir)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        out.push((rel, fs::read_to_string(&path)?));
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
