//! The invariant-hook audit.
//!
//! Several core data structures expose a `check_invariants()` method (the
//! trees in `enviro-index`, `TupleStore`, `ModelCover`, `AdKmnResult`,
//! `LinearModel`). Defining one is only half the contract — it must also be
//! *called* on mutation paths, gated behind `debug_assertions`, or it rots.
//! This audit enforces the calling half:
//!
//! * every file defining `fn check_invariants` must contain a debug-gated
//!   invocation (a call whose enclosing context mentions `debug_assert` or
//!   `cfg(debug_assertions)`), **or**
//! * the crate must contain a *delegated* invocation — a
//!   `check_invariants()` call placed inside the body of another
//!   `fn check_invariants` (e.g. `ModelCover` validating each
//!   `LinearModel`), which inherits the caller's gating.

use crate::scan;

/// How far back (in bytes of masked source) a call site may be from its
/// `debug_assert`/`cfg(debug_assertions)` gate. Covers multi-line
/// `debug_assert_eq!` formattings without reaching into earlier statements.
const GATE_WINDOW: usize = 200;

/// Per-file facts gathered by [`inspect`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FileFacts {
    /// Lines of `fn check_invariants` definitions.
    pub definitions: Vec<usize>,
    /// The file contains a call under `debug_assert`/`cfg(debug_assertions)`.
    pub has_gated_call: bool,
    /// The file contains a call inside another `fn check_invariants` body.
    pub has_delegated_call: bool,
}

/// Scans one file of *masked, test-stripped* source.
pub fn inspect(masked: &str) -> FileFacts {
    let mut facts = FileFacts::default();
    // Body spans of `fn check_invariants` definitions, for delegation.
    let mut bodies: Vec<(usize, usize)> = Vec::new();
    let mut prev_was_fn = false;
    let idents: Vec<scan::Ident<'_>> = scan::idents(masked).collect();
    for id in &idents {
        if id.text == "check_invariants" && prev_was_fn {
            facts.definitions.push(scan::line_of(masked, id.start));
            if let Some(span) = body_span(masked, id.end) {
                bodies.push(span);
            }
        }
        prev_was_fn = id.text == "fn";
    }
    let mut prev_was_fn = false;
    for id in &idents {
        let is_call = id.text == "check_invariants"
            && !prev_was_fn
            && scan::next_nonspace(masked, id.end) == Some(b'(');
        prev_was_fn = id.text == "fn";
        if !is_call {
            continue;
        }
        let back = &masked[id.start.saturating_sub(GATE_WINDOW)..id.start];
        if back.contains("debug_assert") || back.contains("cfg(debug_assertions)") {
            facts.has_gated_call = true;
        }
        if bodies.iter().any(|&(s, e)| id.start > s && id.start < e) {
            facts.has_delegated_call = true;
        }
    }
    facts
}

/// Byte span of the `{ … }` body following a definition whose name ends at
/// `after`.
fn body_span(masked: &str, after: usize) -> Option<(usize, usize)> {
    let bytes = masked.as_bytes();
    let open = (after..bytes.len()).find(|&i| bytes[i] == b'{')?;
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
    }
    None
}

/// Audits one crate given `(relative path, masked test-stripped source)`
/// pairs; returns one message per unhooked definition file.
pub fn audit(crate_name: &str, files: &[(String, String)]) -> Vec<String> {
    let facts: Vec<(&String, FileFacts)> = files.iter().map(|(p, src)| (p, inspect(src))).collect();
    let crate_has_delegation = facts.iter().any(|(_, f)| f.has_delegated_call);
    let mut errors = Vec::new();
    for (path, f) in &facts {
        if f.definitions.is_empty() {
            continue;
        }
        let covered = f.has_gated_call || f.has_delegated_call || crate_has_delegation;
        if !covered {
            errors.push(format!(
                "invariants: `{crate_name}`: {path}:{} defines `check_invariants` but the \
                 crate never invokes it under debug_assertions (add e.g. \
                 `debug_assert_eq!(x.check_invariants(), Ok(()));` on the mutation paths)",
                f.definitions[0]
            ));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{mask, strip_cfg_test};

    fn facts(src: &str) -> FileFacts {
        inspect(&strip_cfg_test(mask(src)))
    }

    #[test]
    fn gated_call_in_same_file_passes() {
        let src = r#"
impl Tree {
    pub fn check_invariants(&self) -> Result<(), String> { Ok(()) }
    pub fn insert(&mut self) {
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }
}
"#;
        let f = facts(src);
        assert_eq!(f.definitions.len(), 1);
        assert!(f.has_gated_call);
        assert!(audit("c", &[("t.rs".into(), strip_cfg_test(mask(src)))]).is_empty());
    }

    #[test]
    fn unhooked_definition_fails() {
        let src = "impl T { pub fn check_invariants(&self) -> Result<(), String> { Ok(()) } }";
        let errs = audit("c", &[("t.rs".into(), strip_cfg_test(mask(src)))]);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("t.rs:1"), "{errs:?}");
    }

    #[test]
    fn ungated_call_does_not_count() {
        let src = r#"
impl T {
    pub fn check_invariants(&self) -> Result<(), String> { Ok(()) }
    pub fn touch(&self) { let _ = self.check_invariants(); }
}
"#;
        let f = facts(src);
        assert!(!f.has_gated_call);
        assert_eq!(
            audit("c", &[("t.rs".into(), strip_cfg_test(mask(src)))]).len(),
            1
        );
    }

    #[test]
    fn cfg_debug_assertions_block_counts_as_gated() {
        let src = r#"
impl T {
    pub fn check_invariants(&self) -> Result<(), String> { Ok(()) }
    pub fn touch(&self) {
        #[cfg(debug_assertions)]
        { assert_inv(self.check_invariants()); }
    }
}
"#;
        assert!(facts(src).has_gated_call);
    }

    #[test]
    fn delegation_covers_cross_file_definitions() {
        let parent = r#"
impl Cover {
    pub fn check_invariants(&self) -> Result<(), String> {
        self.model.check_invariants()
    }
    fn assemble(&self) { debug_assert_eq!(self.check_invariants(), Ok(())); }
}
"#;
        let child =
            "impl Model { pub fn check_invariants(&self) -> Result<(), String> { Ok(()) } }";
        let files = vec![
            ("cover.rs".to_string(), strip_cfg_test(mask(parent))),
            ("model.rs".to_string(), strip_cfg_test(mask(child))),
        ];
        assert!(audit("core", &files).is_empty());
    }

    #[test]
    fn definition_inside_cfg_test_is_ignored() {
        let src = "#[cfg(test)]\nmod t { fn check_invariants() {} }";
        assert!(facts(src).definitions.is_empty());
    }
}
