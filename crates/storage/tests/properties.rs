//! Property tests: the store must never lose acknowledged data and never
//! panic on arbitrary tail damage.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{RawTuple, Timestamp};
use enviro_geo::Point;
use enviro_storage::TupleStore;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn unique_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "enviro-store-prop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<RawTuple>>> {
    prop::collection::vec(
        prop::collection::vec(
            (0i64..100_000, -1e4..1e4f64, -1e4..1e4f64, 0.0..2_000.0f64),
            0..20,
        ),
        0..12,
    )
    .prop_map(|batches| {
        batches
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(t, x, y, v)| RawTuple::new(Timestamp::from_secs(t), Point::new(x, y), v))
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn appended_batches_survive_reopen(batches in arb_batches()) {
        let dir = unique_dir("reopen");
        let mut expected: Vec<RawTuple> = Vec::new();
        {
            // Small segments force rotation mid-run.
            let mut store = TupleStore::open_with_segment_size(&dir, 256).unwrap();
            for batch in &batches {
                store.append(batch).unwrap();
                expected.extend_from_slice(batch);
            }
            store.sync().unwrap();
        }
        let store = TupleStore::open_with_segment_size(&dir, 256).unwrap();
        let mut got = store
            .scan_range(Timestamp::from_secs(0), Timestamp::from_secs(1_000_000))
            .unwrap();
        expected.sort_by_key(|t| t.time);
        got.sort_by_key(|t| t.time);
        prop_assert_eq!(got.len(), expected.len());
        // Same multiset: compare after sorting by all fields via debug repr.
        let fmt = |v: &[RawTuple]| {
            let mut s: Vec<String> = v.iter().map(|t| format!("{t:?}")).collect();
            s.sort();
            s
        };
        prop_assert_eq!(fmt(&got), fmt(&expected));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn arbitrary_tail_truncation_yields_clean_prefix(
        batches in arb_batches(),
        chop in 1usize..200,
    ) {
        let dir = unique_dir("chop");
        let total: usize = batches.iter().map(Vec::len).sum();
        {
            let mut store = TupleStore::open(&dir).unwrap();
            for batch in &batches {
                store.append(batch).unwrap();
            }
            store.sync().unwrap();
        }
        // Damage the (single) segment by chopping `chop` bytes off the end,
        // but never into the header.
        let seg = dir.join("seg-00000000.log");
        let len = std::fs::metadata(&seg).unwrap().len();
        let new_len = len.saturating_sub(chop as u64).max(16);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(new_len)
            .unwrap();
        // Recovery must not panic and must return a prefix of the appended
        // tuples (batch-granular).
        let store = TupleStore::open(&dir).unwrap();
        let got = store
            .scan_range(Timestamp::from_secs(0), Timestamp::from_secs(1_000_000))
            .unwrap();
        prop_assert!(got.len() <= total);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn random_byte_flip_never_panics(
        batch in prop::collection::vec((0i64..1000, 0.0..100.0f64), 1..30),
        flip_at in 16usize..500,
        flip_bit in 0u8..8,
    ) {
        let dir = unique_dir("flip");
        let tuples: Vec<RawTuple> = batch
            .iter()
            .map(|&(t, v)| RawTuple::new(Timestamp::from_secs(t), Point::new(v, v), v))
            .collect();
        {
            let mut store = TupleStore::open(&dir).unwrap();
            store.append(&tuples).unwrap();
            store.sync().unwrap();
        }
        let seg = dir.join("seg-00000000.log");
        let mut data = std::fs::read(&seg).unwrap();
        if flip_at < data.len() {
            data[flip_at] ^= 1 << flip_bit;
            std::fs::write(&seg, &data).unwrap();
        }
        // Flips inside the header are hard errors; flips in the body are
        // recovered as truncation. Either way: no panic, no garbage tuples
        // beyond the original count.
        if let Ok(store) = TupleStore::open(&dir) {
            let got = store
                .scan_range(Timestamp::from_secs(0), Timestamp::from_secs(10_000))
                .unwrap();
            prop_assert!(got.len() <= tuples.len());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
