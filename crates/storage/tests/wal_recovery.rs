//! Crash-recovery property harness for [`enviro_storage::WalStore`]:
//! write a seeded batch sequence, then simulate a kill at **every byte
//! offset** of the WAL and prove that replay
//!
//! * never yields a corrupt tuple (every recovered tuple is bit-identical
//!   to one that was appended, in arrival order), and
//! * recovers exactly the fully-synced batch prefix — every batch whose
//!   frame survived the crash point comes back whole, and no partial batch
//!   ever leaks through.
//!
//! Replay a failure with `WAL_SEED=<decimal or 0x-hex> cargo test -q -p
//! enviro-storage --test wal_recovery`. CI pins two seeds.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{RawTuple, Timestamp};
use enviro_geo::Point;
use enviro_storage::{WalConfig, WalStore};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Window length used by the harness (seconds).
const H: i64 = 100;

/// Default pinned seed; CI runs a second one via `WAL_SEED`.
const DEFAULT_WAL_SEED: u64 = 0x5EED_BA7C_0001;

/// Seed override, mirroring the chaos suite's `CHAOS_SEED` knob.
fn wal_seed() -> u64 {
    match std::env::var("WAL_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            };
            parsed.unwrap_or(DEFAULT_WAL_SEED)
        }
        Err(_) => DEFAULT_WAL_SEED,
    }
}

/// xorshift64* — the same generator family as the chaos wire, so a seed
/// printed by one harness means the same thing in the other.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "enviro-walrec-{name}-{}-{:x}",
        std::process::id(),
        wal_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Recursively copies a store directory (wal/ + windows/ + manifests).
fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// One seeded batch of finite tuples across a handful of windows.
fn random_batch(rng: &mut Rng, windows: u64) -> Vec<RawTuple> {
    let n = 1 + rng.below(5) as usize;
    (0..n)
        .map(|_| {
            let t = rng.below(windows * H as u64) as i64;
            let x = rng.below(10_000) as f64 / 10.0;
            let y = rng.below(10_000) as f64 / 10.0;
            let v = rng.below(5_000) as f64 / 10.0;
            RawTuple::new(Timestamp::from_secs(t), Point::new(x, y), v)
        })
        .collect()
}

/// Groups a batch prefix by window id, preserving arrival order.
fn expected_by_window(batches: &[Vec<RawTuple>], upto: usize) -> BTreeMap<u64, Vec<RawTuple>> {
    let mut exp: BTreeMap<u64, Vec<RawTuple>> = BTreeMap::new();
    for batch in &batches[..upto] {
        for t in batch {
            let id = t.time.as_secs().div_euclid(H) as u64;
            exp.entry(id).or_default().push(*t);
        }
    }
    exp
}

/// Asserts a recovered store holds exactly `exp` (plus nothing else).
fn assert_recovered(store: &WalStore, exp: &BTreeMap<u64, Vec<RawTuple>>, ctx: &str) {
    let total: usize = exp.values().map(Vec::len).sum();
    assert_eq!(
        store.durable_upto(),
        total as u64,
        "{ctx}: durable_upto mismatch"
    );
    for (&id, tuples) in exp {
        let got = store
            .window_tuples(id)
            .unwrap_or_else(|| panic!("{ctx}: window {id} lost"));
        assert_eq!(got, tuples.as_slice(), "{ctx}: window {id} tuples differ");
    }
    let stats = store.stats();
    assert_eq!(
        stats.memtable_tuples + stats.sealed_tuples,
        total,
        "{ctx}: extra tuples materialized from nowhere"
    );
    assert_eq!(store.check_invariants(), Ok(()), "{ctx}");
}

#[test]
fn kill_at_every_byte_recovers_exact_acked_prefix() {
    let seed = wal_seed();
    let mut rng = Rng::new(seed);
    let base = tempdir("prefix");
    let cfg = WalConfig {
        window_secs: H,
        max_wal_segment_bytes: u64::MAX, // keep one WAL segment: every byte of it gets a kill
    };

    // Write a seeded batch sequence, recording the synced WAL length after
    // each acknowledged batch.
    let mut store = WalStore::open(&base, cfg).unwrap();
    let mut batches: Vec<Vec<RawTuple>> = Vec::new();
    let mut synced_len: Vec<u64> = Vec::new(); // WAL bytes once batch i is acked
    for _ in 0..24 {
        let batch = random_batch(&mut rng, 4);
        store.append_batch(&batch).unwrap();
        batches.push(batch);
        synced_len.push(store.stats().wal_bytes);
    }
    drop(store);

    let wal_file = base.join("wal").join("seg-00000000.log");
    let full_len = std::fs::metadata(&wal_file).unwrap().len();
    assert_eq!(full_len, *synced_len.last().unwrap());

    let scratch = tempdir("prefix-scratch");
    for kill_at in 0..=full_len {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&base, &scratch);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(scratch.join("wal").join("seg-00000000.log"))
            .unwrap();
        f.set_len(kill_at).unwrap();
        drop(f);

        let store = WalStore::open(&scratch, cfg)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: open failed at kill_at={kill_at}: {e}"));
        // Every batch whose frame is fully inside the surviving bytes must
        // come back; nothing else may.
        let acked = synced_len.partition_point(|&end| end <= kill_at);
        let exp = expected_by_window(&batches, acked);
        assert_recovered(&store, &exp, &format!("seed {seed:#x}, kill_at={kill_at}"));
        if kill_at < full_len {
            // Some suffix was lost; the store must have noticed unless the
            // cut landed exactly on a frame boundary (or right after the
            // header), where the file is indistinguishable from a clean
            // shutdown.
            let on_boundary = kill_at == 16 || synced_len.contains(&kill_at);
            assert_eq!(
                store.stats().recovered_torn_tail,
                !on_boundary,
                "seed {seed:#x}, kill_at={kill_at}: torn-tail flag"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn kill_at_every_byte_with_sealed_windows() {
    let seed = wal_seed() ^ 0xD15C;
    let mut rng = Rng::new(seed);
    let base = tempdir("sealed");
    let cfg = WalConfig {
        window_secs: H,
        max_wal_segment_bytes: u64::MAX,
    };

    // Phase 1: ingest, then seal everything below window 2 (compacting the
    // WAL). Sealed windows live in windows/ segments from here on.
    let mut store = WalStore::open(&base, cfg).unwrap();
    let mut phase1_batches: Vec<Vec<RawTuple>> = Vec::new();
    for _ in 0..12 {
        let batch = random_batch(&mut rng, 4);
        store.append_batch(&batch).unwrap();
        phase1_batches.push(batch);
    }
    let sealed_ids = store.seal_windows_before(2).unwrap();
    assert!(!sealed_ids.is_empty(), "seed {seed:#x}: nothing sealed");

    // Phase 2: more batches after the compaction; late tuples for the
    // sealed windows are dropped on arrival, so the expected survivors of
    // phase 2 are only the fresh-window tuples.
    let mut tail_batches: Vec<Vec<RawTuple>> = Vec::new();
    let mut synced_len: Vec<u64> = Vec::new();
    let active = store.stats().wal_segments as u32; // seqs 1 (compacted) + 2 (active)
    for _ in 0..12 {
        let batch = random_batch(&mut rng, 4);
        let kept: Vec<RawTuple> = batch
            .iter()
            .filter(|t| !sealed_ids.contains(&(t.time.as_secs().div_euclid(H) as u64)))
            .copied()
            .collect();
        store.append_batch(&batch).unwrap();
        tail_batches.push(kept);
        synced_len.push(store.stats().wal_bytes);
    }
    assert_eq!(active, 2, "expected compacted+active WAL layout");
    let sealed_exp: BTreeMap<u64, Vec<RawTuple>> = sealed_ids
        .iter()
        .map(|&id| (id, store.window_tuples(id).unwrap().to_vec()))
        .collect();
    drop(store);

    // The active segment is seg-00000002.log; kill at every byte of it.
    let wal_file = base.join("wal").join("seg-00000002.log");
    let full_len = std::fs::metadata(&wal_file).unwrap().len();
    let compacted_wal_bytes: u64 = std::fs::metadata(base.join("wal").join("seg-00000001.log"))
        .unwrap()
        .len();

    let scratch = tempdir("sealed-scratch");
    for kill_at in 0..=full_len {
        let _ = std::fs::remove_dir_all(&scratch);
        copy_dir(&base, &scratch);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(scratch.join("wal").join("seg-00000002.log"))
            .unwrap();
        f.set_len(kill_at).unwrap();
        drop(f);

        let store = WalStore::open(&scratch, cfg)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: open failed at kill_at={kill_at}: {e}"));
        // Sealed windows are untouched by a WAL kill.
        for (&id, tuples) in &sealed_exp {
            assert!(store.is_sealed(id), "seed {seed:#x}: window {id} unsealed");
            assert_eq!(
                store.window_tuples(id).unwrap(),
                tuples.as_slice(),
                "seed {seed:#x}, kill_at={kill_at}: sealed window {id} changed"
            );
        }
        // Memtables: compacted prefix (always whole — it was synced before
        // the manifest switch) plus the surviving tail batches.
        let acked =
            synced_len.partition_point(|&end| end.saturating_sub(compacted_wal_bytes) <= kill_at);
        let mut exp: BTreeMap<u64, Vec<RawTuple>> = BTreeMap::new();
        for batch in &phase1_batches {
            for t in batch {
                let id = t.time.as_secs().div_euclid(H) as u64;
                if !sealed_exp.contains_key(&id) {
                    exp.entry(id).or_default().push(*t);
                }
            }
        }
        for batch in &tail_batches[..acked] {
            for t in batch {
                let id = t.time.as_secs().div_euclid(H) as u64;
                exp.entry(id).or_default().push(*t);
            }
        }
        exp.retain(|_, v| !v.is_empty());
        let total: u64 = sealed_exp.values().map(|v| v.len() as u64).sum::<u64>()
            + exp.values().map(|v| v.len() as u64).sum::<u64>();
        assert_eq!(
            store.durable_upto(),
            total,
            "seed {seed:#x}, kill_at={kill_at}: durable_upto"
        );
        for (&id, tuples) in &exp {
            assert_eq!(
                store.window_tuples(id).unwrap_or(&[]),
                tuples.as_slice(),
                "seed {seed:#x}, kill_at={kill_at}: window {id} memtable"
            );
        }
        assert_eq!(store.check_invariants(), Ok(()));
    }
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn recovery_is_deterministic() {
    let seed = wal_seed();
    let mut rng = Rng::new(seed);
    let base = tempdir("determinism");
    let cfg = WalConfig {
        window_secs: H,
        max_wal_segment_bytes: 512,
    };
    let mut store = WalStore::open(&base, cfg).unwrap();
    for _ in 0..20 {
        let batch = random_batch(&mut rng, 3);
        store.append_batch(&batch).unwrap();
    }
    store.seal_windows_before(1).unwrap();
    drop(store);

    let snapshot = |s: &WalStore| -> Vec<(u64, Vec<RawTuple>)> {
        let mut all: Vec<(u64, Vec<RawTuple>)> = s
            .memtables()
            .map(|(id, m)| (id, m.tuples().to_vec()))
            .collect();
        for id in s.sealed_window_ids() {
            all.push((id, s.window_tuples(id).unwrap().to_vec()));
        }
        all.sort_by_key(|&(id, _)| id);
        all
    };
    let a = WalStore::open(&base, cfg).unwrap();
    let first = (a.durable_upto(), snapshot(&a));
    drop(a);
    let b = WalStore::open(&base, cfg).unwrap();
    let second = (b.durable_upto(), snapshot(&b));
    assert_eq!(first, second, "seed {seed:#x}: recovery not deterministic");
    let _ = std::fs::remove_dir_all(&base);
}
