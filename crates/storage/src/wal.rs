//! The WAL store: the durable write path behind network ingestion.
//!
//! [`TupleStore`](crate::TupleStore) is the offline raw-tuple file; this
//! module is its streaming sibling, shaped like the write path of an
//! LSM-style ingestion node:
//!
//! * every accepted batch is appended to a **write-ahead log** (the same
//!   CRC-framed segment format as [`crate::segment`]) and fsynced *before*
//!   it is acknowledged — the ack carries `durable_upto`, the count of
//!   tuples that survive any crash;
//! * accepted tuples also land in an in-memory **memtable per epoch-aligned
//!   window** `W_c` (the paper's model-building unit), in arrival order;
//! * once a window falls behind the ingest watermark it is **sealed**: its
//!   memtable is written to a time-partitioned segment under `windows/`,
//!   the windows manifest is switched atomically, and the WAL is compacted
//!   down to the still-open memtables — the background compactor keeps the
//!   log from growing without bound;
//! * **recovery** reads the sealed windows, then replays the WAL in order,
//!   truncating a torn tail on the final segment only (the expected crash
//!   shape) and skipping tuples whose window is already sealed.
//!
//! Tuples that arrive for an already-sealed window are *late* under the
//! watermark semantics: they are acknowledged, counted, and dropped, so a
//! sealed window's model cover is immutable once published.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/wal/seg-00000000.log      append-only log + MANIFEST
//! <dir>/windows/seg-00000007.log  sealed window 7 + MANIFEST
//! ```

use crate::segment::{
    parse_segment_file_name, read_segment, segment_file_name, SegmentWriter, HEADER_SIZE,
};
use crate::store::{read_manifest, write_manifest, StorageError, DEFAULT_MAX_SEGMENT_BYTES};
use enviro_data::{RawTuple, Timestamp};
use enviro_memsize::DeepSize;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Configuration of a [`WalStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Epoch-aligned window length `H` in seconds; window `c` holds tuples
    /// with `c·H ≤ t < (c+1)·H` (the same mapping as
    /// `WindowSpec::ByDuration`).
    pub window_secs: i64,
    /// WAL segment rotation threshold in bytes.
    pub max_wal_segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            window_secs: 7_200,
            max_wal_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES,
        }
    }
}

/// One open (not yet sealed) window's buffered tuples, in arrival order.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    tuples: Vec<RawTuple>,
}

impl Memtable {
    /// The buffered tuples, in arrival order.
    pub fn tuples(&self) -> &[RawTuple] {
        &self.tuples
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when no tuple has arrived for the window yet.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl DeepSize for Memtable {
    fn heap_size(&self) -> usize {
        self.tuples.heap_size()
    }
}

/// Summary statistics of a [`WalStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Tuples durably accepted (fsynced and retained): the ingest ack
    /// watermark.
    pub durable_tuples: u64,
    /// Open windows still buffered in memtables.
    pub memtable_windows: usize,
    /// Tuples across all memtables.
    pub memtable_tuples: usize,
    /// Windows sealed to `windows/` segments.
    pub sealed_windows: usize,
    /// Tuples across all sealed windows.
    pub sealed_tuples: usize,
    /// WAL segment files (including the active one).
    pub wal_segments: usize,
    /// WAL bytes on disk (headers + frames).
    pub wal_bytes: u64,
    /// Acknowledged-then-dropped tuples that arrived for a sealed window.
    pub late_tuples: u64,
    /// Dropped tuples with a non-finite position or value.
    pub rejected_tuples: u64,
    /// `true` if recovery truncated a torn WAL tail on open.
    pub recovered_torn_tail: bool,
}

/// A sealed window resident in memory (its durable copy lives under
/// `windows/`).
#[derive(Debug, Clone)]
struct SealedWindow {
    tuples: Vec<RawTuple>,
}

/// A durable, crash-recoverable ingestion store: WAL + per-window memtables
/// + sealed window segments. See the module docs for the protocol.
#[derive(Debug)]
pub struct WalStore {
    dir: PathBuf,
    wal_dir: PathBuf,
    windows_dir: PathBuf,
    config: WalConfig,
    writer: SegmentWriter,
    /// `(seq, clean bytes)` of every live WAL segment, active one last.
    wal_segments: Vec<(u32, u64)>,
    memtables: BTreeMap<u64, Memtable>,
    sealed: BTreeMap<u64, SealedWindow>,
    durable_tuples: u64,
    late_tuples: u64,
    rejected_tuples: u64,
    recovered_torn_tail: bool,
    /// Reusable filter buffer for [`WalStore::append_batch`].
    scratch: Vec<RawTuple>,
}

impl WalStore {
    /// Opens (or creates) a WAL store in `dir`, running recovery.
    ///
    /// Sealed window segments must be fully intact (they are synced before
    /// the manifest lists them, so a torn one is real corruption); a torn
    /// tail is tolerated — and truncated — on the *final* WAL segment only.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> Result<Self, StorageError> {
        if config.window_secs <= 0 {
            return Err(StorageError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("window_secs must be positive, got {}", config.window_secs),
            )));
        }
        let dir = dir.as_ref().to_path_buf();
        let wal_dir = dir.join("wal");
        let windows_dir = dir.join("windows");
        std::fs::create_dir_all(&wal_dir)?;
        std::fs::create_dir_all(&windows_dir)?;

        // 1. Sealed windows. A segment file not named by the manifest is
        //    the residue of a crash between writing the segment and the
        //    atomic manifest switch; its tuples are still in the WAL, so
        //    the orphan is deleted, not recovered.
        let sealed_live = read_manifest(&windows_dir)?.unwrap_or_default();
        let mut sealed = BTreeMap::new();
        for seq in discover_segments(&windows_dir)? {
            if !sealed_live.contains(&seq) {
                let _ = std::fs::remove_file(windows_dir.join(segment_file_name(seq)));
            }
        }
        for &seq in &sealed_live {
            let path = windows_dir.join(segment_file_name(seq));
            let contents = read_segment(&path).map_err(|e| StorageError::InvalidSegment {
                path: path.clone(),
                reason: e.to_string(),
            })?;
            if contents.truncated_tail {
                return Err(StorageError::InvalidSegment {
                    path,
                    reason: "sealed window segment has a torn tail".into(),
                });
            }
            sealed.insert(
                u64::from(seq),
                SealedWindow {
                    tuples: contents.tuples,
                },
            );
        }

        // 2. WAL replay. No manifest = every discovered segment is live.
        let mut wal_seqs = discover_segments(&wal_dir)?;
        if let Some(live) = read_manifest(&wal_dir)? {
            for &seq in &wal_seqs {
                if !live.contains(&seq) {
                    let _ = std::fs::remove_file(wal_dir.join(segment_file_name(seq)));
                }
            }
            wal_seqs.retain(|s| live.contains(s));
        }
        let mut wal_segments = Vec::with_capacity(wal_seqs.len());
        let mut memtables: BTreeMap<u64, Memtable> = BTreeMap::new();
        let mut recovered_torn_tail = false;
        let last_idx = wal_seqs.len().checked_sub(1);
        for (i, &seq) in wal_seqs.iter().enumerate() {
            let path = wal_dir.join(segment_file_name(seq));
            // A final segment shorter than its own header is a torn
            // creation: the crash hit between `create` and the first sync,
            // so nothing in it was ever acknowledged. Recreate it empty.
            if Some(i) == last_idx && std::fs::metadata(&path)?.len() < HEADER_SIZE as u64 {
                std::fs::remove_file(&path)?;
                let w = SegmentWriter::create(&wal_dir, seq)?;
                drop(w);
                recovered_torn_tail = true;
                wal_segments.push((seq, HEADER_SIZE as u64));
                continue;
            }
            let contents = read_segment(&path).map_err(|e| StorageError::InvalidSegment {
                path: path.clone(),
                reason: e.to_string(),
            })?;
            if contents.truncated_tail {
                if Some(i) != last_idx {
                    return Err(StorageError::InvalidSegment {
                        path,
                        reason: "corrupt batch in a non-final WAL segment".into(),
                    });
                }
                recovered_torn_tail = true;
            }
            for t in contents.tuples {
                let id = window_id_of(config.window_secs, t.time);
                // Tuples of a window sealed before the crash were already
                // persisted under windows/; replaying them would double
                // count.
                if !sealed.contains_key(&id) {
                    memtables.entry(id).or_default().tuples.push(t);
                }
            }
            wal_segments.push((seq, contents.clean_len));
        }

        // 3. Active writer: reopen the last WAL segment at its clean length
        //    (truncating any torn tail) or create segment 0.
        let writer = match wal_segments.last() {
            Some(&(seq, clean)) => SegmentWriter::reopen(&wal_dir, seq, clean)?,
            None => {
                let w = SegmentWriter::create(&wal_dir, 0)?;
                wal_segments.push((0, HEADER_SIZE as u64));
                w
            }
        };
        let seqs: Vec<u32> = wal_segments.iter().map(|&(s, _)| s).collect();
        write_manifest(&wal_dir, &seqs)?;

        let durable_tuples = sealed.values().map(|w| w.tuples.len() as u64).sum::<u64>()
            + memtables
                .values()
                .map(|m| m.tuples.len() as u64)
                .sum::<u64>();
        let store = Self {
            dir,
            wal_dir,
            windows_dir,
            config,
            writer,
            wal_segments,
            memtables,
            sealed,
            durable_tuples,
            late_tuples: 0,
            rejected_tuples: 0,
            recovered_torn_tail,
            scratch: Vec::new(),
        };
        debug_assert_eq!(store.check_invariants(), Ok(()));
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's configuration.
    pub fn config(&self) -> WalConfig {
        self.config
    }

    /// The window id `c` that a timestamp maps to.
    pub fn window_id_of(&self, time: Timestamp) -> u64 {
        window_id_of(self.config.window_secs, time)
    }

    /// The ingest ack watermark: tuples durably accepted so far.
    pub fn durable_upto(&self) -> u64 {
        self.durable_tuples
    }

    /// Appends a batch of tuples: WAL write + fsync, then memtable insert.
    ///
    /// Returns the new `durable_upto` watermark. Non-finite tuples are
    /// dropped and counted; tuples for an already-sealed window are *late*
    /// — acknowledged, counted, and dropped (watermark semantics).
    pub fn append_batch(&mut self, tuples: &[RawTuple]) -> Result<u64, StorageError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for t in tuples {
            if !t.is_finite() {
                self.rejected_tuples += 1;
            } else if self.sealed.contains_key(&self.window_id_of(t.time)) {
                self.late_tuples += 1;
            } else {
                scratch.push(*t);
            }
        }
        if scratch.is_empty() {
            self.scratch = scratch;
            return Ok(self.durable_tuples);
        }
        if self.writer.len() >= self.config.max_wal_segment_bytes {
            self.rotate_wal()?;
        }
        // Visible to the deterministic scheduler (no-op outside a model
        // run): the durability point interleaves with concurrent readers.
        enviro_schedule::point("wal-append");
        let append = (|| -> Result<(), StorageError> {
            self.writer.append_batch(&scratch)?;
            self.writer.sync()?;
            Ok(())
        })();
        if let Err(e) = append {
            self.scratch = scratch;
            return Err(e);
        }
        if let Some(active) = self.wal_segments.last_mut() {
            active.1 = self.writer.len();
        }
        for &t in &scratch {
            let id = window_id_of(self.config.window_secs, t.time);
            self.memtables.entry(id).or_default().tuples.push(t);
        }
        self.durable_tuples += scratch.len() as u64;
        self.scratch = scratch;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(self.durable_tuples)
    }

    /// The open windows, lowest id first.
    pub fn memtables(&self) -> impl Iterator<Item = (u64, &Memtable)> {
        self.memtables.iter().map(|(&id, m)| (id, m))
    }

    /// Ids of sealed windows, lowest first.
    pub fn sealed_window_ids(&self) -> Vec<u64> {
        self.sealed.keys().copied().collect()
    }

    /// `true` once `id` has been sealed.
    pub fn is_sealed(&self, id: u64) -> bool {
        self.sealed.contains_key(&id)
    }

    /// The tuples of window `id` (open or sealed), in arrival order.
    pub fn window_tuples(&self, id: u64) -> Option<&[RawTuple]> {
        self.memtables
            .get(&id)
            .map(|m| m.tuples.as_slice())
            .or_else(|| self.sealed.get(&id).map(|w| w.tuples.as_slice()))
    }

    /// The highest window id with any data, open or sealed.
    pub fn max_window_id(&self) -> Option<u64> {
        let open = self.memtables.keys().next_back().copied();
        let sealed = self.sealed.keys().next_back().copied();
        open.max(sealed)
    }

    /// Seals every open window with `id < watermark`, then compacts the WAL
    /// once. Returns the sealed ids.
    pub fn seal_windows_before(&mut self, watermark: u64) -> Result<Vec<u64>, StorageError> {
        let ids: Vec<u64> = self
            .memtables
            .range(..watermark)
            .map(|(&id, _)| id)
            .collect();
        if ids.is_empty() {
            return Ok(ids);
        }
        // Model-checker schedule point: sealing + compaction is the other
        // mutating I/O boundary the maintenance pass crosses.
        enviro_schedule::point("wal-seal");
        for &id in &ids {
            self.seal_one(id)?;
        }
        self.compact_wal()?;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(ids)
    }

    /// Seals one open window (no-op returning `false` if it has no
    /// memtable), then compacts the WAL.
    pub fn seal_window(&mut self, id: u64) -> Result<bool, StorageError> {
        if !self.memtables.contains_key(&id) {
            return Ok(false);
        }
        self.seal_one(id)?;
        self.compact_wal()?;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(true)
    }

    /// Store statistics.
    pub fn stats(&self) -> WalStats {
        WalStats {
            durable_tuples: self.durable_tuples,
            memtable_windows: self.memtables.len(),
            memtable_tuples: self.memtables.values().map(|m| m.tuples.len()).sum(),
            sealed_windows: self.sealed.len(),
            sealed_tuples: self.sealed.values().map(|w| w.tuples.len()).sum(),
            wal_segments: self.wal_segments.len(),
            wal_bytes: self.wal_segments.iter().map(|&(_, b)| b).sum(),
            late_tuples: self.late_tuples,
            rejected_tuples: self.rejected_tuples,
            recovered_torn_tail: self.recovered_torn_tail,
        }
    }

    /// Verifies the store's structural invariants, returning the first
    /// violation found. Checked (in debug builds) after recovery and after
    /// every mutation:
    ///
    /// * WAL segment seqs are strictly increasing and the writer sits on
    ///   the last one, at its recorded length;
    /// * no window is both open and sealed;
    /// * every memtable tuple is finite and maps back to its window id;
    /// * `durable_upto` equals the retained tuple count (sealed + open).
    pub fn check_invariants(&self) -> Result<(), String> {
        let Some(&(last_seq, last_bytes)) = self.wal_segments.last() else {
            return Err("no active WAL segment".into());
        };
        for pair in self.wal_segments.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(format!(
                    "WAL seqs not strictly increasing: {} then {}",
                    pair[0].0, pair[1].0
                ));
            }
        }
        if self.writer.seq() != last_seq {
            return Err(format!(
                "writer on WAL segment {}, but last segment is {last_seq}",
                self.writer.seq()
            ));
        }
        if self.writer.len() != last_bytes {
            return Err(format!(
                "writer at {} bytes, but segment {last_seq} accounts for {last_bytes}",
                self.writer.len()
            ));
        }
        for (&id, m) in &self.memtables {
            if self.sealed.contains_key(&id) {
                return Err(format!("window {id} is both open and sealed"));
            }
            for t in &m.tuples {
                if !t.is_finite() {
                    return Err(format!("non-finite tuple in memtable {id}"));
                }
                if window_id_of(self.config.window_secs, t.time) != id {
                    return Err(format!(
                        "tuple at t={} filed under window {id}",
                        t.time.as_secs()
                    ));
                }
            }
        }
        let retained = self
            .sealed
            .values()
            .map(|w| w.tuples.len() as u64)
            .sum::<u64>()
            + self
                .memtables
                .values()
                .map(|m| m.tuples.len() as u64)
                .sum::<u64>();
        if retained != self.durable_tuples {
            return Err(format!(
                "durable_upto {} but {retained} tuples retained",
                self.durable_tuples
            ));
        }
        Ok(())
    }

    /// Writes window `id`'s memtable to a `windows/` segment, switches the
    /// windows manifest atomically, and moves the memtable to the sealed
    /// map. The WAL still holds the tuples until [`Self::compact_wal`].
    fn seal_one(&mut self, id: u64) -> Result<(), StorageError> {
        let seq = u32::try_from(id).map_err(|_| StorageError::InvalidSegment {
            path: self.windows_dir.clone(),
            reason: format!("window id {id} exceeds the segment naming range"),
        })?;
        let Some(mem) = self.memtables.get(&id) else {
            return Ok(());
        };
        let mut w = SegmentWriter::create(&self.windows_dir, seq)?;
        w.append_batch(&mem.tuples)?;
        w.sync()?;
        let mut live: Vec<u32> = Vec::with_capacity(self.sealed.len() + 1);
        for &sid in self.sealed.keys() {
            // Sealed keys always fit u32 (they were sealed through this
            // same path), but stay total rather than assert.
            if let Ok(s) = u32::try_from(sid) {
                live.push(s);
            }
        }
        live.push(seq);
        live.sort_unstable();
        write_manifest(&self.windows_dir, &live)?;
        if let Some(mem) = self.memtables.remove(&id) {
            self.sealed.insert(id, SealedWindow { tuples: mem.tuples });
        }
        Ok(())
    }

    /// Rewrites the WAL down to the still-open memtables: one compacted
    /// segment plus a fresh active one, switched over atomically via the
    /// WAL manifest (the same crash-safe dance as `TupleStore::compact`).
    fn compact_wal(&mut self) -> Result<(), StorageError> {
        self.writer.sync()?;
        let old_seqs: Vec<u32> = self.wal_segments.iter().map(|&(s, _)| s).collect();
        let compacted_seq = self.writer.seq() + 1;
        let active_seq = compacted_seq + 1;
        let mut compacted = SegmentWriter::create(&self.wal_dir, compacted_seq)?;
        for mem in self.memtables.values() {
            compacted.append_batch(&mem.tuples)?;
        }
        compacted.sync()?;
        let compacted_bytes = compacted.len();
        let active = SegmentWriter::create(&self.wal_dir, active_seq)?;
        write_manifest(&self.wal_dir, &[compacted_seq, active_seq])?;
        for seq in old_seqs {
            let _ = std::fs::remove_file(self.wal_dir.join(segment_file_name(seq)));
        }
        self.wal_segments = vec![
            (compacted_seq, compacted_bytes),
            (active_seq, HEADER_SIZE as u64),
        ];
        self.writer = active;
        Ok(())
    }

    /// Forces a fresh active WAL segment (called on size rotation).
    fn rotate_wal(&mut self) -> Result<(), StorageError> {
        self.writer.sync()?;
        let next_seq = self.writer.seq() + 1;
        self.writer = SegmentWriter::create(&self.wal_dir, next_seq)?;
        self.wal_segments.push((next_seq, HEADER_SIZE as u64));
        let seqs: Vec<u32> = self.wal_segments.iter().map(|&(s, _)| s).collect();
        write_manifest(&self.wal_dir, &seqs)?;
        Ok(())
    }
}

impl DeepSize for WalStore {
    fn heap_size(&self) -> usize {
        // BTreeMap node overhead is approximated by the entry payloads;
        // what matters for capacity planning is the tuple buffers.
        let memtables: usize = self
            .memtables
            .values()
            .map(|m| std::mem::size_of::<(u64, Memtable)>() + m.heap_size())
            .sum();
        let sealed: usize = self
            .sealed
            .values()
            .map(|w| std::mem::size_of::<(u64, SealedWindow)>() + w.tuples.heap_size())
            .sum();
        memtables
            + sealed
            + self.scratch.heap_size()
            + self.wal_segments.capacity() * std::mem::size_of::<(u32, u64)>()
            + self.dir.as_os_str().len()
            + self.wal_dir.as_os_str().len()
            + self.windows_dir.as_os_str().len()
    }
}

/// The window id `c` of a timestamp — the `WindowSpec::ByDuration` mapping.
fn window_id_of(window_secs: i64, time: Timestamp) -> u64 {
    time.as_secs().div_euclid(window_secs) as u64
}

/// Lists the segment seqs present in `dir`, sorted.
fn discover_segments(dir: &Path) -> Result<Vec<u32>, StorageError> {
    let mut seqs: Vec<u32> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().and_then(parse_segment_file_name))
        .collect();
    seqs.sort_unstable();
    Ok(seqs)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use enviro_geo::Point;

    const H: i64 = 100;

    fn cfg() -> WalConfig {
        WalConfig {
            window_secs: H,
            max_wal_segment_bytes: 1 << 20,
        }
    }

    fn tuple(secs: i64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(secs), Point::new(1.0, 2.0), v)
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("enviro-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_recover_roundtrip() {
        let dir = tempdir("roundtrip");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        assert_eq!(w.durable_upto(), 0);
        assert_eq!(
            w.append_batch(&[tuple(10, 1.0), tuple(150, 2.0)]).unwrap(),
            2
        );
        assert_eq!(w.append_batch(&[tuple(20, 3.0)]).unwrap(), 3);
        drop(w);
        let w = WalStore::open(&dir, cfg()).unwrap();
        assert_eq!(w.durable_upto(), 3);
        assert_eq!(
            w.window_tuples(0).unwrap(),
            &[tuple(10, 1.0), tuple(20, 3.0)]
        );
        assert_eq!(w.window_tuples(1).unwrap(), &[tuple(150, 2.0)]);
        assert!(!w.stats().recovered_torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memtables_keep_arrival_order() {
        let dir = tempdir("order");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        // Out-of-time-order arrivals inside one window stay in arrival
        // order (the model build consumes them as the stream delivered
        // them).
        w.append_batch(&[tuple(50, 1.0), tuple(10, 2.0), tuple(30, 3.0)])
            .unwrap();
        assert_eq!(
            w.window_tuples(0).unwrap(),
            &[tuple(50, 1.0), tuple(10, 2.0), tuple(30, 3.0)]
        );
        drop(w);
        let w = WalStore::open(&dir, cfg()).unwrap();
        assert_eq!(
            w.window_tuples(0).unwrap(),
            &[tuple(50, 1.0), tuple(10, 2.0), tuple(30, 3.0)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_moves_window_and_compacts_wal() {
        let dir = tempdir("seal");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        for i in 0..50 {
            w.append_batch(&[tuple(i, 1.0), tuple(H + i, 2.0)]).unwrap();
        }
        let wal_before = w.stats().wal_bytes;
        let sealed = w.seal_windows_before(1).unwrap();
        assert_eq!(sealed, vec![0]);
        assert!(w.is_sealed(0));
        let s = w.stats();
        assert_eq!(s.sealed_windows, 1);
        assert_eq!(s.sealed_tuples, 50);
        assert_eq!(s.memtable_windows, 1);
        assert_eq!(s.durable_tuples, 100);
        assert!(
            s.wal_bytes < wal_before,
            "compaction should shrink the WAL: {} vs {wal_before}",
            s.wal_bytes
        );
        // Sealed data survives a reopen; WAL replay must not double count.
        drop(w);
        let w = WalStore::open(&dir, cfg()).unwrap();
        assert_eq!(w.durable_upto(), 100);
        assert_eq!(w.window_tuples(0).unwrap().len(), 50);
        assert_eq!(w.window_tuples(1).unwrap().len(), 50);
        assert!(w.is_sealed(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn late_tuples_are_acked_and_dropped() {
        let dir = tempdir("late");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        w.append_batch(&[tuple(10, 1.0)]).unwrap();
        w.seal_window(0).unwrap();
        let durable = w
            .append_batch(&[tuple(20, 2.0), tuple(H + 5, 3.0)])
            .unwrap();
        // The late tuple for sealed window 0 is dropped but the batch still
        // advances the watermark by the retained tuple.
        assert_eq!(durable, 2);
        assert_eq!(w.stats().late_tuples, 1);
        assert_eq!(w.window_tuples(0).unwrap(), &[tuple(10, 1.0)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_finite_tuples_are_rejected() {
        let dir = tempdir("nonfinite");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        let durable = w
            .append_batch(&[tuple(10, f64::NAN), tuple(20, 1.0)])
            .unwrap();
        assert_eq!(durable, 1);
        assert_eq!(w.stats().rejected_tuples, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_recovery() {
        let dir = tempdir("torn");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        w.append_batch(&[tuple(10, 1.0)]).unwrap();
        w.append_batch(&[tuple(20, 2.0)]).unwrap();
        drop(w);
        // Chop into the last batch.
        let path = dir.join("wal").join(segment_file_name(0));
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let w = WalStore::open(&dir, cfg()).unwrap();
        assert!(w.stats().recovered_torn_tail);
        assert_eq!(w.durable_upto(), 1);
        assert_eq!(w.window_tuples(0).unwrap(), &[tuple(10, 1.0)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_window_segment_is_cleaned_up() {
        let dir = tempdir("orphan");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        w.append_batch(&[tuple(10, 1.0)]).unwrap();
        drop(w);
        // Simulate a crash between writing a window segment and the
        // manifest switch: the file exists but no manifest names it.
        let windows = dir.join("windows");
        let mut orphan = SegmentWriter::create(&windows, 0).unwrap();
        orphan.append_batch(&[tuple(10, 99.0)]).unwrap();
        orphan.sync().unwrap();
        drop(orphan);
        let w = WalStore::open(&dir, cfg()).unwrap();
        // The orphan was deleted; the tuple came back from the WAL.
        assert!(!w.is_sealed(0));
        assert_eq!(w.window_tuples(0).unwrap(), &[tuple(10, 1.0)]);
        assert!(!windows.join(segment_file_name(0)).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_rotates_at_size_threshold() {
        let dir = tempdir("rotate");
        let mut w = WalStore::open(
            &dir,
            WalConfig {
                window_secs: H,
                max_wal_segment_bytes: 256,
            },
        )
        .unwrap();
        for i in 0..40 {
            w.append_batch(&[tuple(i, i as f64)]).unwrap();
        }
        assert!(w.stats().wal_segments > 1);
        drop(w);
        let w = WalStore::open(
            &dir,
            WalConfig {
                window_secs: H,
                max_wal_segment_bytes: 256,
            },
        )
        .unwrap();
        assert_eq!(w.durable_upto(), 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = tempdir("emptybatch");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        assert_eq!(w.append_batch(&[]).unwrap(), 0);
        assert_eq!(w.stats().memtable_windows, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_non_positive_window() {
        let dir = tempdir("badwin");
        let bad = WalConfig {
            window_secs: 0,
            max_wal_segment_bytes: 1 << 20,
        };
        assert!(WalStore::open(&dir, bad).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deep_size_counts_buffers() {
        let dir = tempdir("deepsize");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        let before = w.deep_size_of();
        let batch: Vec<RawTuple> = (0..100).map(|i| tuple(i, i as f64)).collect();
        w.append_batch(&batch).unwrap();
        let after = w.deep_size_of();
        assert!(
            after >= before + 100 * std::mem::size_of::<RawTuple>(),
            "{after} vs {before}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invariants_hold_through_the_lifecycle() {
        let dir = tempdir("invariants");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        for i in 0..30 {
            w.append_batch(&[tuple(i * 10, 1.0)]).unwrap();
            assert_eq!(w.check_invariants(), Ok(()));
        }
        w.seal_windows_before(2).unwrap();
        assert_eq!(w.check_invariants(), Ok(()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn max_window_id_spans_open_and_sealed() {
        let dir = tempdir("maxid");
        let mut w = WalStore::open(&dir, cfg()).unwrap();
        assert_eq!(w.max_window_id(), None);
        w.append_batch(&[tuple(10, 1.0), tuple(3 * H + 1, 2.0)])
            .unwrap();
        assert_eq!(w.max_window_id(), Some(3));
        w.seal_window(3).unwrap();
        assert_eq!(w.max_window_id(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
