//! Persistent raw-tuple storage for EnviroMeter.
//!
//! Figure 1 of the paper: "The sensed data is stored in a database in the
//! form of raw tuples." This crate is that database — deliberately shaped
//! like the write path of an LCSN ingestion node:
//!
//! * tuples arrive mostly in time order and are **append-only** (a sensor
//!   reading is a fact; there are no updates or deletes),
//! * reads are **time-range scans** (the window decomposition `W_c` and
//!   model building consume contiguous time slices),
//! * the process can die at any moment, so every batch is CRC-framed and
//!   recovery truncates at the first torn or corrupt batch.
//!
//! Layout: a store is a directory of segment files
//! (`seg-00000000.log`, `seg-00000001.log`, …). Each segment starts with a
//! 16-byte header and holds a sequence of *batches*:
//! `[u32 payload_len][u32 crc32(payload)][payload]`, where the payload is a
//! packed run of fixed 32-byte records `(i64 time, f64 x, f64 y, f64 s)`.
//!
//! ```
//! use enviro_data::{RawTuple, Timestamp};
//! use enviro_geo::Point;
//! use enviro_storage::TupleStore;
//!
//! let dir = std::env::temp_dir().join("enviro-doc-store");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = TupleStore::open(&dir).unwrap();
//! store.append(&[RawTuple::new(Timestamp::from_secs(60), Point::new(1.0, 2.0), 420.0)]).unwrap();
//! store.sync().unwrap();
//!
//! // Reopen (e.g. after a restart) and scan.
//! let store = TupleStore::open(&dir).unwrap();
//! let tuples = store.scan_range(Timestamp::ZERO, Timestamp::from_secs(3600)).unwrap();
//! assert_eq!(tuples.len(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod crc;
pub mod record;
pub mod segment;
pub mod store;
pub mod wal;

pub use store::{StorageError, StoreStats, TupleStore};
pub use wal::{Memtable, WalConfig, WalStats, WalStore};
