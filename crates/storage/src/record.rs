//! Fixed-size on-disk record encoding.

use bytes::{Buf, BufMut};
use enviro_data::{RawTuple, Timestamp};
use enviro_geo::Point;

/// Bytes per record: `i64 time + f64 x + f64 y + f64 value`.
pub const RECORD_SIZE: usize = 32;

/// Appends a tuple's 32-byte record to `out`.
pub fn encode_record(t: &RawTuple, out: &mut Vec<u8>) {
    out.put_i64_le(t.time.as_secs());
    out.put_f64_le(t.pos.x);
    out.put_f64_le(t.pos.y);
    out.put_f64_le(t.value);
}

/// Decodes one record from exactly [`RECORD_SIZE`] bytes.
///
/// # Panics
/// Panics if `buf` is shorter than [`RECORD_SIZE`]; callers frame records
/// inside CRC-checked batches whose length is a multiple of the record
/// size, so a short slice is a logic error, not a data error.
pub fn decode_record(mut buf: &[u8]) -> RawTuple {
    assert!(buf.len() >= RECORD_SIZE, "record buffer too short");
    let time = Timestamp::from_secs(buf.get_i64_le());
    let x = buf.get_f64_le();
    let y = buf.get_f64_le();
    let value = buf.get_f64_le();
    RawTuple::new(time, Point::new(x, y), value)
}

/// Encodes a batch payload: the concatenated records of `tuples`.
pub fn encode_batch(tuples: &[RawTuple]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuples.len() * RECORD_SIZE);
    for t in tuples {
        encode_record(t, &mut out);
    }
    out
}

/// Decodes a batch payload back into tuples.
///
/// Returns `None` when the payload length is not a multiple of the record
/// size (framing corruption that slipped past the CRC is still rejected).
pub fn decode_batch(payload: &[u8]) -> Option<Vec<RawTuple>> {
    if !payload.len().is_multiple_of(RECORD_SIZE) {
        return None;
    }
    Some(
        payload
            .chunks_exact(RECORD_SIZE)
            .map(decode_record)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(secs: i64) -> RawTuple {
        RawTuple::new(
            Timestamp::from_secs(secs),
            Point::new(secs as f64 * 1.5, -secs as f64),
            400.0 + secs as f64,
        )
    }

    #[test]
    fn record_roundtrip() {
        let t = tuple(123);
        let mut buf = Vec::new();
        encode_record(&t, &mut buf);
        assert_eq!(buf.len(), RECORD_SIZE);
        assert_eq!(decode_record(&buf), t);
    }

    #[test]
    fn record_roundtrip_extreme_values() {
        let t = RawTuple::new(
            Timestamp::from_secs(i64::MIN / 2),
            Point::new(f64::MAX / 2.0, f64::MIN_POSITIVE),
            -0.0,
        );
        let mut buf = Vec::new();
        encode_record(&t, &mut buf);
        assert_eq!(decode_record(&buf), t);
    }

    #[test]
    fn batch_roundtrip() {
        let tuples: Vec<RawTuple> = (0..17).map(tuple).collect();
        let payload = encode_batch(&tuples);
        assert_eq!(payload.len(), 17 * RECORD_SIZE);
        assert_eq!(decode_batch(&payload).unwrap(), tuples);
    }

    #[test]
    fn empty_batch() {
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn misaligned_payload_rejected() {
        let payload = encode_batch(&[tuple(1)]);
        assert!(decode_batch(&payload[..RECORD_SIZE - 1]).is_none());
    }
}
