//! The tuple store: a directory of segments with recovery and range scans.

use crate::segment::{
    parse_segment_file_name, read_segment, segment_file_name, SegmentWriter, HEADER_SIZE,
};
use enviro_data::{Dataset, Pollutant, RawTuple, Timestamp};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Default segment rotation threshold: ~1 MiB of records.
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 1 << 20;

/// Storage failures.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A file in the store directory is not a valid segment.
    InvalidSegment {
        /// The offending path.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::InvalidSegment { path, reason } => {
                write!(f, "invalid segment {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::InvalidSegment { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Summary statistics of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of segment files (including the active one).
    pub segments: usize,
    /// Total tuples across all segments.
    pub tuples: usize,
    /// Total bytes on disk (headers + frames).
    pub bytes: u64,
    /// `true` if recovery truncated a torn tail on open.
    pub recovered_torn_tail: bool,
}

/// In-memory index entry for one sealed or active segment.
#[derive(Debug, Clone)]
struct SegmentMeta {
    seq: u32,
    /// Tuples of the segment, in append order (the store is the system's
    /// durable buffer, not its big-data tier; windows are consumed soon
    /// after arrival, so segments stay resident).
    tuples: Vec<RawTuple>,
    bytes: u64,
}

/// An append-only, crash-recoverable store of raw tuples.
///
/// See the crate docs for the on-disk format. All appends go to the active
/// (highest-seq) segment; when it exceeds `max_segment_bytes` a new segment
/// is rotated in.
#[derive(Debug)]
pub struct TupleStore {
    dir: PathBuf,
    segments: Vec<SegmentMeta>,
    writer: SegmentWriter,
    max_segment_bytes: u64,
    recovered_torn_tail: bool,
}

impl TupleStore {
    /// Opens (or creates) a store in `dir` with the default rotation size.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open_with_segment_size(dir, DEFAULT_MAX_SEGMENT_BYTES)
    }

    /// Opens (or creates) a store with an explicit rotation threshold.
    ///
    /// Recovery: every segment is read and CRC-verified; a torn or corrupt
    /// tail on the *last* segment is truncated (the expected crash shape).
    /// A torn tail on an earlier segment means bytes were lost after they
    /// were acknowledged — that is reported as an error, not papered over.
    pub fn open_with_segment_size(
        dir: impl AsRef<Path>,
        max_segment_bytes: u64,
    ) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Discover segments.
        let mut seqs: Vec<u32> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().and_then(parse_segment_file_name))
            .collect();
        seqs.sort_unstable();
        // The manifest (if present) names the live segments; files not
        // listed are leftovers of an interrupted compaction and are
        // deleted here. No manifest = every discovered segment is live
        // (the pre-compaction layout).
        if let Some(live) = read_manifest(&dir)? {
            for &seq in &seqs {
                if !live.contains(&seq) {
                    let _ = std::fs::remove_file(dir.join(segment_file_name(seq)));
                }
            }
            seqs.retain(|s| live.contains(s));
        }
        let mut segments = Vec::with_capacity(seqs.len());
        let mut recovered_torn_tail = false;
        let last_idx = seqs.len().checked_sub(1);
        for (i, &seq) in seqs.iter().enumerate() {
            let path = dir.join(crate::segment::segment_file_name(seq));
            let contents = read_segment(&path).map_err(|e| StorageError::InvalidSegment {
                path: path.clone(),
                reason: e.to_string(),
            })?;
            if contents.truncated_tail {
                if Some(i) != last_idx {
                    return Err(StorageError::InvalidSegment {
                        path,
                        reason: "corrupt batch in a non-final segment".into(),
                    });
                }
                recovered_torn_tail = true;
            }
            segments.push(SegmentMeta {
                seq,
                tuples: contents.tuples,
                bytes: contents.clean_len,
            });
        }
        // Open the active writer: reopen the last segment (truncating any
        // torn tail) or create segment 0.
        let writer = match segments.last() {
            Some(last) => SegmentWriter::reopen(&dir, last.seq, last.bytes)?,
            None => {
                let w = SegmentWriter::create(&dir, 0)?;
                segments.push(SegmentMeta {
                    seq: 0,
                    tuples: Vec::new(),
                    bytes: HEADER_SIZE as u64,
                });
                w
            }
        };
        let store = Self {
            dir,
            segments,
            writer,
            max_segment_bytes,
            recovered_torn_tail,
        };
        // Recovery is exactly where a subtly-wrong store would enter the
        // system; fail loudly in debug builds before it can serve reads.
        debug_assert_eq!(store.check_invariants(), Ok(()));
        Ok(store)
    }

    /// Verifies the store's structural invariants, returning the first
    /// violation found.
    ///
    /// Checked (in debug builds) after recovery and after every mutation:
    /// * at least one segment exists (the active one);
    /// * segment sequence numbers are strictly increasing;
    /// * every segment accounts for at least its header bytes;
    /// * the writer is positioned on the last segment, at its clean length.
    pub fn check_invariants(&self) -> Result<(), String> {
        let Some(last) = self.segments.last() else {
            return Err("no active segment".into());
        };
        for pair in self.segments.windows(2) {
            if pair[0].seq >= pair[1].seq {
                return Err(format!(
                    "segment seqs not strictly increasing: {} then {}",
                    pair[0].seq, pair[1].seq
                ));
            }
        }
        for seg in &self.segments {
            if seg.bytes < HEADER_SIZE as u64 {
                return Err(format!(
                    "segment {} accounts for {} bytes, less than its header",
                    seg.seq, seg.bytes
                ));
            }
            if seg.tuples.is_empty() && seg.bytes > HEADER_SIZE as u64 {
                return Err(format!(
                    "segment {} has {} data bytes but no tuples",
                    seg.seq, seg.bytes
                ));
            }
        }
        if self.writer.seq() != last.seq {
            return Err(format!(
                "writer on segment {}, but last segment is {}",
                self.writer.seq(),
                last.seq
            ));
        }
        if self.writer.len() != last.bytes {
            return Err(format!(
                "writer at {} bytes, but segment {} accounts for {}",
                self.writer.len(),
                last.seq,
                last.bytes
            ));
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Store statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            segments: self.segments.len(),
            tuples: self.segments.iter().map(|s| s.tuples.len()).sum(),
            bytes: self.segments.iter().map(|s| s.bytes).sum(),
            recovered_torn_tail: self.recovered_torn_tail,
        }
    }

    /// Appends a batch of tuples durably framed as one CRC unit.
    ///
    /// Rotates to a new segment when the active one exceeds the threshold.
    pub fn append(&mut self, tuples: &[RawTuple]) -> Result<(), StorageError> {
        if tuples.is_empty() {
            return Ok(());
        }
        if self.writer.len() >= self.max_segment_bytes {
            self.rotate()?;
        }
        self.writer.append_batch(tuples)?;
        let Some(active) = self.segments.last_mut() else {
            // Unreachable by construction (open always installs an active
            // segment), but a torn internal state must not become a panic
            // in the ingest path.
            return Err(StorageError::Io(io::Error::other(
                "no active segment in store state",
            )));
        };
        active.tuples.extend_from_slice(tuples);
        active.bytes = self.writer.len();
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(())
    }

    /// Compacts the store: rewrites every tuple, in time order, into one
    /// fresh segment, atomically switches the manifest over, then deletes
    /// the old files.
    ///
    /// Crash safety: the new segment is written and fsynced first; the
    /// manifest switch is an atomic rename; a crash before the switch
    /// leaves the old layout intact (the unlisted new segment is cleaned
    /// up on the next open), a crash after it leaves the new layout (the
    /// old unlisted segments are cleaned up on the next open).
    pub fn compact(&mut self) -> Result<(), StorageError> {
        self.writer.sync()?;
        let old_seqs: Vec<u32> = self.segments.iter().map(|s| s.seq).collect();
        let compacted_seq = self.writer.seq() + 1;
        let active_seq = compacted_seq + 1;
        // 1. Write all data (time-sorted) into the compacted segment.
        let mut all: Vec<RawTuple> = self
            .segments
            .iter()
            .flat_map(|s| s.tuples.iter())
            .copied()
            .collect();
        all.sort_by_key(|t| t.time);
        let mut compacted = SegmentWriter::create(&self.dir, compacted_seq)?;
        compacted.append_batch(&all)?;
        compacted.sync()?;
        let compacted_bytes = compacted.len();
        // 2. Fresh active segment for future appends.
        let active = SegmentWriter::create(&self.dir, active_seq)?;
        // 3. Atomic switchover.
        write_manifest(&self.dir, &[compacted_seq, active_seq])?;
        // 4. Old files are now dead; delete them (best-effort — recovery
        //    would also clean them).
        for seq in old_seqs {
            let _ = std::fs::remove_file(self.dir.join(segment_file_name(seq)));
        }
        self.segments = vec![
            SegmentMeta {
                seq: compacted_seq,
                tuples: all,
                bytes: compacted_bytes,
            },
            SegmentMeta {
                seq: active_seq,
                tuples: Vec::new(),
                bytes: HEADER_SIZE as u64,
            },
        ];
        self.writer = active;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(())
    }

    /// Forces a new segment (also called automatically on size rotation).
    pub fn rotate(&mut self) -> Result<(), StorageError> {
        self.writer.sync()?;
        let next_seq = self.writer.seq() + 1;
        self.writer = SegmentWriter::create(&self.dir, next_seq)?;
        self.segments.push(SegmentMeta {
            seq: next_seq,
            tuples: Vec::new(),
            bytes: HEADER_SIZE as u64,
        });
        // Keep the manifest (if one exists) covering the new segment.
        if read_manifest(&self.dir)?.is_some() {
            let seqs: Vec<u32> = self.segments.iter().map(|s| s.seq).collect();
            write_manifest(&self.dir, &seqs)?;
        }
        debug_assert_eq!(self.check_invariants(), Ok(()));
        Ok(())
    }

    /// Flushes and fsyncs the active segment.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.writer.sync()?;
        Ok(())
    }

    /// All tuples with `time ∈ [from, to)`, in time order.
    pub fn scan_range(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<Vec<RawTuple>, StorageError> {
        let mut out: Vec<RawTuple> = self
            .segments
            .iter()
            .flat_map(|s| s.tuples.iter())
            .filter(|t| t.time >= from && t.time < to)
            .copied()
            .collect();
        out.sort_by_key(|t| t.time);
        Ok(out)
    }

    /// Every stored tuple as a time-sorted [`Dataset`] — the handoff point
    /// to the query engine.
    pub fn load_dataset(&self, pollutant: Pollutant) -> Result<Dataset, StorageError> {
        let tuples: Vec<RawTuple> = self
            .segments
            .iter()
            .flat_map(|s| s.tuples.iter())
            .copied()
            .collect();
        Dataset::from_tuples(pollutant, tuples).map_err(|reason| StorageError::InvalidSegment {
            path: self.dir.clone(),
            reason,
        })
    }
}

/// Manifest file name.
const MANIFEST: &str = "MANIFEST";

/// Reads the manifest: one decimal segment seq per line. `None` if absent.
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<Vec<u32>>, StorageError> {
    let path = dir.join(MANIFEST);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut seqs = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let seq = line.parse().map_err(|_| StorageError::InvalidSegment {
            path: path.clone(),
            reason: format!("bad manifest line {line:?}"),
        })?;
        seqs.push(seq);
    }
    Ok(Some(seqs))
}

/// Writes the manifest atomically (temp file + fsync + rename).
pub(crate) fn write_manifest(dir: &Path, seqs: &[u32]) -> Result<(), StorageError> {
    use std::io::Write as _;
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        for seq in seqs {
            writeln!(f, "{seq}")?;
        }
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(MANIFEST))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_geo::Point;

    fn tuple(secs: i64) -> RawTuple {
        RawTuple::new(
            Timestamp::from_secs(secs),
            Point::new(secs as f64, 0.0),
            400.0 + secs as f64,
        )
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("enviro-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_append_reopen_scan() {
        let dir = tempdir("basic");
        {
            let mut store = TupleStore::open(&dir).unwrap();
            store.append(&[tuple(10), tuple(20)]).unwrap();
            store.append(&[tuple(30)]).unwrap();
            store.sync().unwrap();
        }
        let store = TupleStore::open(&dir).unwrap();
        let stats = store.stats();
        assert_eq!(stats.tuples, 3);
        assert!(!stats.recovered_torn_tail);
        let got = store
            .scan_range(Timestamp::from_secs(10), Timestamp::from_secs(30))
            .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].time.as_secs(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_range_is_half_open_and_sorted() {
        let dir = tempdir("range");
        let mut store = TupleStore::open(&dir).unwrap();
        // Out-of-order appends across batches.
        store.append(&[tuple(30), tuple(10)]).unwrap();
        store.append(&[tuple(20)]).unwrap();
        let got = store
            .scan_range(Timestamp::from_secs(10), Timestamp::from_secs(30))
            .unwrap();
        let times: Vec<i64> = got.iter().map(|t| t.time.as_secs()).collect();
        assert_eq!(times, vec![10, 20]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_by_size() {
        let dir = tempdir("rotate");
        // Tiny threshold: rotate after every ~2 records.
        let mut store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        for i in 0..10 {
            store.append(&[tuple(i)]).unwrap();
        }
        let stats = store.stats();
        assert!(stats.segments >= 3, "expected rotation, got {stats:?}");
        assert_eq!(stats.tuples, 10);
        // Reopen sees all segments and all tuples.
        drop(store);
        let store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        assert_eq!(store.stats().tuples, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_truncates_torn_tail_and_keeps_appending() {
        let dir = tempdir("recover");
        {
            let mut store = TupleStore::open(&dir).unwrap();
            store.append(&[tuple(1)]).unwrap();
            store.append(&[tuple(2)]).unwrap();
            store.sync().unwrap();
        }
        // Simulate a torn write: chop the last 5 bytes of the only segment.
        let seg = dir.join(crate::segment::segment_file_name(0));
        let len = std::fs::metadata(&seg).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        // Recovery drops the torn batch, keeps the clean one, and appends
        // continue from the truncation point.
        let mut store = TupleStore::open(&dir).unwrap();
        let stats = store.stats();
        assert_eq!(stats.tuples, 1);
        assert!(stats.recovered_torn_tail);
        store.append(&[tuple(3)]).unwrap();
        store.sync().unwrap();
        drop(store);
        let store = TupleStore::open(&dir).unwrap();
        let all = store
            .scan_range(Timestamp::from_secs(0), Timestamp::from_secs(100))
            .unwrap();
        let times: Vec<i64> = all.iter().map(|t| t.time.as_secs()).collect();
        assert_eq!(times, vec![1, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_is_an_error() {
        let dir = tempdir("midcorrupt");
        {
            let mut store = TupleStore::open_with_segment_size(&dir, 60).unwrap();
            for i in 0..6 {
                store.append(&[tuple(i)]).unwrap();
            }
            store.sync().unwrap();
            assert!(store.stats().segments >= 2);
        }
        // Corrupt the FIRST segment (acknowledged data).
        let seg = dir.join(crate::segment::segment_file_name(0));
        let mut data = std::fs::read(&seg).unwrap();
        let idx = data.len() - 3;
        data[idx] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();
        match TupleStore::open_with_segment_size(&dir, 60) {
            Err(StorageError::InvalidSegment { reason, .. }) => {
                assert!(reason.contains("non-final"), "{reason}")
            }
            other => panic!("expected InvalidSegment, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_segment_fails_open_with_typed_error() {
        let dir = tempdir("badmagic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(crate::segment::segment_file_name(0)),
            b"NOTASEGM\x01\x00\x00\x00\x00\x00\x00\x00",
        )
        .unwrap();
        match TupleStore::open(&dir) {
            Err(StorageError::InvalidSegment { path, reason }) => {
                assert!(path.ends_with(crate::segment::segment_file_name(0)));
                assert!(reason.contains("not a segment"), "{reason}");
            }
            other => panic!("expected InvalidSegment, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsupported_version_fails_open_with_typed_error() {
        let dir = tempdir("badversion");
        {
            let mut store = TupleStore::open(&dir).unwrap();
            store.append(&[tuple(1)]).unwrap();
            store.sync().unwrap();
        }
        let seg = dir.join(crate::segment::segment_file_name(0));
        let mut data = std::fs::read(&seg).unwrap();
        data[8] = 0xEE; // version field
        std::fs::write(&seg, &data).unwrap();
        match TupleStore::open(&dir) {
            Err(StorageError::InvalidSegment { reason, .. }) => {
                assert!(reason.contains("version"), "{reason}")
            }
            other => panic!("expected InvalidSegment, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_only_truncation_fails_open_with_typed_error() {
        let dir = tempdir("shortheader");
        {
            let mut store = TupleStore::open(&dir).unwrap();
            store.append(&[tuple(1)]).unwrap();
            store.sync().unwrap();
        }
        // Chop into the 16-byte header itself: not even a valid empty
        // segment remains, so this is a hard error, not a torn tail.
        let seg = dir.join(crate::segment::segment_file_name(0));
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(9)
            .unwrap();
        assert!(matches!(
            TupleStore::open(&dir),
            Err(StorageError::InvalidSegment { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invariants_hold_through_append_rotate_compact_recover() {
        let dir = tempdir("invariants");
        let mut store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        assert_eq!(store.check_invariants(), Ok(()));
        for i in 0..10 {
            store.append(&[tuple(i)]).unwrap();
            assert_eq!(store.check_invariants(), Ok(()));
        }
        store.compact().unwrap();
        assert_eq!(store.check_invariants(), Ok(()));
        store.sync().unwrap();
        drop(store);
        let store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        assert_eq!(store.check_invariants(), Ok(()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dataset_sorted_for_engine() {
        let dir = tempdir("dataset");
        let mut store = TupleStore::open(&dir).unwrap();
        store.append(&[tuple(50), tuple(10), tuple(30)]).unwrap();
        let ds = store.load_dataset(Pollutant::Co2).unwrap();
        assert_eq!(ds.len(), 3);
        assert!(ds.tuples().windows(2).all(|w| w[0].time <= w[1].time));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_behaviour() {
        let dir = tempdir("empty");
        let store = TupleStore::open(&dir).unwrap();
        assert_eq!(store.stats().tuples, 0);
        assert_eq!(store.stats().segments, 1); // the active segment
        assert!(store
            .scan_range(Timestamp::ZERO, Timestamp::from_days(100))
            .unwrap()
            .is_empty());
        assert!(store.load_dataset(Pollutant::Co2).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_files_are_ignored() {
        let dir = tempdir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), b"not a segment").unwrap();
        let mut store = TupleStore::open(&dir).unwrap();
        store.append(&[tuple(1)]).unwrap();
        assert_eq!(store.stats().tuples, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_merges_segments_and_preserves_data() {
        let dir = tempdir("compact");
        let mut store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        for i in 0..12 {
            store.append(&[tuple(11 - i)]).unwrap(); // reverse time order
        }
        assert!(store.stats().segments >= 3);
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.segments, 2); // compacted + fresh active
        assert_eq!(stats.tuples, 12);
        // Appends keep working after compaction.
        store.append(&[tuple(100)]).unwrap();
        store.sync().unwrap();
        // And survive reopen.
        drop(store);
        let store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        let all = store
            .scan_range(Timestamp::from_secs(0), Timestamp::from_secs(1_000))
            .unwrap();
        assert_eq!(all.len(), 13);
        assert!(all.windows(2).all(|w| w[0].time <= w[1].time));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_compaction_cleans_up_on_open() {
        let dir = tempdir("compact-crash");
        {
            let mut store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
            for i in 0..8 {
                store.append(&[tuple(i)]).unwrap();
            }
            store.compact().unwrap();
            store.append(&[tuple(50)]).unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash mid-compaction: an orphan segment that is not in
        // the manifest.
        {
            let mut orphan = crate::segment::SegmentWriter::create(&dir, 999).unwrap();
            orphan.append_batch(&[tuple(777)]).unwrap();
            orphan.sync().unwrap();
        }
        let store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        // The orphan's tuple must NOT appear, and its file must be gone.
        let all = store
            .scan_range(Timestamp::from_secs(0), Timestamp::from_secs(10_000))
            .unwrap();
        assert_eq!(all.len(), 9);
        assert!(!dir.join(crate::segment::segment_file_name(999)).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_after_compaction_keeps_manifest_live() {
        let dir = tempdir("compact-rotate");
        let mut store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        for i in 0..6 {
            store.append(&[tuple(i)]).unwrap();
        }
        store.compact().unwrap();
        // Force several post-compaction rotations.
        for i in 6..14 {
            store.append(&[tuple(i)]).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        let store = TupleStore::open_with_segment_size(&dir, 80).unwrap();
        assert_eq!(store.stats().tuples, 14);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_empty_batch_is_noop() {
        let dir = tempdir("noop");
        let mut store = TupleStore::open(&dir).unwrap();
        let before = store.stats();
        store.append(&[]).unwrap();
        assert_eq!(store.stats(), before);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
