//! Segment files: CRC-framed batch logs.
//!
//! A segment is `HEADER ++ batch*` where `HEADER = MAGIC(8) ++ version(u32)
//! ++ seq(u32)` and each batch is `[u32 len][u32 crc32(payload)][payload]`.
//! Readers stop at the first incomplete or corrupt batch and report how
//! many clean bytes precede it, letting the store truncate torn tails on
//! recovery.

use crate::crc::crc32;
use crate::record::{decode_batch, encode_batch};
use bytes::BufMut;
use enviro_data::RawTuple;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 8] = *b"ENVIROS1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header length in bytes.
pub const HEADER_SIZE: usize = MAGIC.len() + 4 + 4;

/// File name of segment `seq`.
pub fn segment_file_name(seq: u32) -> String {
    format!("seg-{seq:08}.log")
}

/// Parses a segment sequence number from a file name.
pub fn parse_segment_file_name(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if rest.len() != 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// An open segment accepting appended batches.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    seq: u32,
    /// Bytes written so far, header included.
    len: u64,
}

impl SegmentWriter {
    /// Creates a new segment file (fails if it already exists).
    pub fn create(dir: &Path, seq: u32) -> io::Result<Self> {
        let path = dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(HEADER_SIZE);
        header.extend_from_slice(&MAGIC);
        header.put_u32_le(VERSION);
        header.put_u32_le(seq);
        file.write_all(&header)?;
        Ok(Self {
            file,
            path,
            seq,
            len: HEADER_SIZE as u64,
        })
    }

    /// Reopens an existing, verified segment for appending at `len` bytes.
    pub fn reopen(dir: &Path, seq: u32, len: u64) -> io::Result<Self> {
        let path = dir.join(segment_file_name(seq));
        let file = OpenOptions::new().write(true).open(&path)?;
        // Truncate any torn tail found during verification.
        file.set_len(len)?;
        let mut w = Self {
            file,
            path,
            seq,
            len,
        };
        use std::io::Seek;
        w.file.seek(io::SeekFrom::Start(len))?;
        Ok(w)
    }

    /// Segment sequence number.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// Bytes in the segment so far (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no batch has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == HEADER_SIZE as u64
    }

    /// The segment's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one CRC-framed batch of tuples.
    pub fn append_batch(&mut self, tuples: &[RawTuple]) -> io::Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        let payload = encode_batch(tuples);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Flushes buffered data and fsyncs the file.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()
    }
}

/// The outcome of reading a segment.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentContents {
    /// Sequence number from the header.
    pub seq: u32,
    /// Every tuple in clean batches, in append order.
    pub tuples: Vec<RawTuple>,
    /// Bytes of clean data (header + intact batches). Anything past this
    /// offset is a torn or corrupt tail.
    pub clean_len: u64,
    /// `true` when a torn/corrupt tail was detected (and skipped).
    pub truncated_tail: bool,
}

/// Reads and verifies a segment file.
///
/// Bad headers are hard errors (the file is not a segment); bad batches are
/// *expected* after a crash and reported via `clean_len`/`truncated_tail`.
pub fn read_segment(path: &Path) -> io::Result<SegmentContents> {
    let mut file = File::open(path)?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    if data.len() < HEADER_SIZE || data[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a segment file", path.display()),
        ));
    }
    let version = u32_at(&data, 8);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: unsupported version {version}", path.display()),
        ));
    }
    let seq = u32_at(&data, 12);

    let mut tuples = Vec::new();
    let mut offset = HEADER_SIZE;
    let mut truncated_tail = false;
    while offset < data.len() {
        // Need a complete 8-byte frame header.
        if offset + 8 > data.len() {
            truncated_tail = true;
            break;
        }
        let len = u32_at(&data, offset) as usize;
        let crc = u32_at(&data, offset + 4);
        let start = offset + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= data.len() => e,
            _ => {
                truncated_tail = true;
                break;
            }
        };
        let payload = &data[start..end];
        if crc32(payload) != crc {
            truncated_tail = true;
            break;
        }
        match decode_batch(payload) {
            Some(batch) => tuples.extend(batch),
            None => {
                truncated_tail = true;
                break;
            }
        }
        offset = end;
    }
    Ok(SegmentContents {
        seq,
        tuples,
        clean_len: offset as u64,
        truncated_tail,
    })
}

/// Little-endian `u32` at `at`; the caller has already bounds-checked
/// `at + 4 <= data.len()`.
fn u32_at(data: &[u8], at: usize) -> u32 {
    let mut bytes = [0u8; 4];
    bytes.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::Timestamp;
    use enviro_geo::Point;

    fn tuple(secs: i64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(secs), Point::new(1.0, 2.0), 400.0)
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("enviro-seg-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_name_roundtrip() {
        assert_eq!(segment_file_name(7), "seg-00000007.log");
        assert_eq!(parse_segment_file_name("seg-00000007.log"), Some(7));
        assert_eq!(parse_segment_file_name("seg-7.log"), None);
        assert_eq!(parse_segment_file_name("other.log"), None);
        assert_eq!(parse_segment_file_name("seg-0000000x.log"), None);
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tempdir("roundtrip");
        let mut w = SegmentWriter::create(&dir, 3).unwrap();
        w.append_batch(&[tuple(1), tuple(2)]).unwrap();
        w.append_batch(&[tuple(3)]).unwrap();
        w.sync().unwrap();
        let c = read_segment(&dir.join(segment_file_name(3))).unwrap();
        assert_eq!(c.seq, 3);
        assert_eq!(c.tuples.len(), 3);
        assert!(!c.truncated_tail);
        assert_eq!(c.clean_len, w.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_segment_reads_empty() {
        let dir = tempdir("empty");
        let w = SegmentWriter::create(&dir, 0).unwrap();
        assert!(w.is_empty());
        let c = read_segment(&dir.join(segment_file_name(0))).unwrap();
        assert!(c.tuples.is_empty());
        assert!(!c.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_skipped() {
        let dir = tempdir("torn");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append_batch(&[tuple(1)]).unwrap();
        let clean = w.len();
        w.append_batch(&[tuple(2), tuple(3)]).unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_file_name(0));
        // Chop the last batch mid-payload (a torn write).
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 10).unwrap();
        let c = read_segment(&path).unwrap();
        assert_eq!(c.tuples.len(), 1);
        assert!(c.truncated_tail);
        assert_eq!(c.clean_len, clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_stops_reading() {
        let dir = tempdir("crc");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append_batch(&[tuple(1)]).unwrap();
        w.append_batch(&[tuple(2)]).unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_file_name(0));
        let mut data = std::fs::read(&path).unwrap();
        // Flip one bit in the second batch's payload.
        let idx = data.len() - 5;
        data[idx] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let c = read_segment(&path).unwrap();
        assert_eq!(c.tuples.len(), 1);
        assert!(c.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_is_hard_error() {
        let dir = tempdir("magic");
        let path = dir.join(segment_file_name(0));
        std::fs::write(&path, b"definitely not a segment").unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends_after_clean_prefix() {
        let dir = tempdir("reopen");
        let mut w = SegmentWriter::create(&dir, 1).unwrap();
        w.append_batch(&[tuple(1)]).unwrap();
        w.sync().unwrap();
        let clean = w.len();
        drop(w);
        let mut w2 = SegmentWriter::reopen(&dir, 1, clean).unwrap();
        w2.append_batch(&[tuple(2)]).unwrap();
        w2.sync().unwrap();
        let c = read_segment(&dir.join(segment_file_name(1))).unwrap();
        assert_eq!(c.tuples.len(), 2);
        assert!(!c.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn huge_declared_length_is_treated_as_torn() {
        let dir = tempdir("hugelen");
        let mut w = SegmentWriter::create(&dir, 0).unwrap();
        w.append_batch(&[tuple(1)]).unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_file_name(0));
        let mut data = std::fs::read(&path).unwrap();
        // Append a frame header declaring a gigantic payload.
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let c = read_segment(&path).unwrap();
        assert_eq!(c.tuples.len(), 1);
        assert!(c.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
