//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Implemented from scratch with a lazily built 256-entry lookup table —
//! the standard framing checksum for log-structured storage, kept local to
//! stay inside the approved dependency set.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry table, computed once.
fn table() -> &'static [u32; 256] {
    use enviro_schedule::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_test_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"EnviroMeter raw tuple batch".to_vec();
        let before = crc32(&data);
        data[5] ^= 0x01;
        assert_ne!(crc32(&data), before);
    }

    #[test]
    fn detects_transposition() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
