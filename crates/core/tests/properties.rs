//! Property-based tests for the core algorithms: whatever the data looks
//! like, the structural invariants of clustering, covers and query
//! processing must hold.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{Pollutant, QueryTuple, RawTuple, Timestamp, Window};
use enviro_geo::Point;
use enviro_meter::{
    AdKmn, AdKmnConfig, CoverBuilder, FitConfig, KMeans, KMeansConfig, NaiveProcessor,
    PointQueryProcessor, RegionModel,
};
use proptest::prelude::*;

fn arb_tuples(max: usize) -> impl Strategy<Value = Vec<RawTuple>> {
    prop::collection::vec(
        (
            0i64..100_000,
            -5_000.0..5_000.0f64,
            -5_000.0..5_000.0f64,
            100.0..2_000.0f64,
        ),
        0..max,
    )
    .prop_map(|v| {
        let mut tuples: Vec<RawTuple> = v
            .into_iter()
            .map(|(t, x, y, s)| RawTuple::new(Timestamp::from_secs(t), Point::new(x, y), s))
            .collect();
        tuples.sort_by_key(|t| t.time);
        tuples
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_assignment_is_nearest_centroid(
        pts in prop::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 1..80),
        k in 1usize..8,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let c = KMeans::fit(&points, k, &KMeansConfig::default());
        prop_assert_eq!(c.assignment.len(), points.len());
        for (p, &a) in points.iter().zip(&c.assignment) {
            let d_assigned = c.centroids[a].distance_sq(p);
            for other in &c.centroids {
                prop_assert!(d_assigned <= other.distance_sq(p) + 1e-9);
            }
        }
    }

    #[test]
    fn adkmn_result_invariants(tuples in arb_tuples(120)) {
        let cfg = AdKmnConfig {
            max_models: 12,
            max_rounds: 6,
            ..AdKmnConfig::default()
        };
        let r = AdKmn::new(cfg.clone()).run(&tuples, Pollutant::Co2);
        // Alignment.
        prop_assert_eq!(r.centroids.len(), r.models.len());
        prop_assert_eq!(r.centroids.len(), r.errors.len());
        prop_assert_eq!(r.assignment.len(), tuples.len());
        // Bounds.
        prop_assert!(r.centroids.len() <= cfg.max_models.max(cfg.initial_k));
        prop_assert!(r.rounds <= cfg.max_rounds);
        prop_assert!(r.assignment.iter().all(|&a| a < r.centroids.len().max(1)));
        // Everything finite.
        prop_assert!(r.centroids.iter().all(Point::is_finite));
    }

    #[test]
    fn cover_interpolation_is_nearest_region_prediction(tuples in arb_tuples(100)) {
        let window = Window {
            id: 0,
            tuples: &tuples,
            valid_until: Timestamp::from_secs(200_000),
        };
        let cover = CoverBuilder::new(AdKmnConfig::default()).build(&window, Pollutant::Co2);
        prop_assert_eq!(cover.is_empty(), tuples.is_empty());
        let q = Point::new(123.0, -456.0);
        let t = Timestamp::from_secs(50_000);
        match (cover.interpolate(t, &q), cover.nearest_region(&q)) {
            (Some(v), Some((_, region))) => {
                prop_assert_eq!(v, region.model.predict(t, &q));
                prop_assert!(v.is_finite());
            }
            (None, None) => {}
            other => prop_assert!(false, "inconsistent cover: {:?}", other),
        }
    }

    #[test]
    fn cover_population_sums_to_window_size(tuples in arb_tuples(100)) {
        let window = Window {
            id: 0,
            tuples: &tuples,
            valid_until: Timestamp::from_secs(200_000),
        };
        let cover = CoverBuilder::new(AdKmnConfig::default()).build(&window, Pollutant::Co2);
        let total: usize = cover.regions.iter().map(|r| r.population).sum();
        prop_assert_eq!(total, tuples.len());
        prop_assert!(cover.regions.iter().all(|r| r.population > 0));
    }

    #[test]
    fn linear_model_predictions_stay_in_training_range(tuples in arb_tuples(80)) {
        prop_assume!(tuples.len() >= 8);
        if let Some(model) = RegionModel::fit(&tuples, &FitConfig::default()) {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for t in &tuples {
                lo = lo.min(t.value);
                hi = hi.max(t.value);
            }
            let margin = (hi - lo) * 0.1 + 1e-9;
            // Anywhere — even absurdly far away — the prediction must stay
            // inside the (extended) training value range.
            for q in [
                Point::new(0.0, 0.0),
                Point::new(1.0e6, -1.0e6),
                Point::new(-4.2e7, 9.9e7),
            ] {
                let v = model.predict(Timestamp::from_secs(123), &q);
                prop_assert!(v >= lo - margin && v <= hi + margin, "{v} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn naive_answer_is_within_neighbourhood_value_range(
        tuples in arb_tuples(80),
        qx in -5_000.0..5_000.0f64,
        qy in -5_000.0..5_000.0f64,
    ) {
        let proc = NaiveProcessor::new(&tuples, 1_000.0);
        let q = QueryTuple::new(Timestamp::from_secs(0), Point::new(qx, qy));
        if let Some(v) = proc.interpolate(&q) {
            let in_radius: Vec<f64> = tuples
                .iter()
                .filter(|t| t.pos.distance(&q.pos) <= 1_000.0)
                .map(|t| t.value)
                .collect();
            prop_assert!(!in_radius.is_empty());
            let lo = in_radius.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = in_radius.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn warm_start_respects_caps(tuples in arb_tuples(100), n_seeds in 1usize..20) {
        let cfg = AdKmnConfig {
            max_models: 6,
            ..AdKmnConfig::default()
        };
        let seeds: Vec<Point> = (0..n_seeds)
            .map(|i| Point::new(i as f64 * 100.0, -(i as f64) * 50.0))
            .collect();
        let r = AdKmn::new(cfg).run_seeded(&tuples, Pollutant::Co2, &seeds);
        prop_assert!(r.model_count() <= 6);
        prop_assert_eq!(r.assignment.len(), tuples.len());
    }
}
