//! Deterministic-schedule model checks for the cover-publication path.
//!
//! Compiled only under `RUSTFLAGS="--cfg enviro_schedules"` (the CI
//! `concurrency-check` job); an ordinary `cargo test` sees an empty file.
//! Each harness hands a closure to [`enviro_schedule::explore`], which
//! re-executes it under every thread interleaving within the preemption
//! bound and panics with a replayable `SCHED_REPLAY=` path on the first
//! schedule that violates an assertion.
#![cfg(enviro_schedules)]

use enviro_data::{Pollutant, RawTuple, Timestamp, Window};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, CoverBuilder, CoverRegistry, ModelCover, PublishedCover};
use enviro_schedule::sync::Arc;

/// Builds one real cover outside the model (Ad-KMN is deterministic and
/// single-threaded; rebuilding it per schedule would only slow the search).
fn built_cover(window_id: u64) -> Arc<ModelCover> {
    let tuples: Vec<RawTuple> = (0..12)
        .map(|i| {
            RawTuple::new(
                Timestamp::from_secs(i * 60),
                Point::new(i as f64 * 40.0, -(i as f64) * 15.0),
                420.0 + i as f64,
            )
        })
        .collect();
    let window = Window {
        id: window_id,
        tuples: &tuples,
        valid_until: Timestamp::from_secs((window_id as i64 + 1) * 3_600),
    };
    Arc::new(CoverBuilder::new(AdKmnConfig::default()).build(&window, Pollutant::Co2))
}

/// The registry's core promise: a reader that observes generation `g`
/// through the atomic also finds at least `g` publications' worth of
/// content in a *subsequent* snapshot — the generation bump never becomes
/// visible before the swapped set does.
#[test]
fn generation_never_leads_cover_contents() {
    let cover = built_cover(0);
    let report = enviro_schedule::explore("cover-registry-publish", move || {
        let registry = Arc::new(CoverRegistry::new());
        let writer = {
            let registry = Arc::clone(&registry);
            let cover = Arc::clone(&cover);
            enviro_schedule::thread::spawn(move || {
                registry.publish(vec![PublishedCover {
                    window_id: 0,
                    first_time: Timestamp::from_secs(0),
                    cover,
                }])
            })
        };
        // The racing reader: generation first, snapshot second. Any
        // schedule where the bump lands before the swap is visible fails.
        let gen = registry.generation();
        let snap = registry.snapshot();
        assert!(
            gen as usize <= snap.len(),
            "generation {gen} observed but snapshot holds {} covers",
            snap.len()
        );
        snap.check_invariants().expect("snapshot is never torn");
        let published_gen = writer.join().expect("writer ran");
        assert_eq!(published_gen, 1);
        assert_eq!(registry.generation(), 1);
        assert_eq!(registry.snapshot().len(), 1);
    });
    println!("{report}");
    assert!(report.schedules > 1, "the race must actually be explored");
}

/// Two concurrent publishers of different windows: both publications must
/// survive, generations stay monotone, and no interleaving tears the set.
#[test]
fn concurrent_publishers_never_lose_an_update() {
    let cover_a = built_cover(0);
    let cover_b = built_cover(1);
    let report = enviro_schedule::explore("cover-registry-two-writers", move || {
        let registry = Arc::new(CoverRegistry::new());
        let spawn_publish = |window_id: u64, cover: &Arc<ModelCover>| {
            let registry = Arc::clone(&registry);
            let cover = Arc::clone(cover);
            enviro_schedule::thread::spawn(move || {
                registry.publish(vec![PublishedCover {
                    window_id,
                    first_time: Timestamp::from_secs(window_id as i64 * 3_600),
                    cover,
                }])
            })
        };
        let a = spawn_publish(0, &cover_a);
        let b = spawn_publish(1, &cover_b);
        let gen_a = a.join().expect("publisher a");
        let gen_b = b.join().expect("publisher b");
        // Generations are handed out under the write lock: distinct, dense.
        assert_ne!(gen_a, gen_b);
        assert_eq!(gen_a.max(gen_b), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.len(), 2, "a publication was lost");
        snap.check_invariants().expect("final set is consistent");
    });
    println!("{report}");
    assert!(report.schedules > 1);
}
