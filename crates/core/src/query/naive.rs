//! The naïve query-processing method: exhaustive radius scan.

use crate::query::{PointQueryProcessor, QueryMethod};
use enviro_data::{QueryTuple, RawTuple};

/// Exhaustive search over the window `W_c` for all raw tuples within radius
/// `r` of the query position; the interpolated value is their average
/// (§2.2, "Naïve").
#[derive(Debug, Clone)]
pub struct NaiveProcessor<'a> {
    tuples: &'a [RawTuple],
    radius: f64,
}

impl<'a> NaiveProcessor<'a> {
    /// Binds the method to one window's tuples with query radius `radius`
    /// (meters).
    pub fn new(tuples: &'a [RawTuple], radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        Self { tuples, radius }
    }

    /// The query radius in meters.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The number of tuples that would be averaged for `q` — used by tests
    /// and diagnostics.
    pub fn support(&self, q: &QueryTuple) -> usize {
        let r2 = self.radius * self.radius;
        self.tuples
            .iter()
            .filter(|t| t.pos.distance_sq(&q.pos) <= r2)
            .count()
    }
}

impl PointQueryProcessor for NaiveProcessor<'_> {
    fn interpolate(&self, q: &QueryTuple) -> Option<f64> {
        let r2 = self.radius * self.radius;
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in self.tuples {
            if t.pos.distance_sq(&q.pos) <= r2 {
                sum += t.value;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    fn method(&self) -> QueryMethod {
        QueryMethod::Naive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::Timestamp;
    use enviro_geo::Point;

    fn tup(x: f64, y: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::ZERO, Point::new(x, y), v)
    }

    fn q(x: f64, y: f64) -> QueryTuple {
        QueryTuple::new(Timestamp::ZERO, Point::new(x, y))
    }

    #[test]
    fn averages_tuples_in_radius() {
        let tuples = [
            tup(0.0, 0.0, 10.0),
            tup(5.0, 0.0, 20.0),
            tup(100.0, 0.0, 99.0),
        ];
        let p = NaiveProcessor::new(&tuples, 10.0);
        assert_eq!(p.interpolate(&q(0.0, 0.0)), Some(15.0));
    }

    #[test]
    fn boundary_tuple_included() {
        let tuples = [tup(3.0, 4.0, 50.0)]; // exactly 5 away
        let p = NaiveProcessor::new(&tuples, 5.0);
        assert_eq!(p.interpolate(&q(0.0, 0.0)), Some(50.0));
    }

    #[test]
    fn no_tuple_in_radius_is_none() {
        let tuples = [tup(100.0, 100.0, 1.0)];
        let p = NaiveProcessor::new(&tuples, 10.0);
        assert_eq!(p.interpolate(&q(0.0, 0.0)), None);
    }

    #[test]
    fn empty_window_is_none() {
        let p = NaiveProcessor::new(&[], 1_000.0);
        assert_eq!(p.interpolate(&q(0.0, 0.0)), None);
    }

    #[test]
    fn zero_radius_matches_exact_position_only() {
        let tuples = [tup(1.0, 1.0, 7.0), tup(1.1, 1.0, 9.0)];
        let p = NaiveProcessor::new(&tuples, 0.0);
        assert_eq!(p.interpolate(&q(1.0, 1.0)), Some(7.0));
        assert_eq!(p.interpolate(&q(2.0, 2.0)), None);
    }

    #[test]
    fn support_counts_matches() {
        let tuples = [tup(0.0, 0.0, 1.0), tup(1.0, 0.0, 2.0), tup(50.0, 0.0, 3.0)];
        let p = NaiveProcessor::new(&tuples, 2.0);
        assert_eq!(p.support(&q(0.0, 0.0)), 2);
    }

    #[test]
    fn method_tag() {
        let p = NaiveProcessor::new(&[], 1.0);
        assert_eq!(p.method(), QueryMethod::Naive);
    }
}
