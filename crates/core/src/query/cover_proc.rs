//! The model-cover query method.

use crate::cover::ModelCover;
use crate::query::{PointQueryProcessor, QueryMethod};
use enviro_data::QueryTuple;

/// The paper's *model cover* method: find the nearest cluster centroid `µ*`
/// to the query position, then interpolate with the corresponding model
/// `M*` (§2.2). No raw tuples are touched at query time — this is the
/// source of the orders-of-magnitude efficiency gap.
#[derive(Debug, Clone)]
pub struct CoverProcessor<'a> {
    cover: &'a ModelCover,
}

impl<'a> CoverProcessor<'a> {
    /// Binds the method to a learned cover.
    pub fn new(cover: &'a ModelCover) -> Self {
        Self { cover }
    }

    /// The underlying cover.
    pub fn cover(&self) -> &ModelCover {
        self.cover
    }
}

impl PointQueryProcessor for CoverProcessor<'_> {
    fn interpolate(&self, q: &QueryTuple) -> Option<f64> {
        self.cover.interpolate(q.time, &q.pos)
    }

    fn method(&self) -> QueryMethod {
        QueryMethod::ModelCover
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AdKmnConfig;
    use crate::cover::CoverBuilder;
    use enviro_data::{Dataset, Pollutant, RawTuple, Timestamp, WindowSpec, Windows};
    use enviro_geo::Point;

    fn cover_over_plane() -> ModelCover {
        let tuples: Vec<RawTuple> = (0..80)
            .map(|i| {
                let x = (i % 8) as f64 * 50.0;
                let y = (i / 8) as f64 * 50.0;
                RawTuple::new(
                    Timestamp::from_secs(i),
                    Point::new(x, y),
                    500.0 + 0.1 * x - 0.05 * y,
                )
            })
            .collect();
        let ds = Dataset::from_tuples(Pollutant::Co2, tuples).unwrap();
        let w = Windows::new(&ds, WindowSpec::ByCount(80)).next().unwrap();
        CoverBuilder::new(AdKmnConfig::default()).build(&w, Pollutant::Co2)
    }

    #[test]
    fn answers_from_models() {
        let cover = cover_over_plane();
        let p = CoverProcessor::new(&cover);
        let q = QueryTuple::new(Timestamp::from_secs(40), Point::new(175.0, 225.0));
        let got = p.interpolate(&q).unwrap();
        let truth = 500.0 + 0.1 * 175.0 - 0.05 * 225.0;
        assert!((got - truth).abs() < 5.0, "{got} vs {truth}");
    }

    #[test]
    fn empty_cover_returns_none() {
        let cover = ModelCover {
            pollutant: Pollutant::Co2,
            window_id: 0,
            valid_until: Timestamp::ZERO,
            regions: Vec::new(),
        };
        let p = CoverProcessor::new(&cover);
        assert_eq!(
            p.interpolate(&QueryTuple::new(Timestamp::ZERO, Point::origin())),
            None
        );
    }

    #[test]
    fn method_tag() {
        let cover = cover_over_plane();
        assert_eq!(
            CoverProcessor::new(&cover).method(),
            QueryMethod::ModelCover
        );
    }

    #[test]
    fn answers_even_far_from_data() {
        // Unlike the raw-data methods, the cover extrapolates: a query far
        // from any sample still gets the nearest region's model value.
        let cover = cover_over_plane();
        let p = CoverProcessor::new(&cover);
        let q = QueryTuple::new(Timestamp::from_secs(0), Point::new(1.0e5, 1.0e5));
        assert!(p.interpolate(&q).is_some());
    }
}
