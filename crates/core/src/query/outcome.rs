//! Freshness-tagged query results for degraded-mode serving.
//!
//! The paper's continuous-query client keeps answering from its cached
//! model cover while the cellular link is down (§3.1: the model cache
//! exists so `v_q` survives disconnection). Once the platform serves over
//! a faulty wire, a plain `Option<f64>` can no longer express the three
//! states a resilient client distinguishes:
//!
//! * the answer came from live (or currently-valid cached) state — fresh;
//! * the server was unreachable and the answer came from an **expired**
//!   cover — stale, best-effort;
//! * nothing could answer at all — unavailable.

/// One continuous-query answer, tagged with how trustworthy it is.
///
/// `Fresh` and `Stale` carry the same payload shape as a point query:
/// `Some(value)` when the model/raw data could interpolate, `None` when
/// the query fell outside every region (the `NoData` case). `Unavailable`
/// means the wire failed past the deadline *and* no cached cover existed
/// to degrade onto — the client reports the gap rather than guessing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// Answered from live server state or a still-valid cached cover.
    Fresh(Option<f64>),
    /// Answered from an expired cached cover while the server was
    /// unreachable (graceful degradation; reconciled on reconnect).
    Stale(Option<f64>),
    /// No answer: the wire failed past the deadline and no cover was
    /// cached.
    Unavailable,
}

impl QueryOutcome {
    /// The interpolated value, regardless of freshness. `None` for both
    /// an in-coverage miss (`Fresh(None)`/`Stale(None)`) and
    /// `Unavailable`; use [`QueryOutcome::is_unavailable`] to tell them
    /// apart.
    pub fn value(&self) -> Option<f64> {
        match self {
            QueryOutcome::Fresh(v) | QueryOutcome::Stale(v) => *v,
            QueryOutcome::Unavailable => None,
        }
    }

    /// `true` when the answer came from live or currently-valid state.
    pub fn is_fresh(&self) -> bool {
        matches!(self, QueryOutcome::Fresh(_))
    }

    /// `true` when the answer was served from an expired cached cover.
    pub fn is_stale(&self) -> bool {
        matches!(self, QueryOutcome::Stale(_))
    }

    /// `true` when no answer could be produced at all.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, QueryOutcome::Unavailable)
    }

    /// Stable label for logs and bench reports.
    pub fn label(&self) -> &'static str {
        match self {
            QueryOutcome::Fresh(_) => "fresh",
            QueryOutcome::Stale(_) => "stale",
            QueryOutcome::Unavailable => "unavailable",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ignores_freshness_but_not_unavailability() {
        assert_eq!(QueryOutcome::Fresh(Some(1.5)).value(), Some(1.5));
        assert_eq!(QueryOutcome::Stale(Some(2.5)).value(), Some(2.5));
        assert_eq!(QueryOutcome::Fresh(None).value(), None);
        assert_eq!(QueryOutcome::Unavailable.value(), None);
    }

    #[test]
    fn predicates_partition_the_outcomes() {
        let outcomes = [
            QueryOutcome::Fresh(None),
            QueryOutcome::Stale(None),
            QueryOutcome::Unavailable,
        ];
        for o in outcomes {
            let flags = [o.is_fresh(), o.is_stale(), o.is_unavailable()];
            assert_eq!(flags.iter().filter(|f| **f).count(), 1, "{o:?}");
        }
        assert_eq!(QueryOutcome::Fresh(None).label(), "fresh");
        assert_eq!(QueryOutcome::Stale(None).label(), "stale");
        assert_eq!(QueryOutcome::Unavailable.label(), "unavailable");
    }
}
