//! The windowed query engine: lazy per-window structures + dispatch.

use crate::cluster::AdKmnConfig;
use crate::cover::{CoverBuilder, ModelCover};
use crate::query::{
    CoverProcessor, IdwConfig, IdwProcessor, IndexKind, IndexedProcessor, NaiveProcessor,
    PointQueryProcessor, QueryMethod,
};
use enviro_data::{Dataset, QueryTuple, RawTuple, Timestamp, WindowSpec, Windows};
use enviro_schedule::sync::OnceLock;

/// Precomputed placement of one window inside the dataset's tuple vector.
#[derive(Debug, Clone, Copy)]
struct WindowMeta {
    id: u64,
    start: usize,
    end: usize,
    first_time: Timestamp,
    valid_until: Timestamp,
}

/// The EnviroMeter server's query engine (Figure 3): owns the raw tuples,
/// decomposes them into windows, lazily materializes the per-window
/// structure each method needs (model cover, R-tree, VP-tree, grid) and
/// caches it — the `model_cover` table of Figure 1.
#[derive(Debug)]
pub struct QueryEngine {
    dataset: Dataset,
    spec: WindowSpec,
    builder: CoverBuilder,
    radius: f64,
    windows: Vec<WindowMeta>,
    /// Per-window lazily built covers; `OnceLock` keeps the hot query path
    /// lock-free after the first build.
    covers: Vec<OnceLock<ModelCover>>,
    /// Per-window, per-kind lazily built indexes
    /// (order: R-tree, VP-tree, kd-tree, grid).
    indexes: Vec<[OnceLock<IndexedProcessor>; 4]>,
    /// Per-window lazily built IDW processors (extension method).
    idw: Vec<OnceLock<IdwProcessor>>,
}

fn kind_slot(kind: IndexKind) -> usize {
    match kind {
        IndexKind::RTree => 0,
        IndexKind::VpTree => 1,
        IndexKind::KdTree => 2,
        IndexKind::Grid => 3,
    }
}

impl QueryEngine {
    /// Creates an engine over `dataset` with the given windowing, Ad-KMN
    /// configuration and raw-data query radius `radius` (meters).
    pub fn new(dataset: Dataset, spec: WindowSpec, adkmn: AdKmnConfig, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut windows = Vec::new();
        let mut offset = 0usize;
        for w in Windows::new(&dataset, spec) {
            windows.push(WindowMeta {
                id: w.id,
                start: offset,
                end: offset + w.len(),
                first_time: w.tuples.first().map(|t| t.time).unwrap_or(Timestamp::ZERO),
                valid_until: w.valid_until,
            });
            offset += w.len();
        }
        let covers = (0..windows.len()).map(|_| OnceLock::new()).collect();
        let indexes = (0..windows.len())
            .map(|_| {
                [
                    OnceLock::new(),
                    OnceLock::new(),
                    OnceLock::new(),
                    OnceLock::new(),
                ]
            })
            .collect();
        let idw = (0..windows.len()).map(|_| OnceLock::new()).collect();
        Self {
            dataset,
            spec,
            builder: CoverBuilder::new(adkmn),
            radius,
            windows,
            covers,
            indexes,
            idw,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The window specification.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The raw-data query radius `r` in meters.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of windows in the dataset.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The index of the window responsible for time `t`.
    ///
    /// Queries before the first window are served by the first; queries
    /// after the last by the last (the freshest available data) — a query
    /// must always be answerable from *some* window. `None` only for an
    /// empty dataset.
    pub fn window_index_for(&self, t: Timestamp) -> Option<usize> {
        if self.windows.is_empty() {
            return None;
        }
        // partition_point: first window whose first_time > t.
        let idx = self.windows.partition_point(|w| w.first_time <= t);
        Some(idx.saturating_sub(1))
    }

    /// The tuples of window `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range.
    pub fn window_tuples(&self, idx: usize) -> &[RawTuple] {
        let w = &self.windows[idx];
        &self.dataset.tuples()[w.start..w.end]
    }

    /// The model cover of window `idx`, building and caching it on first
    /// use (the paper's lazy model creation).
    pub fn cover(&self, idx: usize) -> &ModelCover {
        self.covers[idx].get_or_init(|| {
            let meta = self.windows[idx];
            let window = enviro_data::Window {
                id: meta.id,
                tuples: self.window_tuples(idx),
                valid_until: meta.valid_until,
            };
            self.builder.build(&window, self.dataset.pollutant())
        })
    }

    /// The model cover responsible for time `t` (`None` on empty dataset).
    pub fn cover_for_time(&self, t: Timestamp) -> Option<&ModelCover> {
        self.window_index_for(t).map(|i| self.cover(i))
    }

    /// The indexed processor of `kind` for window `idx`, cached.
    pub fn indexed(&self, idx: usize, kind: IndexKind) -> &IndexedProcessor {
        self.indexes[idx][kind_slot(kind)]
            .get_or_init(|| IndexedProcessor::build(kind, self.window_tuples(idx), self.radius))
    }

    /// The IDW processor for window `idx`, cached.
    pub fn idw(&self, idx: usize) -> &IdwProcessor {
        self.idw[idx]
            .get_or_init(|| IdwProcessor::build(self.window_tuples(idx), IdwConfig::default()))
    }

    /// Builds the structure `method` needs for window `idx` (no-op for the
    /// scan-based naive method).
    fn build_window(&self, idx: usize, method: QueryMethod) {
        match method {
            QueryMethod::Naive => {}
            QueryMethod::ModelCover => {
                let _ = self.cover(idx);
            }
            QueryMethod::RTree => {
                let _ = self.indexed(idx, IndexKind::RTree);
            }
            QueryMethod::VpTree => {
                let _ = self.indexed(idx, IndexKind::VpTree);
            }
            QueryMethod::KdTree => {
                let _ = self.indexed(idx, IndexKind::KdTree);
            }
            QueryMethod::Grid => {
                let _ = self.indexed(idx, IndexKind::Grid);
            }
            QueryMethod::Idw => {
                let _ = self.idw(idx);
            }
        }
    }

    /// Eagerly builds every per-window structure for `method`, so that a
    /// subsequent timed query loop measures pure query cost (the evaluation
    /// regime of Figure 6a).
    pub fn prepare(&self, method: QueryMethod) {
        for idx in 0..self.windows.len() {
            self.build_window(idx, method);
        }
    }

    /// Like [`QueryEngine::prepare`], but builds window structures on
    /// `threads` worker threads. Safe because every per-window slot is an
    /// independent `OnceLock`; useful when standing up paper-scale datasets
    /// (hundreds of windows) for evaluation.
    pub fn prepare_parallel(&self, method: QueryMethod, threads: usize) {
        let threads = threads.max(1);
        let next = enviro_schedule::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    // ordering: Relaxed — a pure work-distribution counter;
                    // no data is published through it (each slot is its own
                    // OnceLock), so only atomicity matters.
                    let idx = next.fetch_add(1, enviro_schedule::sync::atomic::Ordering::Relaxed);
                    if idx >= self.windows.len() {
                        break;
                    }
                    self.build_window(idx, method);
                });
            }
        });
    }

    /// [`QueryEngine::prepare_parallel`] with [`default_parallelism`]
    /// worker threads — the deployment default.
    pub fn prepare_parallel_auto(&self, method: QueryMethod) {
        self.prepare_parallel(method, default_parallelism());
    }

    /// Answers one point query with the chosen method.
    pub fn query(&self, q: &QueryTuple, method: QueryMethod) -> Option<f64> {
        let idx = self.window_index_for(q.time)?;
        match method {
            QueryMethod::Naive => {
                NaiveProcessor::new(self.window_tuples(idx), self.radius).interpolate(q)
            }
            QueryMethod::RTree => self.indexed(idx, IndexKind::RTree).interpolate(q),
            QueryMethod::VpTree => self.indexed(idx, IndexKind::VpTree).interpolate(q),
            QueryMethod::KdTree => self.indexed(idx, IndexKind::KdTree).interpolate(q),
            QueryMethod::Grid => self.indexed(idx, IndexKind::Grid).interpolate(q),
            QueryMethod::Idw => self.idw(idx).interpolate(q),
            QueryMethod::ModelCover => CoverProcessor::new(self.cover(idx)).interpolate(q),
        }
    }

    /// Answers a batch of point queries, appending one answer per query to
    /// `out` (which is cleared first).
    ///
    /// This is the serving path behind `Request::QueryBatch`: the caller
    /// owns and reuses `out` across frames, so a warmed-up server does no
    /// per-query allocation here. Consecutive queries that fall in the same
    /// window share one processor binding instead of re-dispatching per
    /// tuple — trajectory chunks are strongly time-sorted, so runs are long.
    pub fn query_batch_into(
        &self,
        queries: &[QueryTuple],
        method: QueryMethod,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        out.reserve(queries.len());
        let mut start = 0usize;
        while start < queries.len() {
            let Some(idx) = self.window_index_for(queries[start].time) else {
                // Empty dataset: nothing can answer any query.
                out.resize(queries.len(), None);
                return;
            };
            let mut end = start + 1;
            while end < queries.len() && self.window_index_for(queries[end].time) == Some(idx) {
                end += 1;
            }
            let run = &queries[start..end];
            match method {
                QueryMethod::Naive => NaiveProcessor::new(self.window_tuples(idx), self.radius)
                    .interpolate_batch(run, out),
                QueryMethod::RTree => self
                    .indexed(idx, IndexKind::RTree)
                    .interpolate_batch(run, out),
                QueryMethod::VpTree => self
                    .indexed(idx, IndexKind::VpTree)
                    .interpolate_batch(run, out),
                QueryMethod::KdTree => self
                    .indexed(idx, IndexKind::KdTree)
                    .interpolate_batch(run, out),
                QueryMethod::Grid => self
                    .indexed(idx, IndexKind::Grid)
                    .interpolate_batch(run, out),
                QueryMethod::Idw => self.idw(idx).interpolate_batch(run, out),
                QueryMethod::ModelCover => {
                    CoverProcessor::new(self.cover(idx)).interpolate_batch(run, out)
                }
            }
            start = end;
        }
    }

    /// Answers a continuous query (a whole trajectory) with one method.
    pub fn continuous_query(
        &self,
        trajectory: &[QueryTuple],
        method: QueryMethod,
    ) -> Vec<Option<f64>> {
        let mut out = Vec::new();
        self.query_batch_into(trajectory, method, &mut out);
        out
    }
}

/// The default worker-thread count for parallel preparation and concurrent
/// serving: the machine's available hardware parallelism, or 1 when the OS
/// cannot report it.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::{LausanneSim, Pollutant, SimConfig};
    use enviro_geo::Point;

    fn small_engine() -> (QueryEngine, LausanneSim) {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 4 * 3_600,
            sampling_interval_secs: 60,
            seed: 99,
            ..SimConfig::default()
        });
        let engine = QueryEngine::new(
            sim.generate(),
            WindowSpec::ByCount(120),
            AdKmnConfig::default(),
            1_000.0,
        );
        (engine, sim)
    }

    #[test]
    fn window_layout_covers_dataset() {
        let (engine, _) = small_engine();
        let total: usize = (0..engine.window_count())
            .map(|i| engine.window_tuples(i).len())
            .sum();
        assert_eq!(total, engine.dataset().len());
        // 4 h × 60 s × 2 buses = 480 tuples → 4 windows of 120.
        assert_eq!(engine.window_count(), 4);
    }

    #[test]
    fn window_index_for_times() {
        let (engine, _) = small_engine();
        // The first tuple of window 1 starts at 3600 s (120 tuples / 2
        // buses × 60 s).
        assert_eq!(engine.window_index_for(Timestamp::from_secs(0)), Some(0));
        assert_eq!(
            engine.window_index_for(Timestamp::from_secs(3_599)),
            Some(0)
        );
        assert_eq!(
            engine.window_index_for(Timestamp::from_secs(3_600)),
            Some(1)
        );
        // Far future → last window.
        assert_eq!(engine.window_index_for(Timestamp::from_days(40)), Some(3));
        // Before epoch → first window.
        assert_eq!(engine.window_index_for(Timestamp::from_secs(-5)), Some(0));
    }

    #[test]
    fn empty_dataset_engine() {
        let engine = QueryEngine::new(
            Dataset::new(Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            100.0,
        );
        assert_eq!(engine.window_count(), 0);
        assert_eq!(engine.window_index_for(Timestamp::ZERO), None);
        let q = QueryTuple::new(Timestamp::ZERO, Point::origin());
        for m in QueryMethod::ALL {
            assert_eq!(engine.query(&q, m), None, "{m}");
        }
    }

    #[test]
    fn covers_are_cached() {
        let (engine, _) = small_engine();
        let a = engine.cover(0) as *const _;
        let b = engine.cover(0) as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn indexes_are_cached_per_kind() {
        let (engine, _) = small_engine();
        let a = engine.indexed(1, IndexKind::RTree) as *const _;
        let b = engine.indexed(1, IndexKind::RTree) as *const _;
        let c = engine.indexed(1, IndexKind::VpTree);
        assert_eq!(a, b);
        assert_eq!(c.kind(), IndexKind::VpTree);
    }

    #[test]
    fn raw_methods_agree_everywhere() {
        let (engine, sim) = small_engine();
        for q in sim.query_workload(60, 300.0, 7) {
            let naive = engine.query(&q, QueryMethod::Naive);
            for m in [QueryMethod::RTree, QueryMethod::VpTree, QueryMethod::Grid] {
                let got = engine.query(&q, m);
                match (naive, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{m}"),
                    other => panic!("{m}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn model_cover_answers_sensible_values() {
        let (engine, sim) = small_engine();
        let queries = sim.query_workload(40, 200.0, 8);
        let mut answered = 0;
        for q in &queries {
            if let Some(v) = engine.query(q, QueryMethod::ModelCover) {
                answered += 1;
                // CO2 around Lausanne: generously 200..2000 ppm.
                assert!((100.0..3_000.0).contains(&v), "implausible {v}");
            }
        }
        assert_eq!(answered, queries.len(), "cover answers every query");
    }

    #[test]
    fn continuous_query_length_matches() {
        let (engine, sim) = small_engine();
        let traj = sim.continuous_trajectory(25, 30, 5);
        let vals = engine.continuous_query(&traj, QueryMethod::ModelCover);
        assert_eq!(vals.len(), 25);
    }

    #[test]
    fn batch_matches_per_query_for_all_methods() {
        let (engine, sim) = small_engine();
        // A workload that crosses window boundaries mid-batch, plus an
        // unsorted tail so the run detection sees window regressions.
        let mut queries = sim.continuous_trajectory(60, 300, 11);
        queries.extend(sim.query_workload(40, 300.0, 12));
        let mut out = Vec::new();
        for m in QueryMethod::ALL {
            engine.query_batch_into(&queries, m, &mut out);
            assert_eq!(out.len(), queries.len(), "{m}");
            for (i, q) in queries.iter().enumerate() {
                let single = engine.query(q, m);
                match (single, out[i]) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "{m} query {i}")
                    }
                    other => panic!("{m} query {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn batch_into_reuses_buffer() {
        let (engine, sim) = small_engine();
        let queries = sim.query_workload(30, 300.0, 21);
        let mut out = Vec::new();
        engine.query_batch_into(&queries, QueryMethod::ModelCover, &mut out);
        let cap = out.capacity();
        engine.query_batch_into(&queries, QueryMethod::ModelCover, &mut out);
        assert_eq!(out.capacity(), cap, "buffer must be reused, not regrown");
        assert_eq!(out.len(), queries.len());
    }

    #[test]
    fn batch_on_empty_dataset_answers_all_none() {
        let engine = QueryEngine::new(
            Dataset::new(Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            100.0,
        );
        let queries = vec![QueryTuple::new(Timestamp::ZERO, Point::origin()); 5];
        let mut out = Vec::new();
        engine.query_batch_into(&queries, QueryMethod::ModelCover, &mut out);
        assert_eq!(out, vec![None; 5]);
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn prepare_parallel_auto_populates_caches() {
        let (engine, _) = small_engine();
        engine.prepare_parallel_auto(QueryMethod::ModelCover);
        assert!(engine.covers.iter().all(|c| c.get().is_some()));
    }

    #[test]
    fn prepare_parallel_equals_sequential() {
        let (seq_engine, sim) = small_engine();
        seq_engine.prepare(QueryMethod::ModelCover);
        let par_engine = QueryEngine::new(
            sim.generate(),
            WindowSpec::ByCount(120),
            AdKmnConfig::default(),
            1_000.0,
        );
        par_engine.prepare_parallel(QueryMethod::ModelCover, 4);
        for q in sim.query_workload(50, 200.0, 99) {
            assert_eq!(
                seq_engine.query(&q, QueryMethod::ModelCover),
                par_engine.query(&q, QueryMethod::ModelCover)
            );
        }
    }

    #[test]
    fn prepare_populates_caches() {
        let (engine, _) = small_engine();
        engine.prepare(QueryMethod::ModelCover);
        assert!(engine.covers.iter().all(|c| c.get().is_some()));
        engine.prepare(QueryMethod::VpTree);
        assert!(engine
            .indexes
            .iter()
            .all(|slots| slots[kind_slot(IndexKind::VpTree)].get().is_some()));
    }
}
