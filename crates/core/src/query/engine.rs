//! The windowed query engine: lazy per-window structures + dispatch.

use crate::cluster::AdKmnConfig;
use crate::cover::{CoverBuilder, ModelCover};
use crate::query::{
    CoverProcessor, IdwConfig, IdwProcessor, IndexKind, IndexedProcessor, NaiveProcessor,
    PointQueryProcessor, QueryMethod,
};
use enviro_data::{Dataset, QueryTuple, RawTuple, Timestamp, WindowSpec, Windows};
use std::sync::OnceLock;

/// Precomputed placement of one window inside the dataset's tuple vector.
#[derive(Debug, Clone, Copy)]
struct WindowMeta {
    id: u64,
    start: usize,
    end: usize,
    first_time: Timestamp,
    valid_until: Timestamp,
}

/// The EnviroMeter server's query engine (Figure 3): owns the raw tuples,
/// decomposes them into windows, lazily materializes the per-window
/// structure each method needs (model cover, R-tree, VP-tree, grid) and
/// caches it — the `model_cover` table of Figure 1.
#[derive(Debug)]
pub struct QueryEngine {
    dataset: Dataset,
    spec: WindowSpec,
    builder: CoverBuilder,
    radius: f64,
    windows: Vec<WindowMeta>,
    /// Per-window lazily built covers; `OnceLock` keeps the hot query path
    /// lock-free after the first build.
    covers: Vec<OnceLock<ModelCover>>,
    /// Per-window, per-kind lazily built indexes
    /// (order: R-tree, VP-tree, kd-tree, grid).
    indexes: Vec<[OnceLock<IndexedProcessor>; 4]>,
    /// Per-window lazily built IDW processors (extension method).
    idw: Vec<OnceLock<IdwProcessor>>,
}

fn kind_slot(kind: IndexKind) -> usize {
    match kind {
        IndexKind::RTree => 0,
        IndexKind::VpTree => 1,
        IndexKind::KdTree => 2,
        IndexKind::Grid => 3,
    }
}

impl QueryEngine {
    /// Creates an engine over `dataset` with the given windowing, Ad-KMN
    /// configuration and raw-data query radius `radius` (meters).
    pub fn new(dataset: Dataset, spec: WindowSpec, adkmn: AdKmnConfig, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut windows = Vec::new();
        let mut offset = 0usize;
        for w in Windows::new(&dataset, spec) {
            windows.push(WindowMeta {
                id: w.id,
                start: offset,
                end: offset + w.len(),
                first_time: w.tuples.first().map(|t| t.time).unwrap_or(Timestamp::ZERO),
                valid_until: w.valid_until,
            });
            offset += w.len();
        }
        let covers = (0..windows.len()).map(|_| OnceLock::new()).collect();
        let indexes = (0..windows.len())
            .map(|_| {
                [
                    OnceLock::new(),
                    OnceLock::new(),
                    OnceLock::new(),
                    OnceLock::new(),
                ]
            })
            .collect();
        let idw = (0..windows.len()).map(|_| OnceLock::new()).collect();
        Self {
            dataset,
            spec,
            builder: CoverBuilder::new(adkmn),
            radius,
            windows,
            covers,
            indexes,
            idw,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The window specification.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// The raw-data query radius `r` in meters.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of windows in the dataset.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The index of the window responsible for time `t`.
    ///
    /// Queries before the first window are served by the first; queries
    /// after the last by the last (the freshest available data) — a query
    /// must always be answerable from *some* window. `None` only for an
    /// empty dataset.
    pub fn window_index_for(&self, t: Timestamp) -> Option<usize> {
        if self.windows.is_empty() {
            return None;
        }
        // partition_point: first window whose first_time > t.
        let idx = self.windows.partition_point(|w| w.first_time <= t);
        Some(idx.saturating_sub(1))
    }

    /// The tuples of window `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range.
    pub fn window_tuples(&self, idx: usize) -> &[RawTuple] {
        let w = &self.windows[idx];
        &self.dataset.tuples()[w.start..w.end]
    }

    /// The model cover of window `idx`, building and caching it on first
    /// use (the paper's lazy model creation).
    pub fn cover(&self, idx: usize) -> &ModelCover {
        self.covers[idx].get_or_init(|| {
            let meta = self.windows[idx];
            let window = enviro_data::Window {
                id: meta.id,
                tuples: self.window_tuples(idx),
                valid_until: meta.valid_until,
            };
            self.builder.build(&window, self.dataset.pollutant())
        })
    }

    /// The model cover responsible for time `t` (`None` on empty dataset).
    pub fn cover_for_time(&self, t: Timestamp) -> Option<&ModelCover> {
        self.window_index_for(t).map(|i| self.cover(i))
    }

    /// The indexed processor of `kind` for window `idx`, cached.
    pub fn indexed(&self, idx: usize, kind: IndexKind) -> &IndexedProcessor {
        self.indexes[idx][kind_slot(kind)]
            .get_or_init(|| IndexedProcessor::build(kind, self.window_tuples(idx), self.radius))
    }

    /// The IDW processor for window `idx`, cached.
    pub fn idw(&self, idx: usize) -> &IdwProcessor {
        self.idw[idx]
            .get_or_init(|| IdwProcessor::build(self.window_tuples(idx), IdwConfig::default()))
    }

    /// Eagerly builds every per-window structure for `method`, so that a
    /// subsequent timed query loop measures pure query cost (the evaluation
    /// regime of Figure 6a).
    pub fn prepare(&self, method: QueryMethod) {
        for idx in 0..self.windows.len() {
            match method {
                QueryMethod::Naive => {}
                QueryMethod::ModelCover => {
                    let _ = self.cover(idx);
                }
                QueryMethod::RTree => {
                    let _ = self.indexed(idx, IndexKind::RTree);
                }
                QueryMethod::VpTree => {
                    let _ = self.indexed(idx, IndexKind::VpTree);
                }
                QueryMethod::KdTree => {
                    let _ = self.indexed(idx, IndexKind::KdTree);
                }
                QueryMethod::Grid => {
                    let _ = self.indexed(idx, IndexKind::Grid);
                }
                QueryMethod::Idw => {
                    let _ = self.idw(idx);
                }
            }
        }
    }

    /// Like [`QueryEngine::prepare`], but builds window structures on
    /// `threads` worker threads. Safe because every per-window slot is an
    /// independent `OnceLock`; useful when standing up paper-scale datasets
    /// (hundreds of windows) for evaluation.
    pub fn prepare_parallel(&self, method: QueryMethod, threads: usize) {
        let threads = threads.max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= self.windows.len() {
                        break;
                    }
                    match method {
                        QueryMethod::Naive => {}
                        QueryMethod::ModelCover => {
                            let _ = self.cover(idx);
                        }
                        QueryMethod::RTree => {
                            let _ = self.indexed(idx, IndexKind::RTree);
                        }
                        QueryMethod::VpTree => {
                            let _ = self.indexed(idx, IndexKind::VpTree);
                        }
                        QueryMethod::KdTree => {
                            let _ = self.indexed(idx, IndexKind::KdTree);
                        }
                        QueryMethod::Grid => {
                            let _ = self.indexed(idx, IndexKind::Grid);
                        }
                        QueryMethod::Idw => {
                            let _ = self.idw(idx);
                        }
                    }
                });
            }
        });
    }

    /// Answers one point query with the chosen method.
    pub fn query(&self, q: &QueryTuple, method: QueryMethod) -> Option<f64> {
        let idx = self.window_index_for(q.time)?;
        match method {
            QueryMethod::Naive => {
                NaiveProcessor::new(self.window_tuples(idx), self.radius).interpolate(q)
            }
            QueryMethod::RTree => self.indexed(idx, IndexKind::RTree).interpolate(q),
            QueryMethod::VpTree => self.indexed(idx, IndexKind::VpTree).interpolate(q),
            QueryMethod::KdTree => self.indexed(idx, IndexKind::KdTree).interpolate(q),
            QueryMethod::Grid => self.indexed(idx, IndexKind::Grid).interpolate(q),
            QueryMethod::Idw => self.idw(idx).interpolate(q),
            QueryMethod::ModelCover => CoverProcessor::new(self.cover(idx)).interpolate(q),
        }
    }

    /// Answers a continuous query (a whole trajectory) with one method.
    pub fn continuous_query(
        &self,
        trajectory: &[QueryTuple],
        method: QueryMethod,
    ) -> Vec<Option<f64>> {
        trajectory.iter().map(|q| self.query(q, method)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::{LausanneSim, Pollutant, SimConfig};
    use enviro_geo::Point;

    fn small_engine() -> (QueryEngine, LausanneSim) {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 4 * 3_600,
            sampling_interval_secs: 60,
            seed: 99,
            ..SimConfig::default()
        });
        let engine = QueryEngine::new(
            sim.generate(),
            WindowSpec::ByCount(120),
            AdKmnConfig::default(),
            1_000.0,
        );
        (engine, sim)
    }

    #[test]
    fn window_layout_covers_dataset() {
        let (engine, _) = small_engine();
        let total: usize = (0..engine.window_count())
            .map(|i| engine.window_tuples(i).len())
            .sum();
        assert_eq!(total, engine.dataset().len());
        // 4 h × 60 s × 2 buses = 480 tuples → 4 windows of 120.
        assert_eq!(engine.window_count(), 4);
    }

    #[test]
    fn window_index_for_times() {
        let (engine, _) = small_engine();
        // The first tuple of window 1 starts at 3600 s (120 tuples / 2
        // buses × 60 s).
        assert_eq!(engine.window_index_for(Timestamp::from_secs(0)), Some(0));
        assert_eq!(
            engine.window_index_for(Timestamp::from_secs(3_599)),
            Some(0)
        );
        assert_eq!(
            engine.window_index_for(Timestamp::from_secs(3_600)),
            Some(1)
        );
        // Far future → last window.
        assert_eq!(engine.window_index_for(Timestamp::from_days(40)), Some(3));
        // Before epoch → first window.
        assert_eq!(engine.window_index_for(Timestamp::from_secs(-5)), Some(0));
    }

    #[test]
    fn empty_dataset_engine() {
        let engine = QueryEngine::new(
            Dataset::new(Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            100.0,
        );
        assert_eq!(engine.window_count(), 0);
        assert_eq!(engine.window_index_for(Timestamp::ZERO), None);
        let q = QueryTuple::new(Timestamp::ZERO, Point::origin());
        for m in QueryMethod::ALL {
            assert_eq!(engine.query(&q, m), None, "{m}");
        }
    }

    #[test]
    fn covers_are_cached() {
        let (engine, _) = small_engine();
        let a = engine.cover(0) as *const _;
        let b = engine.cover(0) as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn indexes_are_cached_per_kind() {
        let (engine, _) = small_engine();
        let a = engine.indexed(1, IndexKind::RTree) as *const _;
        let b = engine.indexed(1, IndexKind::RTree) as *const _;
        let c = engine.indexed(1, IndexKind::VpTree);
        assert_eq!(a, b);
        assert_eq!(c.kind(), IndexKind::VpTree);
    }

    #[test]
    fn raw_methods_agree_everywhere() {
        let (engine, sim) = small_engine();
        for q in sim.query_workload(60, 300.0, 7) {
            let naive = engine.query(&q, QueryMethod::Naive);
            for m in [QueryMethod::RTree, QueryMethod::VpTree, QueryMethod::Grid] {
                let got = engine.query(&q, m);
                match (naive, got) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "{m}"),
                    other => panic!("{m}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn model_cover_answers_sensible_values() {
        let (engine, sim) = small_engine();
        let queries = sim.query_workload(40, 200.0, 8);
        let mut answered = 0;
        for q in &queries {
            if let Some(v) = engine.query(q, QueryMethod::ModelCover) {
                answered += 1;
                // CO2 around Lausanne: generously 200..2000 ppm.
                assert!((100.0..3_000.0).contains(&v), "implausible {v}");
            }
        }
        assert_eq!(answered, queries.len(), "cover answers every query");
    }

    #[test]
    fn continuous_query_length_matches() {
        let (engine, sim) = small_engine();
        let traj = sim.continuous_trajectory(25, 30, 5);
        let vals = engine.continuous_query(&traj, QueryMethod::ModelCover);
        assert_eq!(vals.len(), 25);
    }

    #[test]
    fn prepare_parallel_equals_sequential() {
        let (seq_engine, sim) = small_engine();
        seq_engine.prepare(QueryMethod::ModelCover);
        let par_engine = QueryEngine::new(
            sim.generate(),
            WindowSpec::ByCount(120),
            AdKmnConfig::default(),
            1_000.0,
        );
        par_engine.prepare_parallel(QueryMethod::ModelCover, 4);
        for q in sim.query_workload(50, 200.0, 99) {
            assert_eq!(
                seq_engine.query(&q, QueryMethod::ModelCover),
                par_engine.query(&q, QueryMethod::ModelCover)
            );
        }
    }

    #[test]
    fn prepare_populates_caches() {
        let (engine, _) = small_engine();
        engine.prepare(QueryMethod::ModelCover);
        assert!(engine.covers.iter().all(|c| c.get().is_some()));
        engine.prepare(QueryMethod::VpTree);
        assert!(engine
            .indexes
            .iter()
            .all(|slots| slots[kind_slot(IndexKind::VpTree)].get().is_some()));
    }
}
