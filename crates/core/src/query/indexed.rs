//! The metric-space-indexing query method (R-tree / VP-tree / grid).

use crate::query::{PointQueryProcessor, QueryMethod};
use enviro_data::{QueryTuple, RawTuple};
use enviro_index::{Entry, GridIndex, KdTree, RTree, SpatialIndex, VpTree};
use enviro_memsize::DeepSize;

/// Which index structure backs an [`IndexedProcessor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// STR-bulk-loaded R-tree.
    RTree,
    /// Vantage-point tree.
    VpTree,
    /// Arena-allocated k-d tree.
    KdTree,
    /// Uniform grid (cell size = radius, the classic heuristic).
    Grid,
}

#[derive(Debug, Clone)]
enum Backend {
    RTree(RTree),
    VpTree(VpTree),
    KdTree(KdTree),
    Grid(GridIndex),
}

/// The paper's *metric space indexing* method: identical semantics to the
/// naïve method (average of all tuples within radius `r`), with the radius
/// search served by an index built over the window.
#[derive(Debug, Clone)]
pub struct IndexedProcessor {
    backend: Backend,
    /// Window tuple values, indexed by entry id.
    values: Vec<f64>,
    radius: f64,
}

impl IndexedProcessor {
    /// Builds the index of `kind` over one window's tuples.
    pub fn build(kind: IndexKind, tuples: &[RawTuple], radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        let entries: Vec<Entry> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Entry::new(t.pos, i as u32))
            .collect();
        let values: Vec<f64> = tuples.iter().map(|t| t.value).collect();
        let backend = match kind {
            IndexKind::RTree => Backend::RTree(RTree::bulk_load(entries)),
            IndexKind::VpTree => Backend::VpTree(VpTree::build(entries)),
            IndexKind::KdTree => Backend::KdTree(KdTree::build(entries)),
            IndexKind::Grid => {
                // Cell size on the order of the query radius keeps the
                // per-query cell count constant.
                Backend::Grid(GridIndex::build(&entries, radius.max(1.0)))
            }
        };
        Self {
            backend,
            values,
            radius,
        }
    }

    /// The backing index kind.
    pub fn kind(&self) -> IndexKind {
        match self.backend {
            Backend::RTree(_) => IndexKind::RTree,
            Backend::VpTree(_) => IndexKind::VpTree,
            Backend::KdTree(_) => IndexKind::KdTree,
            Backend::Grid(_) => IndexKind::Grid,
        }
    }

    /// The query radius in meters.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Deep memory footprint of the *index structure alone* (excluding the
    /// value table) — the quantity Figure 7(a) compares.
    pub fn index_memory_bytes(&self) -> usize {
        match &self.backend {
            Backend::RTree(t) => t.deep_size_of(),
            Backend::VpTree(t) => t.deep_size_of(),
            Backend::KdTree(t) => t.deep_size_of(),
            Backend::Grid(g) => g.deep_size_of(),
        }
    }

    fn for_each_hit(&self, q: &QueryTuple, visit: &mut dyn FnMut(&Entry)) {
        match &self.backend {
            Backend::RTree(t) => t.for_each_within(&q.pos, self.radius, visit),
            Backend::VpTree(t) => t.for_each_within(&q.pos, self.radius, visit),
            Backend::KdTree(t) => t.for_each_within(&q.pos, self.radius, visit),
            Backend::Grid(g) => g.for_each_within(&q.pos, self.radius, visit),
        }
    }
}

impl PointQueryProcessor for IndexedProcessor {
    fn interpolate(&self, q: &QueryTuple) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        self.for_each_hit(q, &mut |e| {
            sum += self.values[e.id as usize];
            n += 1;
        });
        (n > 0).then(|| sum / n as f64)
    }

    fn method(&self) -> QueryMethod {
        match self.backend {
            Backend::RTree(_) => QueryMethod::RTree,
            Backend::VpTree(_) => QueryMethod::VpTree,
            Backend::KdTree(_) => QueryMethod::KdTree,
            Backend::Grid(_) => QueryMethod::Grid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::NaiveProcessor;
    use enviro_data::Timestamp;
    use enviro_geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, seed: u64) -> Vec<RawTuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                RawTuple::new(
                    Timestamp::from_secs(i as i64),
                    Point::new(
                        rng.gen_range(-2000.0..2000.0),
                        rng.gen_range(-2000.0..2000.0),
                    ),
                    rng.gen_range(300.0..900.0),
                )
            })
            .collect()
    }

    #[test]
    fn all_kinds_agree_with_naive() {
        let tuples = random_tuples(400, 31);
        let radius = 500.0;
        let naive = NaiveProcessor::new(&tuples, radius);
        for kind in [
            IndexKind::RTree,
            IndexKind::VpTree,
            IndexKind::KdTree,
            IndexKind::Grid,
        ] {
            let idx = IndexedProcessor::build(kind, &tuples, radius);
            for qi in 0..50 {
                let q = QueryTuple::new(
                    Timestamp::ZERO,
                    Point::new(qi as f64 * 70.0 - 1750.0, (qi % 7) as f64 * 300.0 - 900.0),
                );
                let a = naive.interpolate(&q);
                let b = idx.interpolate(&q);
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() < 1e-9, "{kind:?} query {qi}: {x} vs {y}")
                    }
                    other => panic!("{kind:?} query {qi}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_window_none() {
        for kind in [
            IndexKind::RTree,
            IndexKind::VpTree,
            IndexKind::KdTree,
            IndexKind::Grid,
        ] {
            let idx = IndexedProcessor::build(kind, &[], 100.0);
            assert_eq!(
                idx.interpolate(&QueryTuple::new(Timestamp::ZERO, Point::origin())),
                None
            );
        }
    }

    #[test]
    fn method_tags_match_kind() {
        let tuples = random_tuples(10, 32);
        assert_eq!(
            IndexedProcessor::build(IndexKind::RTree, &tuples, 10.0).method(),
            QueryMethod::RTree
        );
        assert_eq!(
            IndexedProcessor::build(IndexKind::VpTree, &tuples, 10.0).method(),
            QueryMethod::VpTree
        );
        assert_eq!(
            IndexedProcessor::build(IndexKind::Grid, &tuples, 10.0).method(),
            QueryMethod::Grid
        );
        assert_eq!(
            IndexedProcessor::build(IndexKind::KdTree, &tuples, 10.0).method(),
            QueryMethod::KdTree
        );
    }

    #[test]
    fn index_memory_reported() {
        let tuples = random_tuples(5_000, 33);
        let rtree = IndexedProcessor::build(IndexKind::RTree, &tuples, 1_000.0);
        let vptree = IndexedProcessor::build(IndexKind::VpTree, &tuples, 1_000.0);
        assert!(rtree.index_memory_bytes() > 0);
        // The per-node-boxed VP-tree is the most memory-hungry structure —
        // the ordering Figure 7(a) reports.
        assert!(
            vptree.index_memory_bytes() > rtree.index_memory_bytes() / 4,
            "vptree {} vs rtree {}",
            vptree.index_memory_bytes(),
            rtree.index_memory_bytes()
        );
    }
}
