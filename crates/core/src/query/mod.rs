//! Continuous query processing — the three methods of §2.2 behind one trait.
//!
//! *Query 1 (Continuous Value Query)*: a mobile object `v_q` transmits query
//! tuples `q_l = (t_l, x_l, y_l)`; the platform interpolates the sensor
//! value `ŝ_l` at each position. The paper proposes and compares:
//!
//! * [`NaiveProcessor`] — exhaustive scan of the window for tuples within
//!   radius `r`, answer = their average;
//! * [`IndexedProcessor`] — same semantics, but the radius search goes
//!   through a metric-space index (R-tree, VP-tree, or grid);
//! * [`CoverProcessor`] — nearest cluster centroid `µ*`, answer = its model
//!   `M*` evaluated at the query point.
//!
//! [`QueryEngine`] hosts all methods over a windowed dataset, building and
//! caching per-window structures lazily (the `model_cover` table of
//! Figure 1).

mod cover_proc;
mod engine;
mod idw;
mod indexed;
mod naive;
mod outcome;

pub use cover_proc::CoverProcessor;
pub use engine::{default_parallelism, QueryEngine};
pub use idw::{IdwConfig, IdwProcessor};
pub use indexed::{IndexKind, IndexedProcessor};
pub use naive::NaiveProcessor;
pub use outcome::QueryOutcome;

use enviro_data::QueryTuple;

/// The query-processing methods evaluated in the paper (plus the grid-index
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMethod {
    /// Exhaustive window scan + average within radius `r`.
    Naive,
    /// R-tree radius search + average.
    RTree,
    /// VP-tree radius search + average.
    VpTree,
    /// k-d tree radius search + average (extension; not in the paper).
    KdTree,
    /// Uniform-grid radius search + average (ablation; not in the paper).
    Grid,
    /// Inverse-distance-weighted k-NN interpolation (extension; not in the
    /// paper).
    Idw,
    /// Ad-KMN model cover: nearest centroid's model.
    ModelCover,
}

impl QueryMethod {
    /// All methods, in the order the figures report them.
    pub const ALL: [QueryMethod; 7] = [
        QueryMethod::ModelCover,
        QueryMethod::VpTree,
        QueryMethod::RTree,
        QueryMethod::KdTree,
        QueryMethod::Grid,
        QueryMethod::Idw,
        QueryMethod::Naive,
    ];

    /// Stable display name (matches the paper's figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            QueryMethod::Naive => "naive",
            QueryMethod::RTree => "R-tree",
            QueryMethod::VpTree => "VP-tree",
            QueryMethod::KdTree => "kd-tree",
            QueryMethod::Grid => "grid",
            QueryMethod::Idw => "IDW",
            QueryMethod::ModelCover => "Ad-KMN",
        }
    }
}

impl std::fmt::Display for QueryMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-query processor: one method bound to one window's data.
pub trait PointQueryProcessor {
    /// Interpolates the sensor value at the query tuple, or `None` when the
    /// method has no data to answer from (e.g. no tuple within `r`).
    fn interpolate(&self, q: &QueryTuple) -> Option<f64>;

    /// Interpolates a batch of query tuples, appending one answer per tuple
    /// to `out`.
    ///
    /// The batched serving path ([`QueryEngine::query_batch_into`]) reuses
    /// one result buffer across frames, so this must append into the
    /// caller's buffer rather than allocate its own.
    fn interpolate_batch(&self, queries: &[QueryTuple], out: &mut Vec<Option<f64>>) {
        out.reserve(queries.len());
        for q in queries {
            out.push(self.interpolate(q));
        }
    }

    /// The method implemented by this processor.
    fn method(&self) -> QueryMethod;
}
