//! Inverse-distance-weighted (IDW) interpolation — an extension baseline.
//!
//! The paper's raw-data methods average *uniformly* within radius `r`,
//! which wastes the distance information the radius search already
//! computed. IDW (Shepard interpolation) weights the `k` nearest tuples by
//! `1/dᵖ` instead, answering every query for which *any* data exists. Not
//! part of the paper — included as the natural "stronger raw-data
//! baseline" an adopter would ask about (see the `abl-interp` ablation).

use crate::query::{PointQueryProcessor, QueryMethod};
use enviro_data::{QueryTuple, RawTuple};
use enviro_index::{Entry, RTree, SpatialIndex};

/// IDW parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdwConfig {
    /// Number of neighbours interpolated over.
    pub k: usize,
    /// Distance exponent `p` (2 is Shepard's classic choice).
    pub power: f64,
}

impl Default for IdwConfig {
    fn default() -> Self {
        Self { k: 8, power: 2.0 }
    }
}

/// Inverse-distance-weighted interpolation over one window, with the k-NN
/// search served by an STR-packed R-tree.
#[derive(Debug, Clone)]
pub struct IdwProcessor {
    tree: RTree,
    values: Vec<f64>,
    config: IdwConfig,
}

impl IdwProcessor {
    /// Builds the processor over one window's tuples.
    pub fn build(tuples: &[RawTuple], config: IdwConfig) -> Self {
        assert!(config.k >= 1, "IDW needs at least one neighbour");
        assert!(config.power > 0.0, "IDW power must be positive");
        let entries: Vec<Entry> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Entry::new(t.pos, i as u32))
            .collect();
        Self {
            tree: RTree::bulk_load(entries),
            values: tuples.iter().map(|t| t.value).collect(),
            config,
        }
    }

    /// The parameters in use.
    pub fn config(&self) -> IdwConfig {
        self.config
    }
}

impl PointQueryProcessor for IdwProcessor {
    fn interpolate(&self, q: &QueryTuple) -> Option<f64> {
        let neighbors = self.tree.nearest(&q.pos, self.config.k);
        if neighbors.is_empty() {
            return None;
        }
        // A (near-)exact hit dominates all weights; return it directly to
        // avoid dividing by ~0.
        if neighbors[0].distance < 1e-9 {
            return Some(self.values[neighbors[0].entry.id as usize]);
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for n in &neighbors {
            let w = n.distance.powf(-self.config.power);
            num += w * self.values[n.entry.id as usize];
            den += w;
        }
        Some(num / den)
    }

    fn method(&self) -> QueryMethod {
        QueryMethod::Idw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::Timestamp;
    use enviro_geo::Point;

    fn tup(x: f64, y: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::ZERO, Point::new(x, y), v)
    }

    fn q(x: f64, y: f64) -> QueryTuple {
        QueryTuple::new(Timestamp::ZERO, Point::new(x, y))
    }

    #[test]
    fn empty_window_returns_none() {
        let p = IdwProcessor::build(&[], IdwConfig::default());
        assert_eq!(p.interpolate(&q(0.0, 0.0)), None);
    }

    #[test]
    fn exact_hit_returns_sample_value() {
        let p = IdwProcessor::build(
            &[tup(1.0, 1.0, 77.0), tup(10.0, 10.0, 99.0)],
            IdwConfig::default(),
        );
        assert_eq!(p.interpolate(&q(1.0, 1.0)), Some(77.0));
    }

    #[test]
    fn interpolation_is_between_neighbour_values() {
        let p = IdwProcessor::build(
            &[tup(0.0, 0.0, 100.0), tup(10.0, 0.0, 200.0)],
            IdwConfig { k: 2, power: 2.0 },
        );
        let v = p.interpolate(&q(5.0, 0.0)).unwrap();
        assert!((v - 150.0).abs() < 1e-9, "midpoint is the plain mean: {v}");
        let closer = p.interpolate(&q(2.0, 0.0)).unwrap();
        assert!(closer < 150.0, "closer to 100 ⇒ below the mean: {closer}");
        assert!((100.0..200.0).contains(&closer));
    }

    #[test]
    fn weighting_sharpens_with_power() {
        let tuples = [tup(0.0, 0.0, 100.0), tup(10.0, 0.0, 200.0)];
        let p2 = IdwProcessor::build(&tuples, IdwConfig { k: 2, power: 2.0 });
        let p8 = IdwProcessor::build(&tuples, IdwConfig { k: 2, power: 8.0 });
        // At x = 2, a higher power gives the nearer sample more dominance.
        let v2 = p2.interpolate(&q(2.0, 0.0)).unwrap();
        let v8 = p8.interpolate(&q(2.0, 0.0)).unwrap();
        assert!(v8 < v2, "p=8 {v8} vs p=2 {v2}");
    }

    #[test]
    fn answers_far_from_data_unlike_radius_methods() {
        let p = IdwProcessor::build(&[tup(0.0, 0.0, 420.0)], IdwConfig::default());
        let v = p.interpolate(&q(1.0e5, 1.0e5)).unwrap();
        assert_eq!(v, 420.0);
    }

    #[test]
    fn respects_k_limit() {
        // Three near samples at 111 and a far outlier at 999: with k = 3
        // the outlier never contributes.
        let tuples = [
            tup(0.0, 0.0, 111.0),
            tup(1.0, 0.0, 111.0),
            tup(0.0, 1.0, 111.0),
            tup(1_000.0, 1_000.0, 999.0),
        ];
        let p = IdwProcessor::build(&tuples, IdwConfig { k: 3, power: 2.0 });
        let v = p.interpolate(&q(0.4, 0.4)).unwrap();
        assert!((v - 111.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn method_tag() {
        let p = IdwProcessor::build(&[], IdwConfig::default());
        assert_eq!(p.method(), QueryMethod::Idw);
    }
}
