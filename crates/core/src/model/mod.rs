//! Per-region models and the approximation-error metric.
//!
//! Each sub-region of a model cover carries one [`RegionModel`]: either a
//! full spatio-temporal [`LinearModel`] (`s = β₀ + β₁x + β₂y + β₃t` over
//! standardized features) or — when the region holds too few or too
//! degenerate tuples — a mean model. The quality of a model on its training
//! window is the paper's [`ApproximationError`]: mean absolute error as a
//! percentage of the pollutant's normal range.

mod error;
mod linear;

pub use error::ApproximationError;
pub use linear::{FitConfig, LinearModel};

use enviro_data::{Pollutant, RawTuple, Timestamp};
use enviro_geo::Point;

/// The model attached to one sub-region of a model cover.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionModel {
    /// A fitted linear regression over space and time.
    Linear(LinearModel),
    /// Fallback: the mean of the region's training values. Used when the
    /// region is too small or too collinear for a stable regression.
    Mean(f64),
}

impl RegionModel {
    /// Fits the best available model for a region's tuples.
    ///
    /// Fits a sample-scaled ridge regression (see [`FitConfig::ridge_alpha`]
    /// for why ridge, not OLS), falling back to the mean when fewer than
    /// [`FitConfig::min_points_for_regression`] tuples are available or the
    /// solve fails. An empty region has no meaningful model and returns
    /// `None`.
    pub fn fit(tuples: &[RawTuple], config: &FitConfig) -> Option<RegionModel> {
        if tuples.is_empty() {
            return None;
        }
        if tuples.len() >= config.min_points_for_regression {
            if let Some(linear) = LinearModel::fit(tuples, config) {
                return Some(RegionModel::Linear(linear));
            }
        }
        let mean = tuples.iter().map(|t| t.value).sum::<f64>() / tuples.len() as f64;
        Some(RegionModel::Mean(mean))
    }

    /// Evaluates the model at a time and position.
    pub fn predict(&self, time: Timestamp, pos: &Point) -> f64 {
        match self {
            RegionModel::Linear(m) => m.predict(time, pos),
            RegionModel::Mean(v) => *v,
        }
    }

    /// The paper's approximation error of this model on a tuple set.
    pub fn approximation_error(
        &self,
        tuples: &[RawTuple],
        pollutant: Pollutant,
    ) -> ApproximationError {
        ApproximationError::compute(
            tuples
                .iter()
                .map(|t| (self.predict(t.time, &t.pos), t.value)),
            pollutant,
        )
    }

    /// Number of `f64` coefficients a client must receive to evaluate this
    /// model — the quantity that the model-cache protocol ships over the
    /// air.
    pub fn coefficient_count(&self) -> usize {
        match self {
            RegionModel::Linear(_) => LinearModel::COEFFICIENT_COUNT,
            RegionModel::Mean(_) => 1,
        }
    }
}

impl enviro_memsize::DeepSize for RegionModel {
    #[inline]
    fn heap_size(&self) -> usize {
        0 // both variants are inline-only
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::Timestamp;

    fn tup(t: i64, x: f64, y: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(t), Point::new(x, y), v)
    }

    #[test]
    fn fit_empty_region_is_none() {
        assert!(RegionModel::fit(&[], &FitConfig::default()).is_none());
    }

    #[test]
    fn fit_small_region_is_mean() {
        let tuples = [tup(0, 0.0, 0.0, 10.0), tup(1, 1.0, 0.0, 20.0)];
        let m = RegionModel::fit(&tuples, &FitConfig::default()).unwrap();
        match m {
            RegionModel::Mean(v) => assert_eq!(v, 15.0),
            other => panic!("expected mean model, got {other:?}"),
        }
    }

    #[test]
    fn fit_planar_data_recovers_plane() {
        // s = 100 + 0.5x - 0.25y, time-invariant, over a grid of points.
        let mut tuples = Vec::new();
        for i in 0..6i64 {
            for j in 0..6i64 {
                let (x, y) = (i as f64 * 10.0, j as f64 * 10.0);
                // Times decorrelated from positions so OLS has full rank.
                let t = ((i * 6 + j) * 104_729) % 3_000;
                tuples.push(tup(t, x, y, 100.0 + 0.5 * x - 0.25 * y));
            }
        }
        let m = RegionModel::fit(&tuples, &FitConfig::default()).unwrap();
        assert!(matches!(m, RegionModel::Linear(_)));
        let pred = m.predict(Timestamp::from_secs(90), &Point::new(25.0, 35.0));
        let want = 100.0 + 0.5 * 25.0 - 0.25 * 35.0;
        assert!((pred - want).abs() < 0.5, "{pred} vs {want}");
    }

    #[test]
    fn fit_collinear_positions_still_works() {
        // All samples on a line (a bus trajectory): OLS normal equations may
        // be singular in the direction orthogonal to the line; the fit must
        // still succeed (ridge or mean) and predict something finite.
        let tuples: Vec<RawTuple> = (0..20)
            .map(|i| tup(i, i as f64 * 5.0, i as f64 * 5.0, 50.0 + i as f64))
            .collect();
        let m = RegionModel::fit(&tuples, &FitConfig::default()).unwrap();
        let pred = m.predict(Timestamp::from_secs(10), &Point::new(50.0, 50.0));
        assert!(pred.is_finite());
        assert!((pred - 60.0).abs() < 5.0, "prediction {pred} off the line");
    }

    #[test]
    fn fit_identical_positions_falls_back() {
        let tuples: Vec<RawTuple> = (0..10).map(|_| tup(0, 1.0, 1.0, 7.0)).collect();
        let m = RegionModel::fit(&tuples, &FitConfig::default()).unwrap();
        let pred = m.predict(Timestamp::ZERO, &Point::new(1.0, 1.0));
        assert!((pred - 7.0).abs() < 1e-2, "{pred}");
    }

    #[test]
    fn approximation_error_zero_for_exact_model() {
        let m = RegionModel::Mean(42.0);
        let tuples = [tup(0, 0.0, 0.0, 42.0), tup(1, 5.0, 5.0, 42.0)];
        let err = m.approximation_error(&tuples, Pollutant::Co2);
        assert_eq!(err.percent(), 0.0);
    }

    #[test]
    fn approximation_error_scales_with_normal_range() {
        let m = RegionModel::Mean(0.0);
        let tuples = [tup(0, 0.0, 0.0, 11.5)]; // |err| = 11.5
                                               // CO2 normal range width = 1150 → 1 %.
        let err = m.approximation_error(&tuples, Pollutant::Co2);
        assert!((err.percent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coefficient_counts() {
        assert_eq!(RegionModel::Mean(1.0).coefficient_count(), 1);
        let tuples: Vec<RawTuple> = (0..16)
            .map(|i| tup(i, (i % 4) as f64, (i / 4) as f64, i as f64))
            .collect();
        let m = RegionModel::fit(&tuples, &FitConfig::default()).unwrap();
        if let RegionModel::Linear(_) = m {
            assert_eq!(m.coefficient_count(), LinearModel::COEFFICIENT_COUNT);
        }
    }
}
