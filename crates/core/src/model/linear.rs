//! Spatio-temporal linear regression over standardized features.

use enviro_data::{RawTuple, Timestamp};
use enviro_geo::Point;
use enviro_linalg::{lstsq_ridge, Matrix};

/// Fitting policy shared by all region models.
#[derive(Debug, Clone, PartialEq)]
pub struct FitConfig {
    /// Below this many tuples a region gets a mean model instead of a
    /// regression (4 coefficients need comfortably more than 4 points).
    pub min_points_for_regression: usize,
    /// Relative ridge strength: the solver uses `λ = ridge_alpha · n` on
    /// standardized features.
    ///
    /// Bus-trajectory windows are nearly one-dimensional: the spatial slope
    /// *orthogonal* to the track is unidentifiable, and plain OLS would fit
    /// it to GPS noise — harmless on the track, catastrophic when a query
    /// extrapolates a few hundred meters off-corridor. Sample-scaled ridge
    /// shrinks exactly those unidentified directions (Gram eigenvalue ≪
    /// λ·n) to zero while biasing well-identified slopes by only
    /// ≈ `ridge_alpha` relative.
    pub ridge_alpha: f64,
    /// Minimum spatial spread (meters, standard deviation) for a coordinate
    /// to earn a slope. A region whose lateral extent is only GPS noise
    /// (~5 m) must not fit a lateral gradient: standardization would
    /// amplify that noise-slope 100× for a query a few hundred meters
    /// off-track.
    pub min_spatial_spread_m: f64,
    /// Minimum temporal spread (seconds) for the time feature to earn a
    /// slope.
    pub min_time_spread_s: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            min_points_for_regression: 8,
            ridge_alpha: 1e-4,
            min_spatial_spread_m: 10.0,
            min_time_spread_s: 30.0,
        }
    }
}

/// A fitted linear model `s = β₀ + β₁·x̃ + β₂·ỹ + β₃·t̃`.
///
/// Features are *standardized* (centered on the training mean, scaled by
/// the training spread) before fitting — raw city coordinates (10³ m) and
/// timestamps (10⁶ s) would otherwise produce a catastrophically
/// ill-conditioned Gram matrix. The standardization constants are part of
/// the model and travel with it over the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Coefficients `[β₀, β₁, β₂, β₃]` over `[1, x̃, ỹ, t̃]`.
    pub beta: [f64; 4],
    /// Feature centers `(cx, cy, ct)`.
    pub center: (f64, f64, f64),
    /// Feature scales `(sx, sy, st)`. A scale of `f64::INFINITY` marks a
    /// *degenerate* dimension (training spread below the identifiability
    /// floor): its standardized feature is always 0 and the model carries
    /// no slope for it.
    pub scale: (f64, f64, f64),
    /// Plausible output interval, derived from the training values (extended
    /// by 10 % of their span). Predictions are clamped into it: a local
    /// model may interpolate and gently extrapolate, but never invent
    /// values far outside what its region ever observed.
    pub value_range: (f64, f64),
}

/// Prediction-time clamp on standardized features: a local region model is
/// only trusted a few standard deviations beyond its training support;
/// farther out it saturates instead of extrapolating linearly.
const FEATURE_CLAMP: f64 = 4.0;

#[inline]
fn feature(v: f64, center: f64, scale: f64) -> f64 {
    // Degenerate dimensions have scale = ∞ → feature 0.
    ((v - center) / scale).clamp(-FEATURE_CLAMP, FEATURE_CLAMP)
}

impl LinearModel {
    /// Number of `f64` values needed to reconstruct the model
    /// (4 β + 3 centers + 3 scales + 2 value bounds).
    pub const COEFFICIENT_COUNT: usize = 12;

    /// Fits the model by ridge regression on standardized features (see
    /// [`FitConfig::ridge_alpha`] for why ridge is not merely a fallback).
    /// Returns `None` when no finite coefficients exist (non-finite inputs).
    pub fn fit(tuples: &[RawTuple], config: &FitConfig) -> Option<LinearModel> {
        let n = tuples.len();
        if n < 4 {
            return None;
        }
        // Standardization constants.
        let nf = n as f64;
        let cx = tuples.iter().map(|t| t.pos.x).sum::<f64>() / nf;
        let cy = tuples.iter().map(|t| t.pos.y).sum::<f64>() / nf;
        let ct = tuples.iter().map(|t| t.time.as_secs_f64()).sum::<f64>() / nf;
        let spread = |f: &dyn Fn(&RawTuple) -> f64, c: f64, floor: f64| -> f64 {
            let var = tuples.iter().map(|t| (f(t) - c).powi(2)).sum::<f64>() / nf;
            let sd = var.sqrt();
            // Below the identifiability floor the dimension is degenerate.
            if sd < floor {
                f64::INFINITY
            } else {
                sd
            }
        };
        let sx = spread(&|t| t.pos.x, cx, config.min_spatial_spread_m);
        let sy = spread(&|t| t.pos.y, cy, config.min_spatial_spread_m);
        let st = spread(&|t| t.time.as_secs_f64(), ct, config.min_time_spread_s);

        let mut design = Vec::with_capacity(n * 4);
        for t in tuples {
            design.push(1.0);
            design.push(feature(t.pos.x, cx, sx));
            design.push(feature(t.pos.y, cy, sy));
            design.push(feature(t.time.as_secs_f64(), ct, st));
        }
        let a = Matrix::from_rows(n, 4, design);
        let b: Vec<f64> = tuples.iter().map(|t| t.value).collect();
        let lambda = (config.ridge_alpha * n as f64).max(f64::MIN_POSITIVE);
        let beta_vec = lstsq_ridge(&a, &b, lambda).ok()?;
        let beta = [beta_vec[0], beta_vec[1], beta_vec[2], beta_vec[3]];
        if !beta.iter().all(|v| v.is_finite()) {
            return None;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &b {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let margin = (hi - lo) * 0.1;
        Some(LinearModel {
            beta,
            center: (cx, cy, ct),
            scale: (sx, sy, st),
            value_range: (lo - margin, hi + margin),
        })
    }

    /// Evaluates the model at `(time, pos)`.
    ///
    /// Standardized features are clamped to ±4 σ of the training support:
    /// a region model describes its neighbourhood and saturates — rather
    /// than extrapolating a straight line — far outside it.
    #[inline]
    pub fn predict(&self, time: Timestamp, pos: &Point) -> f64 {
        let (cx, cy, ct) = self.center;
        let (sx, sy, st) = self.scale;
        let raw = self.beta[0]
            + self.beta[1] * feature(pos.x, cx, sx)
            + self.beta[2] * feature(pos.y, cy, sy)
            + self.beta[3] * feature(time.as_secs_f64(), ct, st);
        raw.clamp(self.value_range.0, self.value_range.1)
    }

    /// Serializes the model to its wire coefficients (see
    /// [`LinearModel::COEFFICIENT_COUNT`]).
    pub fn to_coefficients(&self) -> [f64; Self::COEFFICIENT_COUNT] {
        [
            self.beta[0],
            self.beta[1],
            self.beta[2],
            self.beta[3],
            self.center.0,
            self.center.1,
            self.center.2,
            self.scale.0,
            self.scale.1,
            self.scale.2,
            self.value_range.0,
            self.value_range.1,
        ]
    }

    /// Verifies the model's numeric invariants, returning the first
    /// violation found:
    /// * `beta` and `center` are finite;
    /// * scales are positive, and either finite or the `INFINITY`
    ///   degenerate-dimension sentinel (never NaN);
    /// * the value range is finite and ordered.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.beta.iter().all(|b| b.is_finite()) {
            return Err(format!("non-finite beta {:?}", self.beta));
        }
        let (cx, cy, ct) = self.center;
        if !(cx.is_finite() && cy.is_finite() && ct.is_finite()) {
            return Err(format!("non-finite center {:?}", self.center));
        }
        let (sx, sy, st) = self.scale;
        if !(sx > 0.0 && sy > 0.0 && st > 0.0) {
            return Err(format!("non-positive or NaN scale {:?}", self.scale));
        }
        let (lo, hi) = self.value_range;
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(format!("bad value range {:?}", self.value_range));
        }
        Ok(())
    }

    /// Reconstructs a model from wire coefficients.
    pub fn from_coefficients(c: &[f64; Self::COEFFICIENT_COUNT]) -> LinearModel {
        LinearModel {
            beta: [c[0], c[1], c[2], c[3]],
            center: (c[4], c[5], c[6]),
            scale: (c[7], c[8], c[9]),
            value_range: (c[10], c[11]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup(t: i64, x: f64, y: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(t), Point::new(x, y), v)
    }

    /// Grid of samples from an exact plane with a time trend. Times are
    /// decoupled from positions (pseudo-random order) so the design matrix
    /// has full rank and OLS applies.
    fn planar_tuples() -> Vec<RawTuple> {
        let mut out = Vec::new();
        for i in 0..5i64 {
            for j in 0..5i64 {
                let (x, y) = (i as f64 * 100.0, j as f64 * 100.0);
                let t = ((i * 5 + j) * 7919) % 1500; // decorrelated from (x, y)
                out.push(tup(t, x, y, 400.0 + 0.1 * x - 0.05 * y + 0.01 * t as f64));
            }
        }
        out
    }

    #[test]
    fn recovers_exact_plane_with_time() {
        let tuples = planar_tuples();
        let m = LinearModel::fit(&tuples, &FitConfig::default()).unwrap();
        // Ridge biases the fit by ~ridge_alpha relative; tolerance reflects
        // that.
        for t in &tuples {
            let pred = m.predict(t.time, &t.pos);
            assert!((pred - t.value).abs() < 0.5, "{pred} vs {}", t.value);
        }
    }

    #[test]
    fn extrapolates_the_plane() {
        let m = LinearModel::fit(&planar_tuples(), &FitConfig::default()).unwrap();
        let pred = m.predict(Timestamp::from_secs(600), &Point::new(250.0, 150.0));
        let want = 400.0 + 0.1 * 250.0 - 0.05 * 150.0 + 0.01 * 600.0;
        assert!((pred - want).abs() < 1.0, "{pred} vs {want}");
    }

    #[test]
    fn fit_needs_at_least_four_points() {
        let tuples = vec![tup(0, 0.0, 0.0, 1.0); 3];
        assert!(LinearModel::fit(&tuples, &FitConfig::default()).is_none());
    }

    #[test]
    fn handles_huge_raw_coordinates() {
        // Unstandardized, x ~ 1e6 and t ~ 1e6 would wreck conditioning.
        let tuples: Vec<RawTuple> = (0..50)
            .map(|i| {
                let x = 1.0e6 + i as f64;
                let y = -2.0e6 + (i * i % 13) as f64;
                tup(1_000_000 + i * 60, x, y, 500.0 + (i % 7) as f64)
            })
            .collect();
        let m = LinearModel::fit(&tuples, &FitConfig::default()).unwrap();
        let pred = m.predict(tuples[10].time, &tuples[10].pos);
        assert!(pred.is_finite());
        assert!((pred - tuples[10].value).abs() < 50.0);
    }

    #[test]
    fn coefficients_roundtrip() {
        let m = LinearModel::fit(&planar_tuples(), &FitConfig::default()).unwrap();
        let back = LinearModel::from_coefficients(&m.to_coefficients());
        assert_eq!(m, back);
    }

    #[test]
    fn constant_data_gives_constant_model() {
        // x and t are collinear here (a bus moving at constant speed), so
        // the fit falls back to ridge; the on-trajectory prediction must
        // still be the constant, up to the regularization bias.
        let tuples: Vec<RawTuple> = (0..10).map(|i| tup(i, i as f64, 0.0, 33.0)).collect();
        let m = LinearModel::fit(&tuples, &FitConfig::default());
        if let Some(m) = m {
            let pred = m.predict(Timestamp::from_secs(4), &Point::new(4.0, 0.0));
            assert!((pred - 33.0).abs() < 0.1, "{pred}");
        }
    }
}
