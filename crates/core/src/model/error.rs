//! The paper's approximation-error metric.

use enviro_data::Pollutant;

/// Approximation error of a model on a tuple set: "the average percentage
/// error compared to the normal range of `s_i` in the environment
/// (pollutant specific)" — footnote 1 of the paper.
///
/// Concretely: `mean(|ŝ_i − s_i|) / normal_range_width(pollutant) × 100`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproximationError {
    mean_abs: f64,
    percent: f64,
    count: usize,
}

impl ApproximationError {
    /// Computes the error over `(prediction, actual)` pairs.
    ///
    /// An empty iterator yields a zero error over zero samples (a region
    /// with no residuals violates no threshold).
    pub fn compute<I>(pairs: I, pollutant: Pollutant) -> Self
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        let mut sum_abs = 0.0;
        let mut count = 0usize;
        for (pred, actual) in pairs {
            sum_abs += (pred - actual).abs();
            count += 1;
        }
        let mean_abs = if count == 0 {
            0.0
        } else {
            sum_abs / count as f64
        };
        let percent = mean_abs / pollutant.normal_range_width() * 100.0;
        Self {
            mean_abs,
            percent,
            count,
        }
    }

    /// Mean absolute error in the pollutant unit.
    #[inline]
    pub fn mean_abs(&self) -> f64 {
        self.mean_abs
    }

    /// The error as a percentage of the pollutant's normal range — the
    /// quantity compared against the threshold `τ_n`.
    #[inline]
    pub fn percent(&self) -> f64 {
        self.percent
    }

    /// Number of samples the error was computed over.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` if the error violates the threshold `tau_percent`.
    #[inline]
    pub fn exceeds(&self, tau_percent: f64) -> bool {
        self.percent > tau_percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let e = ApproximationError::compute(std::iter::empty(), Pollutant::Co2);
        assert_eq!(e.percent(), 0.0);
        assert_eq!(e.count(), 0);
        assert!(!e.exceeds(0.0));
    }

    #[test]
    fn mean_abs_is_average_of_absolute_residuals() {
        let e = ApproximationError::compute(
            vec![(10.0, 12.0), (10.0, 7.0)], // residuals 2 and 3
            Pollutant::Co2,
        );
        assert_eq!(e.mean_abs(), 2.5);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn percent_uses_pollutant_range() {
        // CO normal range width = 30; residual 3 → 10 %.
        let e = ApproximationError::compute(vec![(0.0, 3.0)], Pollutant::Co);
        assert!((e.percent() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exceeds_is_strict() {
        // CO2 normal range width = 1150; residual 11.5 → exactly 1 %.
        let e = ApproximationError::compute(vec![(0.0, 11.5)], Pollutant::Co2);
        assert!(e.exceeds(0.5));
        assert!(!e.exceeds(1.0)); // equal is not exceeding
        assert!(!e.exceeds(2.0));
    }

    #[test]
    fn sign_of_residual_does_not_matter() {
        let over = ApproximationError::compute(vec![(10.0, 5.0)], Pollutant::Co2);
        let under = ApproximationError::compute(vec![(5.0, 10.0)], Pollutant::Co2);
        assert_eq!(over.percent(), under.percent());
    }
}
