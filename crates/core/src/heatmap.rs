//! Heatmap visualization — the web interface's third mode (§3).
//!
//! "The emitting points are the centroids computed by the Ad-KMN algorithm
//! with its pollution level. The points are colored in a scale going from
//! acceptable (green) to dangerous to human health (red)." The builder
//! evaluates a model cover at every cell center of a uniform grid; the
//! result renders to a PPM image or an ASCII preview.

use crate::cover::ModelCover;
use enviro_data::{Pollutant, Timestamp};
use enviro_geo::{BoundingBox, Grid, Point};

/// A computed heatmap: one interpolated value per grid cell.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// The grid geometry.
    pub grid: Grid,
    /// The evaluation time.
    pub time: Timestamp,
    /// The pollutant rendered.
    pub pollutant: Pollutant,
    /// Interpolated value per cell, row-major ([`Grid::flat_index`] order).
    pub values: Vec<f64>,
    /// Centroid positions and their local pollution level (the "emitting
    /// points" drawn on the web map).
    pub emitters: Vec<(Point, f64)>,
}

/// Builds heatmaps from model covers.
#[derive(Debug, Clone)]
pub struct HeatmapBuilder {
    cols: u32,
    rows: u32,
}

impl HeatmapBuilder {
    /// A builder producing `cols × rows` heatmaps.
    pub fn new(cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "heatmap needs at least one cell");
        Self { cols, rows }
    }

    /// Evaluates `cover` over `extent` at time `t`.
    ///
    /// Returns `None` for an empty cover (nothing to render).
    pub fn build(&self, cover: &ModelCover, extent: BoundingBox, t: Timestamp) -> Option<Heatmap> {
        if cover.is_empty() || extent.is_empty() {
            return None;
        }
        let grid = Grid::new(extent, self.cols, self.rows);
        let mut values = Vec::with_capacity(grid.len());
        for cell in grid.iter_cells() {
            let center = grid.cell_center(cell);
            values.push(
                cover
                    .interpolate(t, &center)
                    .expect("non-empty cover answers everywhere"),
            );
        }
        let emitters = cover
            .regions
            .iter()
            .map(|r| {
                let level = r.model.predict(t, &r.centroid);
                (r.centroid, level)
            })
            .collect();
        Some(Heatmap {
            grid,
            time: t,
            pollutant: cover.pollutant,
            values,
            emitters,
        })
    }
}

impl Heatmap {
    /// The value range `(min, max)` over the map.
    pub fn value_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// The green→red color of a value on this map's scale.
    ///
    /// Colors interpolate hue from green (map minimum) through yellow to
    /// red (map maximum), matching the web UI's scale.
    pub fn color_of(&self, value: f64) -> (u8, u8, u8) {
        let (lo, hi) = self.value_range();
        let t = if hi > lo {
            ((value - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Piecewise green → yellow → red.
        if t < 0.5 {
            let k = t * 2.0;
            (((k * 255.0) as u8), 200, 40)
        } else {
            let k = (t - 0.5) * 2.0;
            (255, ((1.0 - k) * 200.0) as u8, 40)
        }
    }

    /// Renders the heatmap to a binary PPM (P6) image, one pixel per cell,
    /// north up (row 0 of the image is the northernmost grid row).
    pub fn to_ppm(&self) -> Vec<u8> {
        let (w, h) = (self.grid.cols(), self.grid.rows());
        let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
        out.reserve(self.values.len() * 3);
        for row in (0..h).rev() {
            for col in 0..w {
                let idx = self.grid.flat_index(enviro_geo::CellId::new(col, row));
                let (r, g, b) = self.color_of(self.values[idx]);
                out.extend_from_slice(&[r, g, b]);
            }
        }
        out
    }

    /// Renders an ASCII preview: one character per cell, `.`→`#` by
    /// intensity, north up. Useful for terminal demos and tests.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b".:-=+*%@#";
        let (lo, hi) = self.value_range();
        let span = (hi - lo).max(1e-12);
        let (w, h) = (self.grid.cols(), self.grid.rows());
        let mut out = String::with_capacity((w as usize + 1) * h as usize);
        for row in (0..h).rev() {
            for col in 0..w {
                let idx = self.grid.flat_index(enviro_geo::CellId::new(col, row));
                let t = ((self.values[idx] - lo) / span).clamp(0.0, 1.0);
                let ci = ((t * (RAMP.len() - 1) as f64).round()) as usize;
                out.push(RAMP[ci] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AdKmnConfig;
    use crate::cover::CoverBuilder;
    use enviro_data::{Dataset, RawTuple, WindowSpec, Windows};

    fn gradient_cover() -> ModelCover {
        // Values rise eastwards: the heatmap must be brighter on the right.
        let tuples: Vec<RawTuple> = (0..100)
            .map(|i| {
                let x = (i % 10) as f64 * 100.0;
                let y = (i / 10) as f64 * 100.0;
                RawTuple::new(Timestamp::from_secs(i), Point::new(x, y), 400.0 + 0.5 * x)
            })
            .collect();
        let ds = Dataset::from_tuples(Pollutant::Co2, tuples).unwrap();
        let w = Windows::new(&ds, WindowSpec::ByCount(100)).next().unwrap();
        CoverBuilder::new(AdKmnConfig::default()).build(&w, Pollutant::Co2)
    }

    fn extent() -> BoundingBox {
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(900.0, 900.0))
    }

    #[test]
    fn build_fills_every_cell() {
        let hm = HeatmapBuilder::new(16, 12)
            .build(&gradient_cover(), extent(), Timestamp::from_secs(50))
            .unwrap();
        assert_eq!(hm.values.len(), 16 * 12);
        assert!(hm.values.iter().all(|v| v.is_finite()));
        assert!(!hm.emitters.is_empty());
    }

    #[test]
    fn empty_cover_gives_none() {
        let cover = ModelCover {
            pollutant: Pollutant::Co2,
            window_id: 0,
            valid_until: Timestamp::ZERO,
            regions: Vec::new(),
        };
        assert!(HeatmapBuilder::new(4, 4)
            .build(&cover, extent(), Timestamp::ZERO)
            .is_none());
    }

    #[test]
    fn gradient_shows_in_values() {
        let hm = HeatmapBuilder::new(10, 10)
            .build(&gradient_cover(), extent(), Timestamp::from_secs(50))
            .unwrap();
        // Mean of the west column vs the east column.
        let west: f64 = (0..10)
            .map(|row| hm.values[hm.grid.flat_index(enviro_geo::CellId::new(0, row))])
            .sum::<f64>()
            / 10.0;
        let east: f64 = (0..10)
            .map(|row| hm.values[hm.grid.flat_index(enviro_geo::CellId::new(9, row))])
            .sum::<f64>()
            / 10.0;
        assert!(east > west + 100.0, "east {east} vs west {west}");
    }

    #[test]
    fn ppm_header_and_size() {
        let hm = HeatmapBuilder::new(8, 6)
            .build(&gradient_cover(), extent(), Timestamp::from_secs(0))
            .unwrap();
        let ppm = hm.to_ppm();
        let header = b"P6\n8 6\n255\n";
        assert_eq!(&ppm[..header.len()], header);
        assert_eq!(ppm.len(), header.len() + 8 * 6 * 3);
    }

    #[test]
    fn color_scale_endpoints() {
        let hm = HeatmapBuilder::new(4, 4)
            .build(&gradient_cover(), extent(), Timestamp::from_secs(0))
            .unwrap();
        let (lo, hi) = hm.value_range();
        let (r_lo, g_lo, _) = hm.color_of(lo);
        let (r_hi, g_hi, _) = hm.color_of(hi);
        assert!(g_lo > r_lo, "minimum is green");
        assert!(r_hi > g_hi, "maximum is red");
    }

    #[test]
    fn ascii_has_grid_shape() {
        let hm = HeatmapBuilder::new(12, 5)
            .build(&gradient_cover(), extent(), Timestamp::from_secs(0))
            .unwrap();
        let text = hm.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.chars().count() == 12));
        // Gradient rises eastwards: last char of a row should be "denser"
        // than the first.
        assert_ne!(lines[2].chars().next(), lines[2].chars().last());
    }

    #[test]
    fn value_range_is_tight() {
        let hm = HeatmapBuilder::new(6, 6)
            .build(&gradient_cover(), extent(), Timestamp::from_secs(0))
            .unwrap();
        let (lo, hi) = hm.value_range();
        assert!(hm.values.iter().all(|&v| v >= lo && v <= hi));
        assert!(hi > lo);
    }
}
