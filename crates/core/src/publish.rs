//! Online cover publication: epoch-versioned, atomically swapped cover sets.
//!
//! The durable write path rebuilds model covers on a background thread
//! while queries keep flowing. The two sides meet here: the maintenance
//! worker assembles a fresh [`CoverSet`] off the hot path and
//! [`CoverRegistry::publish`]es it with a single `Arc` swap, so a reader
//! either sees the complete old set or the complete new one — never a
//! half-updated mixture, and never a lock held across a model rebuild.
//!
//! Each publication bumps a monotone **generation** number. The server
//! stamps it into every `ValueBatch` reply, which lets a cover-caching
//! client detect that the models it holds predate the latest publication
//! and refetch instead of serving stale interpolations.
//!
//! Query routing mirrors the batch engine: a query at time `t` is answered
//! by the newest window whose **first tuple** is at or before `t` (not the
//! window's epoch boundary — an empty leading stretch of a window belongs
//! to its predecessor until data actually arrives). Keeping that rule
//! identical is what makes streamed answers bit-equal to batch answers.

use crate::cover::ModelCover;
use enviro_data::Timestamp;
use enviro_memsize::DeepSize;
use enviro_schedule::sync::atomic::{AtomicU64, Ordering};
use enviro_schedule::sync::{Arc, RwLock};

/// One published cover: a window's models plus the routing key.
#[derive(Debug, Clone)]
pub struct PublishedCover {
    /// The window this cover was learned from.
    pub window_id: u64,
    /// Arrival time of the window's first tuple — the routing key that
    /// keeps streamed routing bit-identical to the batch engine's.
    pub first_time: Timestamp,
    /// The cover itself, shared with in-flight readers.
    pub cover: Arc<ModelCover>,
}

/// An immutable, atomically-published set of covers, sorted by window id.
#[derive(Debug, Clone, Default)]
pub struct CoverSet {
    entries: Vec<PublishedCover>,
}

impl CoverSet {
    /// An empty set (what a registry holds before the first publication).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of published windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The published covers, oldest window first.
    pub fn entries(&self) -> &[PublishedCover] {
        &self.entries
    }

    /// The cover published for window `id`, if any.
    pub fn cover_for_window(&self, id: u64) -> Option<&PublishedCover> {
        self.entries
            .binary_search_by_key(&id, |e| e.window_id)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The cover responsible for a query at `t`: the newest window whose
    /// first tuple is at or before `t`, falling back to the oldest window
    /// for queries that predate all data — exactly the batch
    /// [`crate::QueryEngine`]'s routing rule.
    pub fn cover_for_time(&self, t: Timestamp) -> Option<&PublishedCover> {
        if self.entries.is_empty() {
            return None;
        }
        let idx = self
            .entries
            .partition_point(|e| e.first_time <= t)
            .saturating_sub(1);
        Some(&self.entries[idx])
    }

    /// Verifies the set's ordering invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for pair in self.entries.windows(2) {
            if pair[0].window_id >= pair[1].window_id {
                return Err(format!(
                    "window ids not strictly increasing: {} then {}",
                    pair[0].window_id, pair[1].window_id
                ));
            }
            if pair[0].first_time > pair[1].first_time {
                return Err(format!(
                    "first times not monotone: window {} starts at {} but window {} at {}",
                    pair[0].window_id,
                    pair[0].first_time.as_secs(),
                    pair[1].window_id,
                    pair[1].first_time.as_secs()
                ));
            }
        }
        for e in &self.entries {
            if e.cover.window_id != e.window_id {
                return Err(format!(
                    "entry for window {} holds a cover built from window {}",
                    e.window_id, e.cover.window_id
                ));
            }
            e.cover
                .check_invariants()
                .map_err(|err| format!("window {}: {err}", e.window_id))?;
        }
        Ok(())
    }
}

impl DeepSize for PublishedCover {
    fn heap_size(&self) -> usize {
        // The Arc'd cover is attributed to the set that publishes it; a
        // second snapshot sharing the Arc double-counts, which is the
        // conservative direction for a memory budget.
        self.cover.deep_size_of()
    }
}

impl DeepSize for CoverSet {
    fn heap_size(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<PublishedCover>()
            + self.entries.iter().map(|e| e.heap_size()).sum::<usize>()
    }
}

/// The registry queries read from and the maintenance worker publishes to.
///
/// Readers call [`CoverRegistry::snapshot`] (one `RwLock` read + `Arc`
/// clone, never blocked by a rebuild) and keep using the snapshot for the
/// whole request; writers assemble the next [`CoverSet`] off to the side
/// and swap it in with [`CoverRegistry::publish`].
#[derive(Debug, Default)]
pub struct CoverRegistry {
    current: RwLock<Arc<CoverSet>>,
    generation: AtomicU64,
}

impl CoverRegistry {
    /// An empty registry at generation 0 (generation 0 is reserved for
    /// "nothing ever published" — the wire value a non-ingesting server
    /// reports).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current cover set. Cheap; the returned `Arc` stays valid (and
    /// internally consistent) however many publications happen after.
    pub fn snapshot(&self) -> Arc<CoverSet> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The generation of the latest publication (0 = none yet). Monotone.
    pub fn generation(&self) -> u64 {
        // ordering: Acquire pairs with the AcqRel bump in `publish` — a
        // reader that observes generation N also observes every write the
        // publisher made before bumping to N (the swapped cover set).
        self.generation.load(Ordering::Acquire)
    }

    /// Publishes `updates`: each entry replaces the current cover for its
    /// window (or inserts a new window), the rest of the set carries over.
    /// Returns the new generation. Entries with an empty cover are
    /// published too — an all-outlier window legitimately models nothing.
    pub fn publish(&self, updates: Vec<PublishedCover>) -> u64 {
        let mut guard = self.current.write().unwrap_or_else(|e| e.into_inner());
        let mut entries = guard.entries.clone();
        for update in updates {
            match entries.binary_search_by_key(&update.window_id, |e| e.window_id) {
                Ok(i) => entries[i] = update,
                Err(i) => entries.insert(i, update),
            }
        }
        *guard = Arc::new(CoverSet { entries });
        // Bumped while still holding the write lock, so generations observed
        // through a fresh snapshot are never ahead of the set's contents.
        // ordering: AcqRel — Release publishes the swapped set to Acquire
        // loads in `generation`; Acquire keeps the bump from being hoisted
        // above the swap on this side.
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Verifies the registry and its current set.
    pub fn check_invariants(&self) -> Result<(), String> {
        let snap = self.snapshot();
        if self.generation() == 0 && !snap.is_empty() {
            return Err("covers present at generation 0".into());
        }
        snap.check_invariants()
    }
}

impl DeepSize for CoverRegistry {
    fn heap_size(&self) -> usize {
        self.snapshot().deep_size_of()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AdKmnConfig;
    use crate::cover::CoverBuilder;
    use enviro_data::{Pollutant, RawTuple, Window};
    use enviro_geo::Point;

    fn built_cover(window_id: u64, base_secs: i64) -> Arc<ModelCover> {
        let tuples: Vec<RawTuple> = (0..12)
            .map(|i| {
                RawTuple::new(
                    Timestamp::from_secs(base_secs + i * 60),
                    Point::new(i as f64 * 40.0, -(i as f64) * 15.0),
                    420.0 + i as f64,
                )
            })
            .collect();
        let window = Window {
            id: window_id,
            tuples: &tuples,
            valid_until: Timestamp::from_secs((window_id as i64 + 1) * 3_600),
        };
        Arc::new(CoverBuilder::new(AdKmnConfig::default()).build(&window, Pollutant::Co2))
    }

    fn entry(window_id: u64, first_secs: i64) -> PublishedCover {
        PublishedCover {
            window_id,
            first_time: Timestamp::from_secs(first_secs),
            cover: built_cover(window_id, first_secs),
        }
    }

    #[test]
    fn empty_registry_answers_nothing_at_generation_zero() {
        let reg = CoverRegistry::new();
        assert_eq!(reg.generation(), 0);
        assert!(reg.snapshot().cover_for_time(Timestamp::ZERO).is_none());
        assert_eq!(reg.check_invariants(), Ok(()));
    }

    #[test]
    fn publish_bumps_generation_and_replaces_windows() {
        let reg = CoverRegistry::new();
        assert_eq!(reg.publish(vec![entry(0, 10), entry(1, 3_700)]), 1);
        assert_eq!(reg.generation(), 1);
        let before = reg.snapshot();
        assert_eq!(before.len(), 2);
        // Re-publishing window 1 replaces it without touching window 0.
        let replacement = entry(1, 3_650);
        assert_eq!(reg.publish(vec![replacement]), 2);
        let after = reg.snapshot();
        assert_eq!(after.len(), 2);
        assert_eq!(
            after.cover_for_window(1).map(|e| e.first_time.as_secs()),
            Some(3_650)
        );
        // The old snapshot is untouched — in-flight readers are safe.
        assert_eq!(
            before.cover_for_window(1).map(|e| e.first_time.as_secs()),
            Some(3_700)
        );
        assert_eq!(reg.check_invariants(), Ok(()));
    }

    #[test]
    fn time_routing_uses_first_tuple_time() {
        let reg = CoverRegistry::new();
        // Window 1's first tuple lands 100 s into its epoch span.
        reg.publish(vec![entry(0, 10), entry(1, 3_700)]);
        let snap = reg.snapshot();
        let at = |secs| {
            snap.cover_for_time(Timestamp::from_secs(secs))
                .map(|e| e.window_id)
        };
        // Before any data: the oldest window answers (batch-engine rule).
        assert_eq!(at(0), Some(0));
        assert_eq!(at(10), Some(0));
        // Inside window 1's epoch but before its first tuple: still window 0.
        assert_eq!(at(3_650), Some(0));
        assert_eq!(at(3_700), Some(1));
        assert_eq!(at(1_000_000), Some(1));
    }

    #[test]
    fn invariants_catch_mislabelled_covers() {
        let reg = CoverRegistry::new();
        reg.publish(vec![PublishedCover {
            window_id: 5,
            first_time: Timestamp::from_secs(0),
            cover: built_cover(4, 0),
        }]);
        assert!(reg.check_invariants().is_err());
    }

    #[test]
    fn deep_size_counts_published_covers() {
        let reg = CoverRegistry::new();
        let empty = reg.deep_size_of();
        reg.publish(vec![entry(0, 10)]);
        assert!(reg.deep_size_of() > empty);
    }

    #[test]
    fn snapshots_stay_consistent_under_concurrent_publication() {
        let reg = Arc::new(CoverRegistry::new());
        let writer = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for round in 0..50u64 {
                    reg.publish(vec![entry(round % 4, (round % 4) as i64 * 3_600 + 10)]);
                }
            })
        };
        for _ in 0..200 {
            let snap = reg.snapshot();
            assert_eq!(snap.check_invariants(), Ok(()), "torn snapshot");
        }
        writer.join().expect("writer panicked");
        assert_eq!(reg.generation(), 50);
    }
}
