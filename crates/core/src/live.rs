//! Live ingestion with lazy model maintenance.
//!
//! The batch [`crate::QueryEngine`] owns a finished dataset; a deployment
//! ingests forever. [`LiveEngine`] accepts tuples as they arrive, buckets
//! them into duration windows, and maintains model covers **lazily** — the
//! paper's "lazy update policies": a cover is built only when a query
//! actually needs its window, and is rebuilt only when enough new data has
//! arrived to matter.
//!
//! Rebuild policy: a cached cover is invalidated when its window has grown
//! by more than [`LiveConfig::rebuild_growth`] (fractional) since the cover
//! was built — late-arriving tuples trigger a rebuild on the next query
//! rather than on every ingest.

use crate::cluster::AdKmnConfig;
use crate::cover::{CoverBuilder, ModelCover};
use crate::query::{CoverProcessor, NaiveProcessor, PointQueryProcessor, QueryMethod};
use enviro_data::{Pollutant, QueryTuple, RawTuple, Timestamp, Window};
use std::collections::BTreeMap;

/// Configuration of a live engine.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The monitored pollutant.
    pub pollutant: Pollutant,
    /// Window duration in seconds (windows are epoch-aligned).
    pub window_secs: i64,
    /// Ad-KMN configuration for cover building.
    pub adkmn: AdKmnConfig,
    /// Radius for raw-data queries, meters.
    pub radius: f64,
    /// Fractional growth of a window's tuple count that invalidates its
    /// cached cover (e.g. `0.25` = rebuild after 25 % more data).
    pub rebuild_growth: f64,
    /// Windows older than this many windows behind the newest are evicted
    /// (raw tuples and cover dropped). `None` keeps everything.
    pub retention_windows: Option<u64>,
    /// Warm-start each window's Ad-KMN from the previous window's
    /// centroids (cross-window adaptivity; cheaper and usually equivalent
    /// — see the `abl-warm` ablation).
    pub warm_start: bool,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            pollutant: Pollutant::Co2,
            window_secs: 4 * 3_600,
            adkmn: AdKmnConfig::default(),
            radius: 1_000.0,
            rebuild_growth: 0.25,
            retention_windows: None,
            warm_start: true,
        }
    }
}

/// Per-window state: raw tuples plus the lazily maintained cover.
#[derive(Debug)]
struct WindowState {
    tuples: Vec<RawTuple>,
    /// The cached cover and the tuple count it was built from.
    cover: Option<(ModelCover, usize)>,
}

/// Counters exposing the lazy-maintenance behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStats {
    /// Tuples ingested (and retained or later evicted).
    pub ingested: usize,
    /// Cover builds performed (first builds + rebuilds).
    pub cover_builds: usize,
    /// Windows evicted by retention.
    pub windows_evicted: usize,
}

/// A streaming EnviroMeter engine with lazy cover maintenance.
///
/// ```
/// use enviro_data::{QueryTuple, RawTuple, Timestamp};
/// use enviro_geo::Point;
/// use enviro_meter::{LiveConfig, LiveEngine};
///
/// let mut engine = LiveEngine::new(LiveConfig::default());
/// for i in 0..20 {
///     engine.ingest(RawTuple::new(
///         Timestamp::from_secs(i * 60),
///         Point::new(i as f64 * 50.0, 0.0),
///         420.0 + i as f64,
///     ));
/// }
/// let q = QueryTuple::new(Timestamp::from_secs(600), Point::new(300.0, 0.0));
/// assert!(engine.query(&q).is_some());
/// assert_eq!(engine.stats().cover_builds, 1); // built lazily, on demand
/// ```
#[derive(Debug)]
pub struct LiveEngine {
    config: LiveConfig,
    builder: CoverBuilder,
    windows: BTreeMap<u64, WindowState>,
    stats: LiveStats,
}

impl LiveEngine {
    /// Creates an empty live engine.
    pub fn new(config: LiveConfig) -> Self {
        assert!(config.window_secs > 0, "window duration must be positive");
        assert!(config.radius >= 0.0, "radius must be non-negative");
        assert!(
            config.rebuild_growth >= 0.0,
            "rebuild growth must be non-negative"
        );
        let builder = CoverBuilder::new(config.adkmn.clone());
        Self {
            config,
            builder,
            windows: BTreeMap::new(),
            stats: LiveStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }

    /// Lazy-maintenance counters.
    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// Number of retained windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The window id a timestamp belongs to.
    pub fn window_id_of(&self, t: Timestamp) -> u64 {
        t.as_secs().div_euclid(self.config.window_secs).max(0) as u64
    }

    /// Ingests one tuple. Late arrivals (for an already-started or even an
    /// older window) are accepted; the affected window's cover is rebuilt
    /// lazily on its next query. Tuples older than the retention horizon
    /// are dropped.
    pub fn ingest(&mut self, tuple: RawTuple) {
        assert!(tuple.is_finite(), "cannot ingest a non-finite tuple");
        let id = self.window_id_of(tuple.time);
        if let (Some(retention), Some((&newest, _))) =
            (self.config.retention_windows, self.windows.last_key_value())
        {
            if newest.saturating_sub(id) > retention {
                return; // beyond the horizon; nothing would ever query it
            }
        }
        let state = self.windows.entry(id).or_insert(WindowState {
            tuples: Vec::new(),
            cover: None,
        });
        // Keep per-window tuples time-sorted for the naive scan's sanity.
        let pos = state.tuples.partition_point(|t| t.time <= tuple.time);
        state.tuples.insert(pos, tuple);
        self.stats.ingested += 1;
        self.evict();
    }

    /// Ingests a batch (e.g. one storage segment or one sampling tick).
    pub fn ingest_batch(&mut self, tuples: &[RawTuple]) {
        for t in tuples {
            self.ingest(*t);
        }
    }

    /// Answers a point query with the model cover (the production method).
    pub fn query(&mut self, q: &QueryTuple) -> Option<f64> {
        self.query_with(q, QueryMethod::ModelCover)
    }

    /// Answers a point query with an explicit method (`ModelCover` or
    /// `Naive`; the index methods are batch-engine territory).
    pub fn query_with(&mut self, q: &QueryTuple, method: QueryMethod) -> Option<f64> {
        let id = self.responsible_window(q.time)?;
        match method {
            QueryMethod::Naive => {
                let state = self.windows.get(&id).expect("responsible window exists");
                NaiveProcessor::new(&state.tuples, self.config.radius).interpolate(q)
            }
            _ => {
                let cover = self.cover_for(id)?;
                CoverProcessor::new(cover).interpolate(q)
            }
        }
    }

    /// The current cover for the window containing `t`, building or
    /// rebuilding it if the lazy policy requires. `None` when no data
    /// exists at or before `t`'s window.
    pub fn cover_at(&mut self, t: Timestamp) -> Option<&ModelCover> {
        let id = self.responsible_window(t)?;
        self.cover_for(id)
    }

    /// The newest window id with data, if any.
    pub fn newest_window(&self) -> Option<u64> {
        self.windows.last_key_value().map(|(&k, _)| k)
    }

    /// The id of the window that should answer a query at `t`: the window
    /// containing `t`, or the newest one before it (freshest available
    /// data), mirroring the batch engine's rule.
    fn responsible_window(&self, t: Timestamp) -> Option<u64> {
        let id = self.window_id_of(t);
        self.windows
            .range(..=id)
            .next_back()
            .map(|(&k, _)| k)
            .or_else(|| self.windows.first_key_value().map(|(&k, _)| k))
    }

    /// Gets (building lazily) the cover of window `id`.
    fn cover_for(&mut self, id: u64) -> Option<&ModelCover> {
        let window_secs = self.config.window_secs;
        let growth = self.config.rebuild_growth;
        let pollutant = self.config.pollutant;
        let needs_build = {
            let state = self.windows.get(&id)?;
            match &state.cover {
                None => true,
                Some((_, built_from)) => {
                    let grown = state.tuples.len().saturating_sub(*built_from);
                    (grown as f64) > (*built_from as f64) * growth
                }
            }
        };
        if needs_build {
            // Warm-start seed: the newest already-built cover before this
            // window (cloned so the mutable re-borrow below is clean).
            let seed_cover: Option<ModelCover> = if self.config.warm_start {
                self.windows
                    .range(..id)
                    .rev()
                    .find_map(|(_, s)| s.cover.as_ref().map(|(c, _)| c.clone()))
            } else {
                None
            };
            let state = self.windows.get_mut(&id).expect("checked above");
            let window = Window {
                id,
                tuples: &state.tuples,
                valid_until: Timestamp::from_secs((id as i64 + 1) * window_secs),
            };
            let cover = match &seed_cover {
                Some(prev) if !prev.is_empty() => {
                    self.builder.build_seeded(&window, pollutant, prev)
                }
                _ => self.builder.build(&window, pollutant),
            };
            state.cover = Some((cover, state.tuples.len()));
            self.stats.cover_builds += 1;
        }
        self.windows
            .get(&id)
            .and_then(|s| s.cover.as_ref().map(|(c, _)| c))
    }

    /// Applies the retention policy.
    fn evict(&mut self) {
        let Some(retention) = self.config.retention_windows else {
            return;
        };
        let Some((&newest, _)) = self.windows.last_key_value() else {
            return;
        };
        let horizon = newest.saturating_sub(retention);
        let evict: Vec<u64> = self.windows.range(..horizon).map(|(&k, _)| k).collect();
        for id in evict {
            self.windows.remove(&id);
            self.stats.windows_evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_geo::Point;

    fn tup(secs: i64, x: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(secs), Point::new(x, 0.0), v)
    }

    fn small_engine() -> LiveEngine {
        LiveEngine::new(LiveConfig {
            window_secs: 100,
            ..LiveConfig::default()
        })
    }

    #[test]
    fn empty_engine_answers_nothing() {
        let mut e = small_engine();
        assert_eq!(
            e.query(&QueryTuple::new(Timestamp::from_secs(50), Point::origin())),
            None
        );
        assert_eq!(e.cover_at(Timestamp::ZERO), None);
    }

    #[test]
    fn ingest_and_query_current_window() {
        let mut e = small_engine();
        for i in 0..20 {
            e.ingest(tup(i, i as f64 * 10.0, 400.0 + i as f64));
        }
        let v = e
            .query(&QueryTuple::new(
                Timestamp::from_secs(10),
                Point::new(100.0, 0.0),
            ))
            .unwrap();
        assert!((350.0..500.0).contains(&v), "{v}");
        assert_eq!(e.window_count(), 1);
    }

    #[test]
    fn covers_are_built_lazily_and_cached() {
        let mut e = small_engine();
        for i in 0..20 {
            e.ingest(tup(i, i as f64, 400.0));
        }
        assert_eq!(e.stats().cover_builds, 0, "no query yet, no build");
        let q = QueryTuple::new(Timestamp::from_secs(10), Point::origin());
        e.query(&q);
        assert_eq!(e.stats().cover_builds, 1);
        e.query(&q);
        e.query(&q);
        assert_eq!(e.stats().cover_builds, 1, "cached across queries");
    }

    #[test]
    fn growth_triggers_rebuild() {
        let mut e = small_engine();
        for i in 0..10 {
            e.ingest(tup(i, i as f64, 400.0));
        }
        let q = QueryTuple::new(Timestamp::from_secs(10), Point::origin());
        e.query(&q);
        assert_eq!(e.stats().cover_builds, 1);
        // +10 % growth: below the 25 % threshold → no rebuild.
        e.ingest(tup(11, 1.0, 400.0));
        e.query(&q);
        assert_eq!(e.stats().cover_builds, 1);
        // Grow past 25 % → rebuild on next query (and only then).
        for i in 12..16 {
            e.ingest(tup(i, i as f64, 400.0));
        }
        assert_eq!(e.stats().cover_builds, 1, "ingest alone must not build");
        e.query(&q);
        assert_eq!(e.stats().cover_builds, 2);
    }

    #[test]
    fn late_arrival_updates_answers() {
        let mut e = small_engine();
        for i in 0..10 {
            e.ingest(tup(i, 0.0, 100.0));
        }
        let q = QueryTuple::new(Timestamp::from_secs(5), Point::origin());
        let before = e.query(&q).unwrap();
        assert!((before - 100.0).abs() < 5.0);
        // A burst of late tuples with a very different level.
        for i in 10..40 {
            e.ingest(tup(i, 0.0, 900.0));
        }
        let after = e.query(&q).unwrap();
        assert!(after > before + 100.0, "{after} vs {before}");
    }

    #[test]
    fn queries_after_last_window_use_freshest() {
        let mut e = small_engine();
        for i in 0..20 {
            e.ingest(tup(i, i as f64, 420.0));
        }
        // Window 0 holds the data; query far in the future.
        let v = e.query(&QueryTuple::new(
            Timestamp::from_secs(10_000),
            Point::new(5.0, 0.0),
        ));
        assert!(v.is_some());
    }

    #[test]
    fn multiple_windows_routed_correctly() {
        let mut e = small_engine();
        // Window 0: level 100; window 1: level 900.
        for i in 0..30 {
            e.ingest(tup(i, i as f64, 100.0));
        }
        for i in 100..130 {
            e.ingest(tup(i, (i - 100) as f64, 900.0));
        }
        let v0 = e
            .query(&QueryTuple::new(Timestamp::from_secs(50), Point::origin()))
            .unwrap();
        let v1 = e
            .query(&QueryTuple::new(Timestamp::from_secs(150), Point::origin()))
            .unwrap();
        assert!(v0 < 300.0, "{v0}");
        assert!(v1 > 700.0, "{v1}");
    }

    #[test]
    fn retention_evicts_old_windows() {
        let mut e = LiveEngine::new(LiveConfig {
            window_secs: 100,
            retention_windows: Some(2),
            ..LiveConfig::default()
        });
        for w in 0..6i64 {
            for i in 0..5 {
                e.ingest(tup(w * 100 + i, i as f64, 400.0));
            }
        }
        // Newest window is 5; horizon = 3 → windows 0..3 evicted.
        assert_eq!(e.window_count(), 3);
        assert!(e.stats().windows_evicted >= 3);
        // Ancient late arrival is dropped outright.
        let before = e.window_count();
        e.ingest(tup(10, 0.0, 400.0));
        assert_eq!(e.window_count(), before);
    }

    #[test]
    fn naive_method_available_live() {
        let mut e = small_engine();
        for i in 0..10 {
            e.ingest(tup(i, i as f64, 500.0));
        }
        let v = e
            .query_with(
                &QueryTuple::new(Timestamp::from_secs(5), Point::new(3.0, 0.0)),
                QueryMethod::Naive,
            )
            .unwrap();
        assert!((v - 500.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_ingest_keeps_window_sorted() {
        let mut e = small_engine();
        e.ingest(tup(50, 0.0, 1.0));
        e.ingest(tup(10, 0.0, 2.0));
        e.ingest(tup(30, 0.0, 3.0));
        let state = e.windows.get(&0).unwrap();
        let times: Vec<i64> = state.tuples.iter().map(|t| t.time.as_secs()).collect();
        assert_eq!(times, vec![10, 30, 50]);
    }
}
