//! The EnviroMeter platform facade.
//!
//! One object exposing everything the demo's three surfaces need: point
//! queries and continuous queries (Android app + web "query" modes),
//! heatmaps (web "heatmap" mode), and route recording (Android app).

use crate::cluster::AdKmnConfig;
use crate::cover::ModelCover;
use crate::heatmap::{Heatmap, HeatmapBuilder};
use crate::query::{QueryEngine, QueryMethod};
use crate::route::Route;
use enviro_data::{Dataset, QueryTuple, Timestamp, WindowSpec};
use enviro_geo::BoundingBox;

/// The EnviroMeter platform: a windowed, model-backed query service over a
/// community-sensed dataset.
#[derive(Debug)]
pub struct EnviroMeter {
    engine: QueryEngine,
    extent: BoundingBox,
}

impl EnviroMeter {
    /// Stands up the platform.
    ///
    /// * `dataset` — the raw community-sensed tuples.
    /// * `spec` — how tuples are windowed for model learning.
    /// * `adkmn` — the adaptive-modeling configuration (τ_n etc.).
    /// * `radius` — the radius `r` used by the raw-data query methods.
    pub fn new(dataset: Dataset, spec: WindowSpec, adkmn: AdKmnConfig, radius: f64) -> Self {
        let extent = dataset.bounds();
        Self {
            engine: QueryEngine::new(dataset, spec, adkmn, radius),
            extent,
        }
    }

    /// The underlying query engine.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The spatial extent of the sensed data.
    pub fn extent(&self) -> BoundingBox {
        self.extent
    }

    /// Answers a single point query (web "point query" mode).
    pub fn point_query(&self, q: &QueryTuple, method: QueryMethod) -> Option<f64> {
        self.engine.query(q, method)
    }

    /// Answers a continuous query — one value per trajectory point (web
    /// "continuous query" mode; Query 1 of the paper).
    pub fn continuous_query(
        &self,
        trajectory: &[QueryTuple],
        method: QueryMethod,
    ) -> Vec<Option<f64>> {
        self.engine.continuous_query(trajectory, method)
    }

    /// Answers a batch of point queries into a caller-owned buffer
    /// (cleared first) — the allocation-free serving path behind the wire
    /// protocol's `QueryBatch` frames.
    pub fn point_query_batch_into(
        &self,
        queries: &[QueryTuple],
        method: QueryMethod,
        out: &mut Vec<Option<f64>>,
    ) {
        self.engine.query_batch_into(queries, method, out);
    }

    /// The model cover in force at time `t` — what the model-cache protocol
    /// ships to phones. `None` for an empty dataset.
    pub fn cover_at(&self, t: Timestamp) -> Option<&ModelCover> {
        self.engine.cover_for_time(t)
    }

    /// Renders the heatmap of the cover in force at `t` over the sensed
    /// extent (web "heatmap" mode). `None` when no data exists.
    pub fn heatmap(&self, t: Timestamp, cols: u32, rows: u32) -> Option<Heatmap> {
        let cover = self.cover_at(t)?;
        HeatmapBuilder::new(cols, rows).build(cover, self.extent.padded(100.0), t)
    }

    /// Records a route: runs the trajectory through `method` and returns the
    /// per-point readings ready for the summary screen (Android app).
    pub fn record_route(&self, trajectory: &[QueryTuple], method: QueryMethod) -> Route {
        let mut route = Route::new(self.engine.dataset().pollutant());
        for q in trajectory {
            route.record(*q, self.engine.query(q, method));
        }
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::{LausanneSim, SimConfig};
    use enviro_geo::Point;

    fn platform() -> (EnviroMeter, LausanneSim) {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 4 * 3_600,
            seed: 5,
            ..SimConfig::default()
        });
        let p = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(2 * 3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        (p, sim)
    }

    #[test]
    fn point_query_all_methods() {
        let (p, sim) = platform();
        let q = sim.query_workload(1, 100.0, 3)[0];
        // Model cover always answers; raw methods may or may not find
        // tuples in radius but must not panic.
        assert!(p.point_query(&q, QueryMethod::ModelCover).is_some());
        for m in QueryMethod::ALL {
            let _ = p.point_query(&q, m);
        }
    }

    #[test]
    fn continuous_query_returns_per_point_values() {
        let (p, sim) = platform();
        let traj = sim.continuous_trajectory(30, 60, 4);
        let vals = p.continuous_query(&traj, QueryMethod::ModelCover);
        assert_eq!(vals.len(), 30);
        assert!(vals.iter().all(|v| v.is_some()));
    }

    #[test]
    fn cover_at_respects_windows() {
        let (p, _) = platform();
        let c0 = p.cover_at(Timestamp::from_secs(100)).unwrap();
        let c1 = p.cover_at(Timestamp::from_secs(3 * 3_600)).unwrap();
        assert_ne!(c0.window_id, c1.window_id);
    }

    #[test]
    fn heatmap_renders() {
        let (p, _) = platform();
        let hm = p.heatmap(Timestamp::from_secs(600), 20, 15).unwrap();
        assert_eq!(hm.values.len(), 20 * 15);
        let ppm = hm.to_ppm();
        assert!(ppm.starts_with(b"P6\n20 15\n255\n"));
    }

    #[test]
    fn route_recording_end_to_end() {
        let (p, sim) = platform();
        let traj = sim.continuous_trajectory(20, 60, 8);
        let route = p.record_route(&traj, QueryMethod::ModelCover);
        assert_eq!(route.len(), 20);
        let s = route.summary();
        assert_eq!(s.answered, 20);
        let avg = s.average.unwrap();
        assert!((100.0..3_000.0).contains(&avg), "implausible average {avg}");
    }

    #[test]
    fn extent_covers_all_samples() {
        let (p, _) = platform();
        let extent = p.extent();
        for t in p.engine().dataset().tuples() {
            assert!(extent.contains(&t.pos));
        }
        let _ = Point::origin();
    }
}
