//! # EnviroMeter
//!
//! A platform for querying community-sensed environmental data — a full
//! reimplementation of *"EnviroMeter: A Platform for Querying
//! Community-Sensed Data"* (Sathe et al., VLDB 2013).
//!
//! Large-area Community-driven Sensor Networks (LCSNs) produce
//! **geo-temporally skewed** data: mobile sensors (buses, cars, phones)
//! sample the phenomenon only where and when they happen to be. EnviroMeter
//! answers point and continuous pollution queries over such data by
//! replacing the raw tuples of each time window with an adaptive
//! **model cover** — a set of cluster centroids, each owning a small linear
//! regression model of its sub-region — and interpolating from the nearest
//! model instead of scanning raw data.
//!
//! ## Crate layout
//!
//! * [`cluster`] — standard k-means (k-means++ / Lloyd) and the adaptive
//!   **Ad-KMN** algorithm that splits high-error regions (§2.1 of the
//!   paper).
//! * [`model`] — per-region linear regression models and the
//!   pollutant-normalized approximation-error metric.
//! * [`cover`] — the [`ModelCover`]: centroids + models + validity horizon,
//!   the unit cached by clients and shipped by the server.
//! * [`query`] — the three query-processing methods of §2.2 (naïve /
//!   metric-space index / model cover) behind one trait, plus the windowed
//!   [`query::QueryEngine`].
//! * [`eval`] — NRMSE and coverage metrics for the accuracy experiments.
//! * [`heatmap`] — the web UI's heatmap mode: model-cover evaluation over a
//!   grid, with PPM/ASCII rendering.
//! * [`route`] — the Android app's route recording with OSHA
//!   classification.
//! * [`publish`] — the [`CoverRegistry`]: epoch-versioned, atomically
//!   swapped cover sets for the durable write path's online maintenance.
//! * [`platform`] — the [`EnviroMeter`] facade tying everything together.
//!
//! ## Quickstart
//!
//! ```
//! use enviro_data::{LausanneSim, SimConfig, WindowSpec};
//! use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
//!
//! // Simulate two buses sensing CO2 for six hours.
//! let sim = LausanneSim::lausanne(SimConfig {
//!     duration_secs: 6 * 3600,
//!     ..SimConfig::default()
//! });
//! let dataset = sim.generate();
//!
//! // Stand up the platform with 4-hour model windows.
//! let platform = EnviroMeter::new(
//!     dataset,
//!     WindowSpec::ByDuration(4 * 3600),
//!     AdKmnConfig::default(),
//!     1_000.0, // radius r = 1 km for the raw-data methods
//! );
//!
//! // Ask for the CO2 level at a position, via the model cover.
//! let q = enviro_data::QueryTuple::new(
//!     enviro_data::Timestamp::from_hours(2),
//!     enviro_geo::Point::new(500.0, -100.0),
//! );
//! let answer = platform.point_query(&q, QueryMethod::ModelCover);
//! assert!(answer.unwrap() > 300.0); // plausible ppm
//! ```

#![forbid(unsafe_code)]
// Panic-prone sites in this crate are legacy debt tracked by the xtask
// panic ratchet (crates/xtask/panic-baseline.toml): counts may only go
// down. The clippy warn-level lints stay crate-allowed until the burn-down
// reaches zero; prefer typed errors in new code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod cover;
pub mod eval;
pub mod heatmap;
pub mod live;
pub mod model;
pub mod platform;
pub mod publish;
pub mod query;
pub mod route;

pub use cluster::{AdKmn, AdKmnConfig, ClusterMembers, KMeans, KMeansConfig, SplitStrategy};
pub use cover::{CoverBuilder, CoverRegion, ModelCover};
pub use eval::{nrmse_percent, AccuracyReport};
pub use heatmap::{Heatmap, HeatmapBuilder};
pub use live::{LiveConfig, LiveEngine, LiveStats};
pub use model::{ApproximationError, FitConfig, LinearModel, RegionModel};
pub use platform::EnviroMeter;
pub use publish::{CoverRegistry, CoverSet, PublishedCover};
pub use query::{
    default_parallelism, CoverProcessor, IdwConfig, IdwProcessor, IndexKind, IndexedProcessor,
    NaiveProcessor, PointQueryProcessor, QueryEngine, QueryMethod, QueryOutcome,
};
pub use route::{Route, RouteSummary};
