//! Route recording — the Android application's flagship feature (§3).
//!
//! "The application has the ability to record routes. After a route has been
//! recorded, the user can view it on a map. In addition, the application
//! presents the average pollution level through the route", plus an OSHA
//! advisory and a green→red marker per point.

use enviro_data::{Pollutant, QueryTuple, SafetyLevel};

/// One recorded route point: the query tuple and the interpolated value (if
/// the platform could answer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutePoint {
    /// Where and when the user was.
    pub query: QueryTuple,
    /// The interpolated pollution value at that point.
    pub value: Option<f64>,
}

/// A recorded route with per-point pollution readings.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// The monitored pollutant.
    pub pollutant: Pollutant,
    /// The recorded points, in travel order.
    pub points: Vec<RoutePoint>,
}

/// The route summary screen: average level, OSHA classification, advisory.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSummary {
    /// Mean of the answered per-point values (`None` if nothing was
    /// answered).
    pub average: Option<f64>,
    /// OSHA classification of the average.
    pub level: Option<SafetyLevel>,
    /// The informative text shown to the user.
    pub advisory: String,
    /// Points recorded / answered.
    pub recorded: usize,
    /// Number of points with a value.
    pub answered: usize,
    /// Wall-clock duration of the recording, seconds (first to last point).
    pub duration_secs: i64,
    /// Cumulative exposure dose: average concentration × duration, in
    /// `unit·hours` (e.g. ppm·h for CO₂). The quantity occupational limits
    /// are written against.
    pub dose: Option<f64>,
}

impl Route {
    /// Creates an empty route recorder for `pollutant`.
    pub fn new(pollutant: Pollutant) -> Self {
        Self {
            pollutant,
            points: Vec::new(),
        }
    }

    /// Appends one recorded point.
    pub fn record(&mut self, query: QueryTuple, value: Option<f64>) {
        self.points.push(RoutePoint { query, value });
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing is recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The marker color of each point on the map (green → red), `None` for
    /// unanswered points (drawn grey in the UI).
    pub fn marker_colors(&self) -> Vec<Option<(u8, u8, u8)>> {
        self.points
            .iter()
            .map(|p| p.value.map(|v| self.pollutant.classify(v).color()))
            .collect()
    }

    /// Computes the summary screen.
    pub fn summary(&self) -> RouteSummary {
        let answered: Vec<f64> = self.points.iter().filter_map(|p| p.value).collect();
        let average = if answered.is_empty() {
            None
        } else {
            Some(answered.iter().sum::<f64>() / answered.len() as f64)
        };
        let level = average.map(|v| self.pollutant.classify(v));
        let duration_secs = match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.query.time - a.query.time,
            _ => 0,
        };
        let dose = average.map(|avg| avg * duration_secs as f64 / 3_600.0);
        let advisory = match (average, level) {
            (Some(avg), Some(lvl)) => format!(
                "Average {} along the route: {:.0} {} — {}.",
                self.pollutant,
                avg,
                self.pollutant.unit(),
                lvl.advisory()
            ),
            _ => "No pollution data available along this route.".to_string(),
        };
        RouteSummary {
            average,
            level,
            advisory,
            recorded: self.points.len(),
            answered: answered.len(),
            duration_secs,
            dose,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::Timestamp;
    use enviro_geo::Point;

    fn q(secs: i64) -> QueryTuple {
        QueryTuple::new(Timestamp::from_secs(secs), Point::new(secs as f64, 0.0))
    }

    #[test]
    fn empty_route_summary() {
        let r = Route::new(Pollutant::Co2);
        let s = r.summary();
        assert_eq!(s.average, None);
        assert_eq!(s.level, None);
        assert_eq!(s.recorded, 0);
        assert!(s.advisory.contains("No pollution data"));
    }

    #[test]
    fn average_over_answered_points_only() {
        let mut r = Route::new(Pollutant::Co2);
        r.record(q(0), Some(400.0));
        r.record(q(60), None);
        r.record(q(120), Some(600.0));
        let s = r.summary();
        assert_eq!(s.average, Some(500.0));
        assert_eq!(s.recorded, 3);
        assert_eq!(s.answered, 2);
    }

    #[test]
    fn safe_average_is_green() {
        let mut r = Route::new(Pollutant::Co2);
        r.record(q(0), Some(420.0));
        let s = r.summary();
        assert_eq!(s.level, Some(SafetyLevel::Safe));
        assert!(s.advisory.contains("acceptable"));
        assert!(s.advisory.contains("ppm"));
    }

    #[test]
    fn hazardous_average_is_red() {
        let mut r = Route::new(Pollutant::Co2);
        r.record(q(0), Some(40_000.0));
        let s = r.summary();
        assert_eq!(s.level, Some(SafetyLevel::Hazardous));
        assert!(s.advisory.contains("hazardous"));
    }

    #[test]
    fn marker_colors_align_with_points() {
        let mut r = Route::new(Pollutant::Co2);
        r.record(q(0), Some(400.0)); // safe → green-dominant
        r.record(q(60), None); // grey (None)
        r.record(q(120), Some(31_000.0)); // hazardous → red-dominant
        let colors = r.marker_colors();
        assert_eq!(colors.len(), 3);
        let (r0, g0, _) = colors[0].unwrap();
        assert!(g0 > r0);
        assert!(colors[1].is_none());
        let (r2, g2, _) = colors[2].unwrap();
        assert!(r2 > g2);
    }

    #[test]
    fn dose_is_average_times_duration() {
        let mut r = Route::new(Pollutant::Co2);
        // 30 minutes at a constant 600 ppm → 300 ppm·h.
        for i in 0..31 {
            r.record(q(i * 60), Some(600.0));
        }
        let s = r.summary();
        assert_eq!(s.duration_secs, 1_800);
        let dose = s.dose.unwrap();
        assert!((dose - 300.0).abs() < 1e-9, "{dose}");
    }

    #[test]
    fn single_point_route_has_zero_dose() {
        let mut r = Route::new(Pollutant::Co2);
        r.record(q(0), Some(500.0));
        let s = r.summary();
        assert_eq!(s.duration_secs, 0);
        assert_eq!(s.dose, Some(0.0));
    }

    #[test]
    fn record_preserves_order() {
        let mut r = Route::new(Pollutant::Co2);
        for i in 0..5 {
            r.record(q(i * 10), Some(i as f64));
        }
        let times: Vec<i64> = r.points.iter().map(|p| p.query.time.as_secs()).collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40]);
    }
}
