//! Clustering: standard k-means and the adaptive Ad-KMN algorithm.
//!
//! The paper's §2.1: the region `R` is partitioned by cluster centroids;
//! standard k-means uses only geometry, while **Ad-KMN** additionally uses
//! the model approximation error as a clustering criterion — regions whose
//! model exceeds the error threshold `τ_n` are split "only when and where it
//! is necessary".

mod adkmn;
mod kmeans;

pub use adkmn::{AdKmn, AdKmnConfig, AdKmnResult, SplitStrategy};
pub use kmeans::{ClusterMembers, Clustering, KMeans, KMeansConfig};
