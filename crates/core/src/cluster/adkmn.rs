//! Ad-KMN: adaptive k-means driven by model approximation error.
//!
//! The loop of §2.1: cluster the window's positions, fit a linear model per
//! region, and wherever the model's approximation error exceeds `τ_n`,
//! *split* that region by seeding an extra centroid (at the worst-error
//! position, per Figure 2) and re-running Lloyd over the enlarged centroid
//! set — "continued until all the regions meet the approximation error
//! threshold".

use crate::cluster::kmeans::{KMeans, KMeansConfig};
use crate::model::{ApproximationError, FitConfig, RegionModel};
use enviro_data::{Pollutant, RawTuple};
use enviro_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a violating region seeds its new centroid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Seed at the member position with the largest absolute residual — the
    /// paper's choice (Figure 2: "positions with worst error").
    #[default]
    WorstErrorPoint,
    /// Seed at a uniformly random member position (ablation baseline).
    RandomPoint,
    /// Seed at the centroid plus a small random jitter (ablation baseline).
    CentroidJitter,
}

/// Ad-KMN parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AdKmnConfig {
    /// Number of clusters before any adaptive split (the paper's example
    /// starts from two).
    pub initial_k: usize,
    /// The approximation-error threshold `τ_n`, in percent of the
    /// pollutant's normal range (the paper evaluates `τ_n = 2 %`).
    pub tau_percent: f64,
    /// Hard cap on the number of models — bounds cover size and bandwidth.
    pub max_models: usize,
    /// Maximum split rounds before giving up on convergence.
    pub max_rounds: usize,
    /// Split-seed strategy.
    pub split: SplitStrategy,
    /// After convergence, greedily merge nearest-centroid region pairs
    /// whose *combined* model still meets `τ_n`. Off by default (the paper
    /// only splits); essential for warm-started windows, whose model count
    /// would otherwise ratchet upward forever (see the `abl-warm`
    /// ablation).
    pub merge_after_converge: bool,
    /// Inner k-means parameters.
    pub kmeans: KMeansConfig,
    /// Model-fitting parameters.
    pub fit: FitConfig,
}

impl Default for AdKmnConfig {
    fn default() -> Self {
        Self {
            initial_k: 2,
            tau_percent: 2.0,
            max_models: 64,
            max_rounds: 16,
            split: SplitStrategy::default(),
            merge_after_converge: false,
            kmeans: KMeansConfig::default(),
            fit: FitConfig::default(),
        }
    }
}

/// The full outcome of an Ad-KMN run over one window.
#[derive(Debug, Clone)]
pub struct AdKmnResult {
    /// Final centroids `µ`.
    pub centroids: Vec<Point>,
    /// Final per-tuple region assignment (indices into `centroids`).
    pub assignment: Vec<usize>,
    /// One fitted model per region, aligned with `centroids`.
    pub models: Vec<RegionModel>,
    /// Training approximation error per region.
    pub errors: Vec<ApproximationError>,
    /// Split rounds performed (0 = the initial clustering already met τ).
    pub rounds: usize,
    /// `true` if every region meets the threshold (false when `max_models`
    /// or `max_rounds` stopped the loop first).
    pub converged: bool,
}

impl AdKmnResult {
    /// Number of regions/models.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The worst per-region error percentage (0 when empty).
    pub fn worst_error_percent(&self) -> f64 {
        self.errors
            .iter()
            .map(ApproximationError::percent)
            .fold(0.0, f64::max)
    }

    /// Verifies the result's structural invariants, returning the first
    /// violation found. Checked (in debug builds) after the split loop:
    /// * `centroids`, `models` and `errors` are aligned one-to-one;
    /// * every assignment index names an existing region;
    /// * every centroid is finite (a NaN centroid would silently swallow
    ///   its Voronoi cell in nearest-centroid queries).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.models.len() != self.centroids.len() || self.errors.len() != self.centroids.len() {
            return Err(format!(
                "misaligned result: {} centroids, {} models, {} errors",
                self.centroids.len(),
                self.models.len(),
                self.errors.len()
            ));
        }
        if let Some(&bad) = self.assignment.iter().find(|&&a| a >= self.centroids.len()) {
            return Err(format!(
                "assignment names region {bad} of {}",
                self.centroids.len()
            ));
        }
        if let Some(i) = self.centroids.iter().position(|c| !c.is_finite()) {
            return Err(format!("centroid {i} is non-finite"));
        }
        Ok(())
    }
}

/// The Ad-KMN algorithm.
///
/// ```
/// use enviro_data::{Pollutant, RawTuple, Timestamp};
/// use enviro_geo::Point;
/// use enviro_meter::{AdKmn, AdKmnConfig};
///
/// // Two far-apart regimes no single plane fits: Ad-KMN partitions them.
/// let tuples: Vec<RawTuple> = (0..40)
///     .map(|i| {
///         let (x, v) = if i % 2 == 0 { (0.0, 400.0) } else { (5_000.0, 900.0) };
///         RawTuple::new(Timestamp::from_secs(i), Point::new(x + i as f64, 0.0), v)
///     })
///     .collect();
/// let result = AdKmn::new(AdKmnConfig::default()).run(&tuples, Pollutant::Co2);
/// assert!(result.converged);
/// assert!(result.model_count() >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdKmn {
    config: AdKmnConfig,
}

impl AdKmn {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: AdKmnConfig) -> Self {
        assert!(config.initial_k >= 1, "initial_k must be >= 1");
        assert!(config.max_models >= config.initial_k);
        assert!(config.tau_percent >= 0.0);
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdKmnConfig {
        &self.config
    }

    /// Runs Ad-KMN over one window of raw tuples.
    pub fn run(&self, tuples: &[RawTuple], pollutant: Pollutant) -> AdKmnResult {
        self.run_impl(tuples, pollutant, None)
    }

    /// Runs Ad-KMN warm-started from a previous window's centroids.
    ///
    /// "The phenomena … adapt to the changing nature of the sensed
    /// phenomenon": consecutive windows see similar geometry (the buses
    /// drive the same routes), so the previous cover's centroids are an
    /// excellent initialization — typically saving most of the k-means++
    /// and split work (see the `abl-warm` ablation). Results still respect
    /// `max_models` and `τ_n` exactly as a cold run would.
    pub fn run_seeded(
        &self,
        tuples: &[RawTuple],
        pollutant: Pollutant,
        seeds: &[Point],
    ) -> AdKmnResult {
        if seeds.is_empty() {
            return self.run(tuples, pollutant);
        }
        self.run_impl(tuples, pollutant, Some(seeds))
    }

    fn run_impl(
        &self,
        tuples: &[RawTuple],
        pollutant: Pollutant,
        seeds: Option<&[Point]>,
    ) -> AdKmnResult {
        let cfg = &self.config;
        if tuples.is_empty() {
            return AdKmnResult {
                centroids: Vec::new(),
                assignment: Vec::new(),
                models: Vec::new(),
                errors: Vec::new(),
                rounds: 0,
                converged: true,
            };
        }
        let positions: Vec<Point> = tuples.iter().map(|t| t.pos).collect();
        let mut rng = StdRng::seed_from_u64(cfg.kmeans.seed ^ 0xAD06);
        let mut clustering = match seeds {
            Some(seeds) => {
                let mut seeds = seeds.to_vec();
                seeds.truncate(cfg.max_models);
                KMeans::lloyd(&positions, seeds, cfg.kmeans.max_iterations)
            }
            None => KMeans::fit(&positions, cfg.initial_k, &cfg.kmeans),
        };
        let mut rounds = 0;
        loop {
            // Fit a model per region and measure its error.
            let members = clustering.members();
            let mut models = Vec::with_capacity(members.cluster_count());
            let mut errors = Vec::with_capacity(members.cluster_count());
            let mut region_tuples: Vec<Vec<RawTuple>> = Vec::with_capacity(members.cluster_count());
            for m in members.iter() {
                let region: Vec<RawTuple> = m.iter().map(|&i| tuples[i]).collect();
                let model = RegionModel::fit(&region, &cfg.fit).unwrap_or(RegionModel::Mean(0.0));
                let error = model.approximation_error(&region, pollutant);
                models.push(model);
                errors.push(error);
                region_tuples.push(region);
            }

            // Which regions violate τ and can actually be split (two or more
            // distinct positions)?
            let violators: Vec<usize> = (0..members.cluster_count())
                .filter(|&r| {
                    errors[r].exceeds(cfg.tau_percent)
                        && has_two_distinct_positions(&region_tuples[r])
                })
                .collect();
            let converged = violators.is_empty();
            let capped = clustering.centroids.len() >= cfg.max_models || rounds >= cfg.max_rounds;
            if converged || capped {
                let mut result = AdKmnResult {
                    centroids: clustering.centroids,
                    assignment: clustering.assignment,
                    models,
                    errors,
                    rounds,
                    converged,
                };
                if cfg.merge_after_converge {
                    merge_regions(&mut result, tuples, pollutant, cfg);
                }
                debug_assert_eq!(result.check_invariants(), Ok(()));
                return result;
            }

            // Split: seed one new centroid per violating region, capped.
            let mut centroids = clustering.centroids.clone();
            for &r in &violators {
                if centroids.len() >= cfg.max_models {
                    break;
                }
                let seed = self.split_seed(
                    &region_tuples[r],
                    &models[r],
                    &clustering.centroids[r],
                    &mut rng,
                );
                centroids.push(seed);
            }
            // Re-estimate all centroids from the enlarged set.
            clustering = KMeans::lloyd(&positions, centroids, cfg.kmeans.max_iterations);
            rounds += 1;
        }
    }

    /// Chooses the new centroid position for a violating region.
    fn split_seed(
        &self,
        region: &[RawTuple],
        model: &RegionModel,
        centroid: &Point,
        rng: &mut StdRng,
    ) -> Point {
        debug_assert!(!region.is_empty());
        match self.config.split {
            SplitStrategy::WorstErrorPoint => {
                region
                    .iter()
                    .max_by(|a, b| {
                        let ra = (model.predict(a.time, &a.pos) - a.value).abs();
                        let rb = (model.predict(b.time, &b.pos) - b.value).abs();
                        ra.partial_cmp(&rb).expect("finite residuals")
                    })
                    .expect("non-empty region")
                    .pos
            }
            SplitStrategy::RandomPoint => region[rng.gen_range(0..region.len())].pos,
            SplitStrategy::CentroidJitter => {
                // Jitter by a fraction of the region's spread.
                let spread = region
                    .iter()
                    .map(|t| t.pos.distance(centroid))
                    .fold(0.0, f64::max)
                    .max(1.0);
                Point::new(
                    centroid.x + rng.gen_range(-0.5..0.5) * spread,
                    centroid.y + rng.gen_range(-0.5..0.5) * spread,
                )
            }
        }
    }
}

/// Greedily merges region pairs whose combined model still meets `τ_n`.
///
/// Each round considers every region paired with its nearest other
/// centroid, fits a model over the union of their tuples, and performs the
/// merge with the lowest resulting error if that error is within the
/// threshold. Repeats until no admissible merge remains. Centroids,
/// assignment, models and errors are kept consistent throughout.
fn merge_regions(
    result: &mut AdKmnResult,
    tuples: &[RawTuple],
    pollutant: Pollutant,
    cfg: &AdKmnConfig,
) {
    while result.centroids.len() > 1 {
        // Region membership under the current assignment.
        let k = result.centroids.len();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &a) in result.assignment.iter().enumerate() {
            members[a].push(i);
        }
        // Candidate: each region with its nearest other centroid.
        let mut best: Option<(usize, usize, RegionModel, f64)> = None;
        for a in 0..k {
            let mut nearest = None;
            let mut nearest_d = f64::INFINITY;
            for b in 0..k {
                if b == a {
                    continue;
                }
                let d = result.centroids[a].distance_sq(&result.centroids[b]);
                if d < nearest_d {
                    nearest_d = d;
                    nearest = Some(b);
                }
            }
            let Some(b) = nearest else { continue };
            let (a, b) = (a.min(b), a.max(b));
            if let Some((pa, pb, _, _)) = best {
                if (pa, pb) == (a, b) {
                    continue; // already evaluated this pair
                }
            }
            let combined: Vec<RawTuple> = members[a]
                .iter()
                .chain(members[b].iter())
                .map(|&i| tuples[i])
                .collect();
            let Some(model) = RegionModel::fit(&combined, &cfg.fit) else {
                continue;
            };
            let error = model.approximation_error(&combined, pollutant);
            if !error.exceeds(cfg.tau_percent)
                && best
                    .as_ref()
                    .map(|&(_, _, _, e)| error.percent() < e)
                    .unwrap_or(true)
            {
                best = Some((a, b, model, error.percent()));
            }
        }
        let Some((a, b, model, _)) = best else { break };
        // Merge b into a: weighted-mean centroid, combined model, then drop b.
        let (na, nb) = (
            members_count(&result.assignment, a) as f64,
            members_count(&result.assignment, b) as f64,
        );
        let total = (na + nb).max(1.0);
        result.centroids[a] = Point::new(
            (result.centroids[a].x * na + result.centroids[b].x * nb) / total,
            (result.centroids[a].y * na + result.centroids[b].y * nb) / total,
        );
        let combined: Vec<RawTuple> = result
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == a || r == b)
            .map(|(i, _)| tuples[i])
            .collect();
        result.errors[a] = model.approximation_error(&combined, pollutant);
        result.models[a] = model;
        result.centroids.remove(b);
        result.models.remove(b);
        result.errors.remove(b);
        for r in &mut result.assignment {
            if *r == b {
                *r = a;
            } else if *r > b {
                *r -= 1;
            }
        }
    }
}

fn members_count(assignment: &[usize], region: usize) -> usize {
    assignment.iter().filter(|&&a| a == region).count()
}

/// `true` if at least two tuples have different positions (splitting a
/// region of coincident points cannot reduce its error).
fn has_two_distinct_positions(tuples: &[RawTuple]) -> bool {
    tuples
        .first()
        .map(|f| tuples.iter().any(|t| t.pos != f.pos))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::Timestamp;

    fn tup(t: i64, x: f64, y: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(t), Point::new(x, y), v)
    }

    /// Two spatial blobs whose values follow *different* planes — one global
    /// linear model cannot fit both, so Ad-KMN must split.
    fn two_regime_data() -> Vec<RawTuple> {
        let mut out = Vec::new();
        for i in 0..40 {
            let x = (i % 8) as f64 * 20.0;
            let y = (i / 8) as f64 * 20.0;
            // Left blob: flat 400 ppm.
            out.push(tup(i, x, y, 400.0));
            // Right blob, 5 km away: steep plane around 1000 ppm.
            out.push(tup(i, 5_000.0 + x, y, 1_000.0 + 3.0 * x - 2.0 * y));
        }
        out
    }

    #[test]
    fn empty_window() {
        let r = AdKmn::new(AdKmnConfig::default()).run(&[], Pollutant::Co2);
        assert!(r.centroids.is_empty());
        assert!(r.converged);
    }

    #[test]
    fn single_tuple_window() {
        let r = AdKmn::new(AdKmnConfig::default()).run(&[tup(0, 1.0, 1.0, 400.0)], Pollutant::Co2);
        assert_eq!(r.model_count(), 1);
        assert!(r.converged);
        let pred = r.models[0].predict(Timestamp::ZERO, &Point::new(1.0, 1.0));
        assert!((pred - 400.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_data_needs_no_split() {
        // A single global plane: initial k=2 should already meet τ.
        let tuples: Vec<RawTuple> = (0..100)
            .map(|i| {
                let x = (i % 10) as f64 * 50.0;
                let y = (i / 10) as f64 * 50.0;
                tup(i, x, y, 400.0 + 0.01 * x)
            })
            .collect();
        let r = AdKmn::new(AdKmnConfig::default()).run(&tuples, Pollutant::Co2);
        assert!(r.converged);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.model_count(), 2);
    }

    #[test]
    fn two_regime_data_converges() {
        let r = AdKmn::new(AdKmnConfig::default()).run(&two_regime_data(), Pollutant::Co2);
        assert!(r.converged, "worst error {}", r.worst_error_percent());
        assert!(r.worst_error_percent() <= 2.0);
    }

    #[test]
    fn tighter_tau_produces_more_models() {
        let data: Vec<RawTuple> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64 * 100.0;
                let y = (i / 20) as f64 * 100.0;
                // Non-linear surface: a paraboloid no single plane fits.
                let v = 400.0
                    + 0.0003 * (x - 1000.0).powi(2) / 10.0
                    + 0.0002 * (y - 500.0).powi(2) / 10.0;
                tup(i, x, y, v)
            })
            .collect();
        let loose = AdKmn::new(AdKmnConfig {
            tau_percent: 8.0,
            ..AdKmnConfig::default()
        })
        .run(&data, Pollutant::Co2);
        let tight = AdKmn::new(AdKmnConfig {
            tau_percent: 0.25,
            ..AdKmnConfig::default()
        })
        .run(&data, Pollutant::Co2);
        assert!(
            tight.model_count() >= loose.model_count(),
            "tight {} vs loose {}",
            tight.model_count(),
            loose.model_count()
        );
    }

    #[test]
    fn max_models_caps_growth() {
        // Deterministic "noise" that no linear model can fit: the error
        // threshold is unreachable, so only max_models stops the loop.
        let noisy: Vec<RawTuple> = (0..120)
            .map(|i| {
                tup(
                    (i * 7_919) % 5_000,
                    (i * 37 % 100) as f64 * 10.0,
                    (i * 53 % 100) as f64 * 10.0,
                    ((i * 91) % 700) as f64,
                )
            })
            .collect();
        let cfg = AdKmnConfig {
            tau_percent: 0.0001, // effectively unreachable
            max_models: 5,
            max_rounds: 64,
            ..AdKmnConfig::default()
        };
        let r = AdKmn::new(cfg).run(&noisy, Pollutant::Co2);
        assert!(r.model_count() <= 5);
        assert!(!r.converged);
    }

    #[test]
    fn max_rounds_terminates() {
        let cfg = AdKmnConfig {
            tau_percent: 1e-9,
            max_rounds: 2,
            max_models: 1_000,
            ..AdKmnConfig::default()
        };
        let noisy: Vec<RawTuple> = (0..100)
            .map(|i| {
                tup(
                    i,
                    (i * 37 % 100) as f64,
                    (i * 53 % 100) as f64,
                    (i * 91 % 700) as f64,
                )
            })
            .collect();
        let r = AdKmn::new(cfg).run(&noisy, Pollutant::Co2);
        assert!(r.rounds <= 2);
    }

    #[test]
    fn result_vectors_are_aligned() {
        let r = AdKmn::new(AdKmnConfig::default()).run(&two_regime_data(), Pollutant::Co2);
        assert_eq!(r.centroids.len(), r.models.len());
        assert_eq!(r.centroids.len(), r.errors.len());
        assert_eq!(r.assignment.len(), two_regime_data().len());
        assert!(r.assignment.iter().all(|&a| a < r.centroids.len()));
    }

    #[test]
    fn deterministic_runs() {
        let a = AdKmn::new(AdKmnConfig::default()).run(&two_regime_data(), Pollutant::Co2);
        let b = AdKmn::new(AdKmnConfig::default()).run(&two_regime_data(), Pollutant::Co2);
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn all_split_strategies_converge_on_two_regimes() {
        for split in [
            SplitStrategy::WorstErrorPoint,
            SplitStrategy::RandomPoint,
            SplitStrategy::CentroidJitter,
        ] {
            let cfg = AdKmnConfig {
                split,
                max_rounds: 32,
                ..AdKmnConfig::default()
            };
            let r = AdKmn::new(cfg).run(&two_regime_data(), Pollutant::Co2);
            assert!(
                r.worst_error_percent() <= 2.5,
                "{split:?}: worst {}",
                r.worst_error_percent()
            );
        }
    }

    #[test]
    fn seeded_run_with_empty_seeds_equals_cold_run() {
        let data = two_regime_data();
        let adkmn = AdKmn::new(AdKmnConfig::default());
        let cold = adkmn.run(&data, Pollutant::Co2);
        let seeded = adkmn.run_seeded(&data, Pollutant::Co2, &[]);
        assert_eq!(cold.centroids, seeded.centroids);
    }

    #[test]
    fn good_seeds_save_rounds() {
        let data = two_regime_data();
        let adkmn = AdKmn::new(AdKmnConfig {
            tau_percent: 1.0,
            ..AdKmnConfig::default()
        });
        let cold = adkmn.run(&data, Pollutant::Co2);
        // Warm-start from the cold run's own solution: must converge with
        // no additional splits and the same model count.
        let warm = adkmn.run_seeded(&data, Pollutant::Co2, &cold.centroids);
        assert!(warm.converged);
        assert!(
            warm.rounds <= cold.rounds,
            "warm {} vs cold {}",
            warm.rounds,
            cold.rounds
        );
        assert_eq!(warm.model_count(), cold.model_count());
    }

    #[test]
    fn seeds_beyond_max_models_are_truncated() {
        let data = two_regime_data();
        let adkmn = AdKmn::new(AdKmnConfig {
            max_models: 3,
            ..AdKmnConfig::default()
        });
        let seeds: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let r = adkmn.run_seeded(&data, Pollutant::Co2, &seeds);
        assert!(r.model_count() <= 3);
    }

    #[test]
    fn merge_collapses_over_split_covers() {
        // A single smooth plane split into many seeds: with merging on, the
        // final cover should need far fewer models than the seed count.
        let tuples: Vec<RawTuple> = (0..120)
            .map(|i| {
                let x = (i % 12) as f64 * 100.0;
                let y = (i / 12) as f64 * 100.0;
                tup(i * 37 % 5_000, x, y, 400.0 + 0.01 * x)
            })
            .collect();
        let cfg = AdKmnConfig {
            merge_after_converge: true,
            ..AdKmnConfig::default()
        };
        let adkmn = AdKmn::new(cfg);
        let seeds: Vec<Point> = (0..16)
            .map(|i| Point::new((i % 4) as f64 * 300.0, (i / 4) as f64 * 300.0))
            .collect();
        let merged = adkmn.run_seeded(&tuples, Pollutant::Co2, &seeds);
        let unmerged =
            AdKmn::new(AdKmnConfig::default()).run_seeded(&tuples, Pollutant::Co2, &seeds);
        assert!(
            merged.model_count() < unmerged.model_count(),
            "merged {} vs unmerged {}",
            merged.model_count(),
            unmerged.model_count()
        );
        // And every remaining region still meets the threshold.
        assert!(merged.worst_error_percent() <= 2.0 + 1e-9);
    }

    #[test]
    fn merge_preserves_result_consistency() {
        let cfg = AdKmnConfig {
            merge_after_converge: true,
            ..AdKmnConfig::default()
        };
        let data = two_regime_data();
        let seeds: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 600.0, 0.0)).collect();
        let r = AdKmn::new(cfg).run_seeded(&data, Pollutant::Co2, &seeds);
        assert_eq!(r.centroids.len(), r.models.len());
        assert_eq!(r.centroids.len(), r.errors.len());
        assert_eq!(r.assignment.len(), data.len());
        assert!(r.assignment.iter().all(|&a| a < r.centroids.len()));
        // Two genuinely different regimes must not merge into one.
        assert!(r.model_count() >= 2);
    }

    #[test]
    fn merge_does_not_fire_below_two_regions() {
        let cfg = AdKmnConfig {
            initial_k: 1,
            merge_after_converge: true,
            ..AdKmnConfig::default()
        };
        let tuples: Vec<RawTuple> = (0..20).map(|i| tup(i, i as f64, 0.0, 400.0)).collect();
        let r = AdKmn::new(cfg).run(&tuples, Pollutant::Co2);
        assert_eq!(r.model_count(), 1);
    }

    #[test]
    fn identical_positions_cannot_split_forever() {
        // All tuples at one position with wildly different values: error can
        // never meet τ, but the region has no second distinct position, so
        // Ad-KMN must detect it cannot split and stop.
        let tuples: Vec<RawTuple> = (0..20)
            .map(|i| tup(i, 1.0, 1.0, (i * 500) as f64))
            .collect();
        let r = AdKmn::new(AdKmnConfig::default()).run(&tuples, Pollutant::Co2);
        assert!(r.rounds <= 1);
        assert!(r.converged); // no *splittable* violator remains
    }
}
