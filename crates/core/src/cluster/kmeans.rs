//! Standard k-means: k-means++ seeding and Lloyd iterations.

use enviro_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// k-means parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations per run.
    pub max_iterations: usize,
    /// Seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            seed: 0x4B4D_4541, // "KMEA"
        }
    }
}

/// The outcome of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids `µ_1..µ_k`.
    pub centroids: Vec<Point>,
    /// For each input point, the index of its centroid.
    pub assignment: Vec<usize>,
    /// Lloyd iterations actually performed.
    pub iterations: usize,
}

/// Cluster membership in counting-sort form: all member indices in one flat
/// vector plus per-cluster offsets.
///
/// Ad-KMN recomputes membership every split round, and the old Vec-of-Vecs
/// representation paid `k` growing allocations per call. This layout costs
/// two exact-sized allocations total and hands out each cluster as a slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMembers {
    /// `offsets[c]..offsets[c + 1]` indexes cluster `c` in `indices`.
    offsets: Vec<usize>,
    /// Member indices, grouped by cluster, in input order within a cluster.
    indices: Vec<usize>,
}

impl ClusterMembers {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The member indices of cluster `c`, in input order.
    ///
    /// # Panics
    /// Panics when `c` is out of range.
    pub fn cluster(&self, c: usize) -> &[usize] {
        &self.indices[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Iterates over the clusters as slices, in cluster order.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> + '_ {
        (0..self.cluster_count()).map(|c| self.cluster(c))
    }

    /// Total number of member indices across all clusters.
    pub fn total_len(&self) -> usize {
        self.indices.len()
    }
}

impl Clustering {
    /// The member indices of each cluster, in input order.
    pub fn members(&self) -> ClusterMembers {
        let k = self.centroids.len();
        // Counting sort: histogram, prefix-sum to starts, then place each
        // point while using `offsets[c]` as the cluster's write cursor.
        let mut offsets = vec![0usize; k + 1];
        for &c in &self.assignment {
            offsets[c + 1] += 1;
        }
        for c in 1..=k {
            offsets[c] += offsets[c - 1];
        }
        let mut indices = vec![0usize; self.assignment.len()];
        for (i, &c) in self.assignment.iter().enumerate() {
            indices[offsets[c]] = i;
            offsets[c] += 1;
        }
        // The cursors have advanced to each cluster's end, which is the
        // next cluster's start: shift right to restore the offsets.
        for c in (1..=k).rev() {
            offsets[c] = offsets[c - 1];
        }
        if let Some(first) = offsets.first_mut() {
            *first = 0;
        }
        ClusterMembers { offsets, indices }
    }

    /// Sum of squared distances from points to their centroids (inertia).
    pub fn inertia(&self, points: &[Point]) -> f64 {
        self.assignment
            .iter()
            .zip(points)
            .map(|(&c, p)| p.distance_sq(&self.centroids[c]))
            .sum()
    }
}

/// Namespace for the k-means entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeans;

impl KMeans {
    /// Runs k-means++ initialization followed by Lloyd iterations.
    ///
    /// `k` is clamped to the number of points; `k = 0` on non-empty input is
    /// a caller bug and panics. Empty input yields an empty clustering.
    pub fn fit(points: &[Point], k: usize, config: &KMeansConfig) -> Clustering {
        if points.is_empty() {
            return Clustering {
                centroids: Vec::new(),
                assignment: Vec::new(),
                iterations: 0,
            };
        }
        assert!(k > 0, "k must be positive for non-empty input");
        let k = k.min(points.len());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centroids = kmeanspp_init(points, k, &mut rng);
        Self::lloyd(points, centroids, config.max_iterations)
    }

    /// Runs Lloyd iterations from explicit starting centroids — Ad-KMN's
    /// "re-estimate all the centroids" step after a split.
    ///
    /// Empty clusters are re-seeded at the point currently farthest from its
    /// assigned centroid, so the returned clustering always has exactly
    /// `centroids.len().min(points.len())` non-empty clusters.
    pub fn lloyd(points: &[Point], mut centroids: Vec<Point>, max_iterations: usize) -> Clustering {
        if points.is_empty() {
            return Clustering {
                centroids: Vec::new(),
                assignment: Vec::new(),
                iterations: 0,
            };
        }
        centroids.truncate(points.len().max(1));
        assert!(!centroids.is_empty(), "need at least one centroid");
        let mut assignment = assign(points, &centroids);
        let mut iterations = 0;
        for _ in 0..max_iterations {
            iterations += 1;
            // Update step: move each centroid to its members' mean.
            let k = centroids.len();
            let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
            for (p, &c) in points.iter().zip(&assignment) {
                sums[c].0 += p.x;
                sums[c].1 += p.y;
                sums[c].2 += 1;
            }
            for (c, &(sx, sy, n)) in centroids.iter_mut().zip(&sums) {
                if n > 0 {
                    *c = Point::new(sx / n as f64, sy / n as f64);
                }
            }
            // Re-seed empty clusters at the worst-served point.
            for ci in 0..k {
                if sums[ci].2 == 0 {
                    if let Some((far_idx, _)) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, p.distance_sq(&centroids[assignment[i]])))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                    {
                        centroids[ci] = points[far_idx];
                    }
                }
            }
            // Assignment step.
            let new_assignment = assign(points, &centroids);
            let converged = new_assignment == assignment;
            assignment = new_assignment;
            if converged {
                break;
            }
        }
        Clustering {
            centroids,
            assignment,
            iterations,
        }
    }
}

/// Index of the centroid nearest to `p` (ties: lowest index).
pub fn nearest_centroid(centroids: &[Point], p: &Point) -> usize {
    debug_assert!(!centroids.is_empty());
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = c.distance_sq(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn assign(points: &[Point], centroids: &[Point]) -> Vec<usize> {
    points
        .iter()
        .map(|p| nearest_centroid(centroids, p))
        .collect()
}

/// k-means++ seeding: first centroid uniform, then each next centroid drawn
/// with probability proportional to squared distance from the nearest chosen
/// centroid.
fn kmeanspp_init(points: &[Point], k: usize, rng: &mut StdRng) -> Vec<Point> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())]);
    let mut dist2: Vec<f64> = points
        .iter()
        .map(|p| p.distance_sq(&centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with chosen centroids; any pick
            // works.
            points[rng.gen_range(0..points.len())]
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in dist2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            points[chosen]
        };
        centroids.push(next);
        for (d, p) in dist2.iter_mut().zip(points) {
            *d = d.min(p.distance_sq(&next));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of 20 points each.
    fn three_blobs() -> Vec<Point> {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (100.0, 0.0), (50.0, 100.0)] {
            for i in 0..20 {
                let dx = (i % 5) as f64 - 2.0;
                let dy = (i / 5) as f64 - 2.0;
                pts.push(Point::new(cx + dx, cy + dy));
            }
        }
        pts
    }

    #[test]
    fn empty_input_empty_output() {
        let c = KMeans::fit(&[], 3, &KMeansConfig::default());
        assert!(c.centroids.is_empty());
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let c = KMeans::fit(&pts, 10, &KMeansConfig::default());
        assert!(c.centroids.len() <= 2);
        assert_eq!(c.assignment.len(), 2);
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = three_blobs();
        let c = KMeans::fit(&pts, 3, &KMeansConfig::default());
        assert_eq!(c.centroids.len(), 3);
        // Each blob must map to a single cluster.
        for blob in 0..3 {
            let first = c.assignment[blob * 20];
            for i in 0..20 {
                assert_eq!(c.assignment[blob * 20 + i], first, "blob {blob}");
            }
        }
        // And the three clusters must be distinct.
        let mut ids: Vec<usize> = (0..3).map(|b| c.assignment[b * 20]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let pts = three_blobs();
        let c = KMeans::fit(&pts, 3, &KMeansConfig::default());
        for (p, &a) in pts.iter().zip(&c.assignment) {
            assert_eq!(a, nearest_centroid(&c.centroids, p));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let pts = three_blobs();
        let a = KMeans::fit(&pts, 3, &KMeansConfig::default());
        let b = KMeans::fit(&pts, 3, &KMeansConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = three_blobs();
        let cfg = KMeansConfig::default();
        let c1 = KMeans::fit(&pts, 1, &cfg);
        let c3 = KMeans::fit(&pts, 3, &cfg);
        assert!(c3.inertia(&pts) < c1.inertia(&pts));
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 3.0),
        ];
        let c = KMeans::fit(&pts, 1, &KMeansConfig::default());
        assert!((c.centroids[0].x - 1.0).abs() < 1e-9);
        assert!((c.centroids[0].y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![Point::new(5.0, 5.0); 10];
        let c = KMeans::fit(&pts, 3, &KMeansConfig::default());
        assert_eq!(c.assignment.len(), 10);
        assert!(c.assignment.iter().all(|&a| a < c.centroids.len()));
    }

    #[test]
    fn lloyd_from_explicit_seeds() {
        let pts = three_blobs();
        let seeds = vec![
            Point::new(-10.0, -10.0),
            Point::new(110.0, 10.0),
            Point::new(50.0, 110.0),
        ];
        let c = KMeans::lloyd(&pts, seeds, 50);
        // Should converge to (approximately) the blob centers.
        let mut xs: Vec<f64> = c.centroids.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.0).abs() < 2.0);
        assert!((xs[1] - 50.0).abs() < 2.0);
        assert!((xs[2] - 100.0).abs() < 2.0);
    }

    #[test]
    fn lloyd_reseeds_empty_clusters() {
        let pts = three_blobs();
        // Two seeds on top of each other far away: one will end up empty
        // and must be re-seeded rather than lost.
        let seeds = vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)];
        let c = KMeans::lloyd(&pts, seeds, 50);
        let members = c.members();
        assert!(members.iter().all(|m| !m.is_empty()), "{members:?}");
    }

    #[test]
    fn members_partition_input() {
        let pts = three_blobs();
        let c = KMeans::fit(&pts, 3, &KMeansConfig::default());
        let members = c.members();
        let total: usize = members.iter().map(<[usize]>::len).sum();
        assert_eq!(total, pts.len());
        assert_eq!(members.total_len(), pts.len());
    }

    #[test]
    fn members_match_assignment_in_input_order() {
        let pts = three_blobs();
        let c = KMeans::fit(&pts, 3, &KMeansConfig::default());
        let members = c.members();
        assert_eq!(members.cluster_count(), c.centroids.len());
        for (cluster, m) in members.iter().enumerate() {
            assert!(m.windows(2).all(|w| w[0] < w[1]), "input order violated");
            for &i in m {
                assert_eq!(c.assignment[i], cluster);
            }
        }
    }

    #[test]
    fn members_of_empty_clustering() {
        let c = KMeans::fit(&[], 3, &KMeansConfig::default());
        let members = c.members();
        assert_eq!(members.cluster_count(), 0);
        assert_eq!(members.total_len(), 0);
        assert!(members.iter().next().is_none());
    }

    #[test]
    fn nearest_centroid_tie_breaks_low_index() {
        let cs = [Point::new(-1.0, 0.0), Point::new(1.0, 0.0)];
        assert_eq!(nearest_centroid(&cs, &Point::origin()), 0);
    }
}
