//! Accuracy evaluation: NRMSE and coverage (Figure 6b's metrics).

/// Normalized root-mean-square error, in percent.
///
/// `NRMSE = RMSE / (max(truth) − min(truth)) × 100` over the evaluated
/// pairs. Returns 0 for an empty input, and normalizes by 1 when all truths
/// are identical (plain RMSE) to stay finite.
pub fn nrmse_percent(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mse = pairs
        .iter()
        .map(|(pred, truth)| (pred - truth).powi(2))
        .sum::<f64>()
        / n;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, truth) in pairs {
        lo = lo.min(truth);
        hi = hi.max(truth);
    }
    let range = (hi - lo).max(1.0);
    mse.sqrt() / range * 100.0
}

/// A method's accuracy over a query workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Queries the method produced an answer for.
    pub answered: usize,
    /// Total queries issued.
    pub total: usize,
    /// NRMSE over the answered queries, in percent.
    pub nrmse_percent: f64,
}

impl AccuracyReport {
    /// Builds the report from per-query `(prediction, ground truth)` where
    /// the prediction may be absent (no data within radius).
    ///
    /// NRMSE is computed only over answered queries — the same rule for
    /// every method, as unanswered queries have no error to attribute.
    pub fn from_predictions<I>(outcomes: I) -> Self
    where
        I: IntoIterator<Item = (Option<f64>, f64)>,
    {
        let mut pairs = Vec::new();
        let mut total = 0usize;
        for (pred, truth) in outcomes {
            total += 1;
            if let Some(p) = pred {
                pairs.push((p, truth));
            }
        }
        Self {
            answered: pairs.len(),
            total,
            nrmse_percent: nrmse_percent(&pairs),
        }
    }

    /// Fraction of queries answered, in `[0, 1]` (1.0 for zero queries).
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.answered as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pairs_zero_error() {
        assert_eq!(nrmse_percent(&[]), 0.0);
    }

    #[test]
    fn perfect_predictions_zero_error() {
        let pairs = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)];
        assert_eq!(nrmse_percent(&pairs), 0.0);
    }

    #[test]
    fn known_nrmse_value() {
        // Truths span [0, 10]; every prediction off by 1 → RMSE 1 → 10 %.
        let pairs = [(1.0, 0.0), (6.0, 5.0), (11.0, 10.0)];
        assert!((nrmse_percent(&pairs) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn constant_truth_normalizes_by_one() {
        let pairs = [(5.0, 4.0), (3.0, 4.0)]; // RMSE = 1, range = 0 → use 1
        assert!((nrmse_percent(&pairs) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn worse_predictions_higher_nrmse() {
        let good = [(1.1, 1.0), (2.1, 2.0), (10.0, 10.1)];
        let bad = [(3.0, 1.0), (5.0, 2.0), (2.0, 10.0)];
        assert!(nrmse_percent(&bad) > nrmse_percent(&good));
    }

    #[test]
    fn report_counts_answered() {
        let r =
            AccuracyReport::from_predictions(vec![(Some(1.0), 1.0), (None, 2.0), (Some(3.5), 3.0)]);
        assert_eq!(r.total, 3);
        assert_eq!(r.answered, 2);
        assert!((r.coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_ignores_unanswered_in_error() {
        let with_misses = AccuracyReport::from_predictions(vec![
            (Some(1.0), 1.0),
            (None, 100.0), // would be a huge error if counted
        ]);
        assert_eq!(with_misses.nrmse_percent, 0.0);
    }

    #[test]
    fn empty_report_full_coverage() {
        let r = AccuracyReport::from_predictions(Vec::new());
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.nrmse_percent, 0.0);
    }
}
