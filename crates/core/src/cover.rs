//! The model cover: the queryable abstraction replacing raw tuples.
//!
//! "A model cover is defined as a set of models `M = {M₁..M_O}` that are
//! respectively responsible for modeling the sub-regions `R₁..R_O` of `R`"
//! (§2.1). The sub-regions are the Voronoi cells of the cluster centroids
//! `µ`; querying means finding the nearest centroid and evaluating its
//! model. A cover carries the validity horizon `t_n` so clients can cache it
//! (§2.3).

use crate::cluster::{AdKmn, AdKmnConfig};
use crate::model::RegionModel;
use enviro_data::{Pollutant, Timestamp, Window};
use enviro_geo::Point;
use enviro_memsize::DeepSize;

/// One sub-region of a cover: centroid + model + training diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverRegion {
    /// The cluster centroid `µ_j` owning this Voronoi cell.
    pub centroid: Point,
    /// The model `M_j` for the cell.
    pub model: RegionModel,
    /// Training approximation error of `M_j` on its window tuples.
    pub training_error_percent: f64,
    /// Number of window tuples that trained this model.
    pub population: usize,
}

/// A complete model cover for one window: `(t_n, µ, M)` in the paper's
/// notation, plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCover {
    /// The pollutant the models predict.
    pub pollutant: Pollutant,
    /// The id `c` of the window `W_c` this cover was learned from.
    pub window_id: u64,
    /// The time `t_n` until which this cover is valid.
    pub valid_until: Timestamp,
    /// The regions, in centroid order.
    pub regions: Vec<CoverRegion>,
}

impl ModelCover {
    /// Number of models `O`.
    #[inline]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` when the cover holds no models (learned from an empty window).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// `true` if the cover may still serve queries at time `t`
    /// (the model-cache check `t_l < t_n`).
    ///
    /// The boundary is **exclusive**: `t_n` is the first instant the next
    /// window is responsible for, so a query at exactly `t_n` must refresh
    /// rather than be answered by the expiring cover (a cover whose window
    /// is `[t_0, t_n)` was trained on no data at `t_n`).
    #[inline]
    pub fn is_valid_at(&self, t: Timestamp) -> bool {
        t < self.valid_until
    }

    /// The index and region of the centroid nearest to `p` (ties: lowest
    /// index), or `None` for an empty cover.
    pub fn nearest_region(&self, p: &Point) -> Option<(usize, &CoverRegion)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, r) in self.regions.iter().enumerate() {
            let d = r.centroid.distance_sq(p);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| (i, &self.regions[i]))
    }

    /// Interpolates the sensor value at `(t, p)`: nearest centroid `µ*`,
    /// then `M*`'s prediction — the paper's model-cover query method.
    pub fn interpolate(&self, t: Timestamp, p: &Point) -> Option<f64> {
        self.nearest_region(p).map(|(_, r)| r.model.predict(t, p))
    }

    /// Total `f64` coefficients across all models — the payload size driver
    /// for the model-cache protocol.
    pub fn coefficient_count(&self) -> usize {
        self.regions
            .iter()
            .map(|r| r.model.coefficient_count() + 2) // + centroid (x, y)
            .sum()
    }

    /// Worst training error across regions (0 for an empty cover).
    pub fn worst_training_error_percent(&self) -> f64 {
        self.regions
            .iter()
            .map(|r| r.training_error_percent)
            .fold(0.0, f64::max)
    }

    /// Verifies the cover's semantic invariants, returning the first
    /// violation found.
    ///
    /// A cover is what phones cache and query, so a malformed one must be
    /// caught at the factory ([`CoverBuilder`] checks this in debug
    /// builds), not discovered as NaN interpolations in the field:
    /// * every centroid is finite (a NaN centroid wins no nearest-centroid
    ///   comparison and silently shadows its cell);
    /// * every model satisfies its own numeric invariants (see
    ///   [`crate::model::LinearModel::check_invariants`]);
    /// * every region was trained on at least one tuple (empty Voronoi
    ///   cells are dropped at assembly);
    /// * training errors are finite and non-negative.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, region) in self.regions.iter().enumerate() {
            if !region.centroid.is_finite() {
                return Err(format!("region {i}: non-finite centroid"));
            }
            match &region.model {
                RegionModel::Mean(v) if !v.is_finite() => {
                    return Err(format!("region {i}: non-finite mean model"));
                }
                RegionModel::Mean(_) => {}
                RegionModel::Linear(m) => {
                    m.check_invariants()
                        .map_err(|e| format!("region {i}: {e}"))?;
                }
            }
            if region.population == 0 {
                return Err(format!("region {i}: no training tuples"));
            }
            if !region.training_error_percent.is_finite() || region.training_error_percent < 0.0 {
                return Err(format!(
                    "region {i}: bad training error {}",
                    region.training_error_percent
                ));
            }
        }
        Ok(())
    }
}

impl DeepSize for ModelCover {
    fn heap_size(&self) -> usize {
        self.regions.capacity() * std::mem::size_of::<CoverRegion>()
            + self
                .regions
                .iter()
                .map(|r| r.model.heap_size())
                .sum::<usize>()
    }
}

/// Builds model covers from windows by running Ad-KMN.
#[derive(Debug, Clone)]
pub struct CoverBuilder {
    adkmn: AdKmn,
}

impl CoverBuilder {
    /// Creates a builder with the given Ad-KMN configuration.
    pub fn new(config: AdKmnConfig) -> Self {
        Self {
            adkmn: AdKmn::new(config),
        }
    }

    /// The Ad-KMN configuration in use.
    pub fn config(&self) -> &AdKmnConfig {
        self.adkmn.config()
    }

    /// Learns the cover for one window.
    ///
    /// Regions that end up with no members (possible when many tuples share
    /// one position) are dropped — an unpopulated Voronoi cell has no data
    /// behind its model and must not answer queries.
    pub fn build(&self, window: &Window<'_>, pollutant: Pollutant) -> ModelCover {
        let result = self.adkmn.run(window.tuples, pollutant);
        self.assemble(window, pollutant, result)
    }

    /// Learns the cover for one window, warm-starting the clustering from
    /// a previous cover's centroids (cross-window adaptivity; see
    /// [`crate::cluster::AdKmn::run_seeded`]).
    pub fn build_seeded(
        &self,
        window: &Window<'_>,
        pollutant: Pollutant,
        previous: &ModelCover,
    ) -> ModelCover {
        let seeds: Vec<enviro_geo::Point> = previous.regions.iter().map(|r| r.centroid).collect();
        let result = self.adkmn.run_seeded(window.tuples, pollutant, &seeds);
        self.assemble(window, pollutant, result)
    }

    fn assemble(
        &self,
        window: &Window<'_>,
        pollutant: Pollutant,
        result: crate::cluster::AdKmnResult,
    ) -> ModelCover {
        let mut population = vec![0usize; result.centroids.len()];
        for &a in &result.assignment {
            population[a] += 1;
        }
        let regions: Vec<CoverRegion> = result
            .centroids
            .iter()
            .zip(&result.models)
            .zip(&result.errors)
            .zip(&population)
            .filter(|&(_, &pop)| pop > 0)
            .map(|(((centroid, model), error), &pop)| CoverRegion {
                centroid: *centroid,
                model: model.clone(),
                training_error_percent: error.percent(),
                population: pop,
            })
            .collect();
        let cover = ModelCover {
            pollutant,
            window_id: window.id,
            valid_until: window.valid_until,
            regions,
        };
        debug_assert_eq!(cover.check_invariants(), Ok(()));
        cover
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::{Dataset, RawTuple, WindowSpec, Windows};

    fn tup(t: i64, x: f64, y: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(t), Point::new(x, y), v)
    }

    fn window_dataset() -> Dataset {
        let mut tuples = Vec::new();
        for i in 0..60 {
            let x = (i % 10) as f64 * 100.0;
            let y = (i / 10) as f64 * 100.0;
            tuples.push(tup(i, x, y, 400.0 + 0.05 * x + 0.02 * y));
        }
        Dataset::from_tuples(Pollutant::Co2, tuples).unwrap()
    }

    fn build_cover(ds: &Dataset) -> ModelCover {
        let w = Windows::new(ds, WindowSpec::ByCount(ds.len()))
            .next()
            .unwrap();
        CoverBuilder::new(AdKmnConfig::default()).build(&w, Pollutant::Co2)
    }

    #[test]
    fn cover_from_window_has_models() {
        let ds = window_dataset();
        let cover = build_cover(&ds);
        assert!(!cover.is_empty());
        assert_eq!(cover.window_id, 0);
        assert!(cover.regions.iter().all(|r| r.population > 0));
    }

    #[test]
    fn interpolation_close_to_truth_on_smooth_field() {
        let ds = window_dataset();
        let cover = build_cover(&ds);
        let p = Point::new(450.0, 250.0);
        let truth = 400.0 + 0.05 * 450.0 + 0.02 * 250.0;
        let got = cover.interpolate(Timestamp::from_secs(30), &p).unwrap();
        assert!((got - truth).abs() < 5.0, "{got} vs {truth}");
    }

    #[test]
    fn empty_window_gives_empty_cover() {
        let ds = Dataset::new(Pollutant::Co2);
        let w = Window {
            id: 3,
            tuples: ds.tuples(),
            valid_until: Timestamp::from_secs(100),
        };
        let cover = CoverBuilder::new(AdKmnConfig::default()).build(&w, Pollutant::Co2);
        assert!(cover.is_empty());
        assert_eq!(cover.interpolate(Timestamp::ZERO, &Point::origin()), None);
        assert!(cover.nearest_region(&Point::origin()).is_none());
    }

    #[test]
    fn validity_horizon_from_window() {
        let ds = window_dataset();
        let cover = build_cover(&ds);
        assert!(cover.is_valid_at(Timestamp::from_secs(0)));
        assert!(cover.is_valid_at(cover.valid_until + (-1)));
        // The paper defines validity as `t_l < t_n`: the horizon itself is
        // the first instant of the *next* window, so it must not be served
        // from this cover (regression test for the inclusive-boundary bug).
        assert!(!cover.is_valid_at(cover.valid_until));
        assert!(!cover.is_valid_at(cover.valid_until + 1));
    }

    #[test]
    fn nearest_region_is_actually_nearest() {
        let ds = window_dataset();
        let cover = build_cover(&ds);
        let q = Point::new(123.0, 456.0);
        let (idx, _) = cover.nearest_region(&q).unwrap();
        for (i, r) in cover.regions.iter().enumerate() {
            assert!(
                cover.regions[idx].centroid.distance_sq(&q) <= r.centroid.distance_sq(&q),
                "region {i} closer than chosen {idx}"
            );
        }
    }

    #[test]
    fn coefficient_count_positive_and_scales() {
        let ds = window_dataset();
        let cover = build_cover(&ds);
        assert!(cover.coefficient_count() >= cover.len() * 3);
    }

    #[test]
    fn deep_size_scales_with_regions() {
        let ds = window_dataset();
        let cover = build_cover(&ds);
        let sz = cover.deep_size_of();
        assert!(sz >= cover.len() * std::mem::size_of::<CoverRegion>());
        // A model cover must be far smaller than the raw tuples it replaces.
        assert!(sz < ds.len() * std::mem::size_of::<RawTuple>() * 2);
    }

    #[test]
    fn identical_position_window_single_populated_region() {
        let tuples: Vec<RawTuple> = (0..10).map(|i| tup(i, 5.0, 5.0, 400.0)).collect();
        let ds = Dataset::from_tuples(Pollutant::Co2, tuples).unwrap();
        let cover = build_cover(&ds);
        assert!(!cover.is_empty());
        assert!(cover.regions.iter().all(|r| r.population > 0));
        let got = cover
            .interpolate(Timestamp::from_secs(5), &Point::new(5.0, 5.0))
            .unwrap();
        assert!((got - 400.0).abs() < 1.0);
    }
}
