//! Row-major dense matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Sized for regression work: design matrices with a handful of columns.
/// Storage is a single contiguous `Vec<f64>`; element `(r, c)` lives at
/// `r * cols + c`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// The Gram matrix `Aᵀ·A` — the left side of the normal equations.
    ///
    /// Computed directly (symmetric accumulation) without materializing the
    /// transpose.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..n {
                    out[(i, j)] += a * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in (i + 1)..n {
                out[(j, i)] = out[(i, j)];
            }
        }
        out
    }

    /// `Aᵀ·b` — the right side of the normal equations.
    pub fn t_matvec(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, b.len(), "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &scale) in b.iter().enumerate() {
            if scale == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * scale;
            }
        }
        out
    }

    /// Maximum absolute element (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            let row = self.row(r);
            let cells: Vec<String> = row.iter().map(|v| format!("{v:>10.4}")).collect();
            writeln!(f, "[{}]", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn indexing_row_major() {
        let m = m2x3();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Matrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_swaps_dims_and_entries() {
        let t = m2x3().transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn transpose_involutive() {
        let m = m2x3();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m2x3();
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_with_identity() {
        let a = m2x3();
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn gram_equals_explicit_ata() {
        let a = m2x3();
        let explicit = a.transpose().matmul(&a);
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_rows(3, 2, vec![1.0, -2.0, 0.5, 3.0, -1.0, 4.0]);
        let g = a.gram();
        assert_eq!(g[(0, 1)], g[(1, 0)]);
    }

    #[test]
    fn t_matvec_equals_explicit() {
        let a = m2x3();
        let b = vec![2.0, -1.0];
        let explicit = a.transpose().matvec(&b);
        assert_eq!(a.t_matvec(&b), explicit);
    }

    #[test]
    fn matvec_known_result() {
        let m = m2x3();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn max_abs_and_is_finite() {
        let m = Matrix::from_rows(1, 3, vec![-5.0, 2.0, 4.0]);
        assert_eq!(m.max_abs(), 5.0);
        assert!(m.is_finite());
        let bad = Matrix::from_rows(1, 1, vec![f64::NAN]);
        assert!(!bad.is_finite());
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn from_rows_wrong_len_panics() {
        Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let a = m2x3();
        let b = m2x3();
        let _ = a.matmul(&b);
    }
}
