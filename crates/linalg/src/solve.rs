//! Linear solvers and least squares.

use crate::matrix::Matrix;
use std::fmt;

/// Failure modes of the solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not symmetric positive definite (Cholesky pivot ≤ 0) —
    /// for normal equations this means a rank-deficient design matrix.
    NotSpd,
    /// Gaussian elimination found no usable pivot: the system is singular
    /// (or numerically indistinguishable from singular).
    Singular,
    /// Operand dimensions do not form a valid system.
    DimensionMismatch,
    /// A non-finite value (NaN/∞) appeared in the inputs.
    NonFinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinalgError::NotSpd => "matrix is not symmetric positive definite",
            LinalgError::Singular => "matrix is singular",
            LinalgError::DimensionMismatch => "operand dimensions do not match",
            LinalgError::NonFinite => "non-finite value in input",
        };
        f.write_str(s)
    }
}

impl std::error::Error for LinalgError {}

/// Solves `A·x = b` for symmetric positive-definite `A` via Cholesky
/// decomposition (`A = L·Lᵀ`, then two triangular solves).
///
/// This is the fast path for the normal equations `AᵀA·β = Aᵀb`. Only the
/// lower triangle of `a` is read.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    if !a.is_finite() || !b.iter().all(|v| v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    // Decompose: L is lower triangular, row-major in `l`.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                // Pivot tolerance relative to the matrix scale.
                let tol = 1e-12 * a.max_abs().max(1.0);
                if sum <= tol {
                    return Err(LinalgError::NotSpd);
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back solve Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Solves `A·x = b` for general square `A` via Gaussian elimination with
/// partial pivoting.
pub fn gaussian_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    if !a.is_finite() || !b.iter().all(|v| v.is_finite()) {
        return Err(LinalgError::NonFinite);
    }
    // Augmented working copy.
    let mut m = vec![0.0; n * (n + 1)];
    for r in 0..n {
        m[r * (n + 1)..r * (n + 1) + n].copy_from_slice(a.row(r));
        m[r * (n + 1) + n] = b[r];
    }
    let w = n + 1;
    let tol = 1e-12 * a.max_abs().max(1.0);
    for col in 0..n {
        // Partial pivot: the row with the largest |entry| in this column.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                m[r1 * w + col]
                    .abs()
                    .partial_cmp(&m[r2 * w + col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if m[pivot_row * w + col].abs() <= tol {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for k in 0..w {
                m.swap(col * w + k, pivot_row * w + k);
            }
        }
        let pivot = m[col * w + col];
        for r in (col + 1)..n {
            let factor = m[r * w + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..w {
                m[r * w + k] -= factor * m[col * w + k];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut sum = m[r * w + n];
        for k in (r + 1)..n {
            sum -= m[r * w + k] * x[k];
        }
        x[r] = sum / m[r * w + r];
    }
    Ok(x)
}

/// Ordinary least squares: minimizes `‖A·β − b‖₂` via the normal equations.
///
/// Requires `A` to have full column rank; returns [`LinalgError::NotSpd`]
/// otherwise (callers fall back to [`lstsq_ridge`] or a mean model).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch);
    }
    if a.rows() < a.cols() {
        // Underdetermined: the Gram matrix cannot be positive definite.
        return Err(LinalgError::NotSpd);
    }
    cholesky_solve(&a.gram(), &a.t_matvec(b))
}

/// Ridge (Tikhonov-regularized) least squares:
/// minimizes `‖A·β − b‖₂² + λ·‖β‖₂²`.
///
/// For any `λ > 0` the system `(AᵀA + λI)·β = Aᵀb` is SPD regardless of the
/// rank of `A`, so this always succeeds on finite inputs. This is the
/// standard rescue for collinear bus-trajectory windows.
pub fn lstsq_ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch);
    }
    if lambda.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(LinalgError::NotSpd);
    }
    let mut gram = a.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    cholesky_solve(&gram, &a.t_matvec(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let x = cholesky_solve(&a, &[10.0, 8.0]).unwrap();
        assert_close(&x, &[1.75, 1.5], 1e-12);
    }

    #[test]
    fn cholesky_identity_returns_rhs() {
        let x = cholesky_solve(&Matrix::identity(3), &[1.0, -2.0, 3.0]).unwrap();
        assert_close(&x, &[1.0, -2.0, 3.0], 1e-15);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(cholesky_solve(&a, &[1.0, 1.0]), Err(LinalgError::NotSpd));
    }

    #[test]
    fn cholesky_rejects_rank_deficient() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(cholesky_solve(&a, &[2.0, 2.0]), Err(LinalgError::NotSpd));
    }

    #[test]
    fn cholesky_rejects_non_finite() {
        let a = Matrix::from_rows(1, 1, vec![f64::NAN]);
        assert_eq!(cholesky_solve(&a, &[1.0]), Err(LinalgError::NonFinite));
    }

    #[test]
    fn cholesky_dimension_mismatch() {
        let a = Matrix::identity(2);
        assert_eq!(
            cholesky_solve(&a, &[1.0]),
            Err(LinalgError::DimensionMismatch)
        );
    }

    #[test]
    fn gaussian_solves_general_system() {
        // Non-symmetric: [[0,2],[3,1]] x = [4, 5] → x = [1, 2]
        let a = Matrix::from_rows(2, 2, vec![0.0, 2.0, 3.0, 1.0]);
        let x = gaussian_solve(&a, &[4.0, 5.0]).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn gaussian_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(3, 3, vec![0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0]);
        let x = gaussian_solve(&a, &[2.0, 2.0, 2.0]).unwrap();
        assert_close(&x, &[1.0, 1.0, 1.0], 1e-12);
    }

    #[test]
    fn gaussian_rejects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(gaussian_solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn gaussian_agrees_with_cholesky_on_spd() {
        let a = Matrix::from_rows(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]);
        let b = [1.0, 2.0, 3.0];
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = gaussian_solve(&a, &b).unwrap();
        assert_close(&x1, &x2, 1e-10);
    }

    #[test]
    fn lstsq_recovers_exact_line() {
        // y = 2 + 3x sampled exactly.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let a = Matrix::from_rows(4, 2, xs.iter().flat_map(|&x| [1.0, x]).collect());
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x).collect();
        let beta = lstsq(&a, &b).unwrap();
        assert_close(&beta, &[2.0, 3.0], 1e-10);
    }

    #[test]
    fn lstsq_minimizes_residual_on_noisy_data() {
        // Overdetermined noisy fit: residual must be orthogonal to columns.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [1.1, 2.9, 5.2, 6.8, 9.1];
        let a = Matrix::from_rows(5, 2, xs.iter().flat_map(|&x| [1.0, x]).collect());
        let beta = lstsq(&a, &ys).unwrap();
        let fitted = a.matvec(&beta);
        let resid: Vec<f64> = ys.iter().zip(&fitted).map(|(y, f)| y - f).collect();
        let ortho = a.t_matvec(&resid);
        for v in ortho {
            assert!(v.abs() < 1e-9, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn lstsq_rejects_underdetermined() {
        let a = Matrix::from_rows(1, 2, vec![1.0, 1.0]);
        assert_eq!(lstsq(&a, &[1.0]), Err(LinalgError::NotSpd));
    }

    #[test]
    fn lstsq_rejects_collinear_columns() {
        // Second column = 2 × first column.
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(lstsq(&a, &[1.0, 1.0, 1.0]), Err(LinalgError::NotSpd));
    }

    #[test]
    fn ridge_handles_collinear_columns() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        let beta = lstsq_ridge(&a, &[3.0, 3.0, 3.0], 1e-6).unwrap();
        // Fitted values should still be ≈ 3.
        let fitted = a.matvec(&beta);
        assert_close(&fitted, &[3.0, 3.0, 3.0], 1e-3);
    }

    #[test]
    fn ridge_shrinks_towards_zero_with_large_lambda() {
        let a = Matrix::from_rows(3, 1, vec![1.0, 1.0, 1.0]);
        let small = lstsq_ridge(&a, &[4.0, 4.0, 4.0], 1e-9).unwrap()[0];
        let big = lstsq_ridge(&a, &[4.0, 4.0, 4.0], 1e3).unwrap()[0];
        assert!((small - 4.0).abs() < 1e-6);
        assert!(big.abs() < small.abs());
    }

    #[test]
    fn ridge_requires_positive_lambda() {
        let a = Matrix::identity(2);
        assert!(lstsq_ridge(&a, &[1.0, 1.0], 0.0).is_err());
        assert!(lstsq_ridge(&a, &[1.0, 1.0], -1.0).is_err());
    }

    #[test]
    fn ridge_matches_ols_for_tiny_lambda_on_well_posed() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let a = Matrix::from_rows(4, 2, xs.iter().flat_map(|&x| [1.0, x]).collect());
        let b: Vec<f64> = xs.iter().map(|&x| 1.0 - 0.5 * x).collect();
        let ols = lstsq(&a, &b).unwrap();
        let ridge = lstsq_ridge(&a, &b, 1e-12).unwrap();
        assert_close(&ols, &ridge, 1e-6);
    }
}
