//! Small dense linear algebra for EnviroMeter's per-region regression models.
//!
//! The model cover fits one linear model per sub-region; each fit is a tiny
//! least-squares problem (design matrices of 3–5 columns, tens to hundreds of
//! rows). Pulling in a full BLAS stack for 4×4 systems would be absurd, so
//! this crate provides exactly what the models need:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the handful of
//!   operations regression requires (`Aᵀ·A`, `Aᵀ·b`, multiply, transpose).
//! * [`cholesky_solve`] — an SPD solver for the normal equations.
//! * [`gaussian_solve`] — partial-pivoting Gaussian elimination fallback for
//!   general square systems.
//! * [`lstsq`] / [`lstsq_ridge`] — ordinary and ridge least squares built on
//!   the two solvers.
//!
//! Degenerate inputs are first-class: bus trajectories are nearly collinear,
//! so rank-deficient design matrices are the *common* case, reported as
//! [`LinalgError::NotSpd`] / [`LinalgError::Singular`] and handled upstream
//! by ridge regularization or a mean model.

#![forbid(unsafe_code)]
// Panic-prone sites in this crate are legacy debt tracked by the xtask
// panic ratchet (crates/xtask/panic-baseline.toml): counts may only go
// down. The clippy warn-level lints stay crate-allowed until the burn-down
// reaches zero; prefer typed errors in new code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod matrix;
pub mod solve;

pub use matrix::Matrix;
pub use solve::{cholesky_solve, gaussian_solve, lstsq, lstsq_ridge, LinalgError};
