//! Property-based tests for the linear-algebra substrate.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_linalg::{cholesky_solve, gaussian_solve, lstsq_ridge, Matrix};
use proptest::prelude::*;

fn small_val() -> impl Strategy<Value = f64> {
    -10.0..10.0
}

/// Strategy: a random matrix `B` (n×n) turned into the SPD matrix
/// `B·Bᵀ + εI`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_val(), n * n).prop_map(move |data| {
        let b = Matrix::from_rows(n, n, data);
        let mut spd = b.matmul(&b.transpose());
        for i in 0..n {
            spd[(i, i)] += 1.0; // guarantee positive definiteness
        }
        spd
    })
}

proptest! {
    #[test]
    fn cholesky_solution_satisfies_system(
        a in spd_matrix(3),
        b in prop::collection::vec(small_val(), 3),
    ) {
        let x = cholesky_solve(&a, &b).expect("SPD by construction");
        let back = a.matvec(&x);
        for (lhs, rhs) in back.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn gaussian_agrees_with_cholesky(
        a in spd_matrix(4),
        b in prop::collection::vec(small_val(), 4),
    ) {
        let x1 = cholesky_solve(&a, &b).expect("SPD");
        let x2 = gaussian_solve(&a, &b).expect("nonsingular");
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_is_associative(
        d1 in prop::collection::vec(small_val(), 4),
        d2 in prop::collection::vec(small_val(), 4),
        d3 in prop::collection::vec(small_val(), 4),
    ) {
        let a = Matrix::from_rows(2, 2, d1);
        let b = Matrix::from_rows(2, 2, d2);
        let c = Matrix::from_rows(2, 2, d3);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (u, v) in left.data().iter().zip(right.data()) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_of_product_reverses(
        d1 in prop::collection::vec(small_val(), 6),
        d2 in prop::collection::vec(small_val(), 6),
    ) {
        let a = Matrix::from_rows(2, 3, d1);
        let b = Matrix::from_rows(3, 2, d2);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (u, v) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn gram_is_positive_semidefinite_diag(
        data in prop::collection::vec(small_val(), 12),
    ) {
        let a = Matrix::from_rows(4, 3, data);
        let g = a.gram();
        for i in 0..3 {
            prop_assert!(g[(i, i)] >= -1e-12, "negative diagonal {}", g[(i, i)]);
        }
    }

    #[test]
    fn ridge_always_solves_finite_inputs(
        data in prop::collection::vec(small_val(), 12),
        b in prop::collection::vec(small_val(), 4),
    ) {
        let a = Matrix::from_rows(4, 3, data);
        let beta = lstsq_ridge(&a, &b, 1e-6).expect("ridge is always SPD");
        prop_assert!(beta.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ridge_residual_not_worse_than_zero_model(
        data in prop::collection::vec(small_val(), 12),
        b in prop::collection::vec(small_val(), 4),
    ) {
        let a = Matrix::from_rows(4, 3, data);
        let beta = lstsq_ridge(&a, &b, 1e-9).expect("solvable");
        let fitted = a.matvec(&beta);
        let rss: f64 = b.iter().zip(&fitted).map(|(y, f)| (y - f).powi(2)).sum();
        let tss: f64 = b.iter().map(|y| y * y).sum();
        // With negligible regularization, LS fit can't be (materially) worse
        // than the zero vector.
        prop_assert!(rss <= tss + 1e-6, "rss {rss} > tss {tss}");
    }
}
