//! Deterministic-schedule model checks for the serving and write paths.
//!
//! Compiled only under `RUSTFLAGS="--cfg enviro_schedules"` (the CI
//! `concurrency-check` job). Every harness re-executes its closure under
//! each interleaving the bounded-preemption search enumerates; a failing
//! schedule panics with a `SCHED_REPLAY=` path that reproduces it exactly.
//!
//! The expensive fixtures (the simulated platform, the query server) are
//! built **once**, outside [`enviro_schedule::explore`]; only the
//! interaction under test runs per schedule.
#![cfg(enviro_schedules)]

use enviro_data::{LausanneSim, RawTuple, SimConfig, Timestamp, WindowSpec};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BinaryCodec, ConcurrentTransport, EnviroServer, IngestConfig, IngestState, ModelMaintenance,
    Request, TransportConfig, WireCodec,
};
use enviro_schedule::sync::Arc;
use enviro_storage::WalConfig;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh WAL directory per schedule execution: the search re-runs the
/// closure many times and durable state must not leak between runs.
fn fresh_dir(tag: &str, round: u64) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("enviro-sched-{tag}-{}-{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_state(dir: &std::path::Path) -> IngestState {
    IngestState::open(
        dir,
        WalConfig {
            window_secs: 100,
            ..WalConfig::default()
        },
        IngestConfig::default(),
    )
    .expect("wal opens")
}

fn batch(n: i64) -> Vec<RawTuple> {
    (0..n)
        .map(|i| {
            RawTuple::new(
                Timestamp::from_secs(i),
                Point::new(i as f64 * 25.0, 0.0),
                400.0 + i as f64,
            )
        })
        .collect()
}

/// Exactly-once acks under retransmission: a client that resends the same
/// `(source, seq)` chunk concurrently (the stop-and-wait client's timeout
/// racing its own in-flight ack) must get the batch appended exactly once,
/// whatever order the two ingest calls interleave in.
#[test]
fn retransmitted_batch_is_appended_exactly_once() {
    let round = AtomicU64::new(0);
    let report = enviro_schedule::explore("ingest-retransmit-dedup", move || {
        let dir = fresh_dir("dedup", round.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(open_state(&dir));
        let tuples = batch(5);
        let spawn_ingest = |state: &Arc<IngestState>, tuples: &[RawTuple]| {
            let state = Arc::clone(state);
            let tuples = tuples.to_vec();
            enviro_schedule::thread::spawn(move || {
                state.ingest(7, 1, &tuples).expect("ingest succeeds")
            })
        };
        let a = spawn_ingest(&state, &tuples);
        let b = spawn_ingest(&state, &tuples);
        let out_a = a.join().expect("first sender");
        let out_b = b.join().expect("second sender");
        // One append, one idempotent re-ack — in either order.
        assert_ne!(
            out_a.duplicate, out_b.duplicate,
            "exactly one of the racing sends may append"
        );
        assert_eq!(out_a.durable_upto, 5);
        assert_eq!(out_b.durable_upto, 5);
        let stats = state.stats();
        assert_eq!(stats.durable_tuples, 5, "no double append");
        assert_eq!(stats.acked_batches, 1);
        assert_eq!(stats.duplicate_batches, 1);
        state.check_invariants().expect("state is consistent");
        let _ = std::fs::remove_dir_all(&dir);
    });
    println!("{report}");
    assert!(report.schedules > 1);
}

fn query_server() -> EnviroServer<BinaryCodec> {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 600,
        seed: 3,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(600),
        AdKmnConfig::default(),
        1_000.0,
    );
    EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover)
}

/// Transport shutdown: dropping a [`ConcurrentTransport`] with a request in
/// flight must always join its workers — no schedule may leave a worker
/// parked on the pause gate or the request channel (the model checker
/// reports that as a deadlock).
#[test]
fn transport_drop_joins_workers_on_every_schedule() {
    let server = Arc::new(query_server());
    let request = BinaryCodec.encode_request(&Request::Query {
        time: Timestamp::from_secs(60),
        pos: Point::new(0.0, -200.0),
    });
    let report = enviro_schedule::explore("transport-drop-join", move || {
        let transport = ConcurrentTransport::spawn_shared_with(
            Arc::clone(&server),
            TransportConfig {
                workers: 1,
                max_queue: 2,
                retry_after_ms: 1,
                start_paused: false,
            },
        )
        .expect("spawn");
        let reply = transport.call(request.clone()).expect("served");
        assert!(!reply.is_empty());
        drop(transport); // must join, never hang, on every interleaving
    });
    println!("{report}");
    assert!(report.schedules > 1);
}

/// The maintenance pause gate: while paused, no schedule lets the worker
/// publish; after resume + shutdown the worker always exits and the state
/// stays consistent — including the shutdown-races-resume window.
#[test]
fn paused_maintenance_never_publishes_and_always_shuts_down() {
    let round = AtomicU64::new(0);
    let report = enviro_schedule::explore("maintenance-pause-resume", move || {
        let dir = fresh_dir("gate", round.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(open_state(&dir));
        state.pause_rebuilds();
        let maintenance = ModelMaintenance::spawn(Arc::clone(&state)).expect("spawn");
        state.ingest(1, 1, &batch(6)).expect("ingest succeeds");
        // The gate is checked before every rebuild pass: no interleaving
        // may publish while paused.
        assert_eq!(state.generation(), 0, "published while paused");
        state.resume_rebuilds();
        drop(maintenance); // request_shutdown + join, racing the resume
                           // The worker either rebuilt before seeing shutdown or exited
                           // first; both are legal, a hang or a torn registry is not.
        assert!(state.generation() <= 1);
        state.check_invariants().expect("state is consistent");
        let _ = std::fs::remove_dir_all(&dir);
    });
    println!("{report}");
    assert!(report.schedules > 1);
}
