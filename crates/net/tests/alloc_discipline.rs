//! Allocation discipline: the warmed byte-in/byte-out serving path must not
//! touch the heap.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up pass (engine caches built, buffer pools primed, vector
//! capacities grown), a steady-state loop of `handle_bytes_into` calls —
//! single queries and batches, over the binary codec — must report zero
//! allocations. This pins the tentpole perf claim as a test instead of a
//! comment: regressions that sneak an allocation into the hot path fail CI.
//!
//! (`unsafe` is required to implement `GlobalAlloc`; the library crates all
//! `forbid(unsafe_code)` — this harness is deliberately outside them.)

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, QueryTuple, SimConfig, Timestamp, WindowSpec};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{BinaryCodec, EnviroServer, Request, WireCodec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every allocation and reallocation (frees are irrelevant to the
/// claim: a path that frees without allocating cannot exist in safe Rust).
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let result = f();
    (ALLOC_CALLS.load(Ordering::Relaxed) - before, result)
}

fn server(method: QueryMethod) -> EnviroServer<BinaryCodec> {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 2 * 3_600,
        seed: 21,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(3_600),
        AdKmnConfig::default(),
        1_000.0,
    );
    EnviroServer::new(platform, BinaryCodec, method)
}

fn tuple(i: i64) -> QueryTuple {
    QueryTuple::new(
        Timestamp::from_secs((i * 37) % 7_000),
        Point::new(
            (i % 40) as f64 * 25.0 - 500.0,
            (i % 17) as f64 * 50.0 - 400.0,
        ),
    )
}

/// Runs `rounds` of single + batch frames through `handle_bytes_into`,
/// recycling the request and reply buffers like a worker loop does, and
/// returns the allocation count of the steady-state portion.
fn steady_state_allocs(method: QueryMethod) -> usize {
    // The counter is process-global: serialize tests so a concurrently
    // running test's allocations cannot leak into this measurement.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = SERIAL.lock().unwrap();
    let server = server(method);
    let mut request = Vec::new();
    let mut reply = Vec::new();

    let frame_single = |out: &mut Vec<u8>, i: i64| {
        out.clear();
        let t = tuple(i);
        BinaryCodec.encode_request_into(
            &Request::Query {
                time: t.time,
                pos: t.pos,
            },
            out,
        );
    };
    // Batch frames are encoded from a pre-built query list so the test's
    // own allocation (building the Vec) stays outside the measured region;
    // the server-side decode draws from the per-thread pool.
    let batch: Vec<QueryTuple> = (0..64).map(tuple).collect();
    let frame_batch = |out: &mut Vec<u8>| {
        out.clear();
        BinaryCodec.encode_request_into(
            &Request::QueryBatch {
                seq: 1,
                queries: batch.clone(),
            },
            out,
        );
    };

    // Warm-up: build engine caches, prime buffer pools, grow capacities.
    for i in 0..32 {
        frame_single(&mut request, i);
        server.handle_bytes_into(&request, &mut reply);
        frame_batch(&mut request);
        server.handle_bytes_into(&request, &mut reply);
    }

    // Steady state: only the serving calls are measured (frame encoding
    // into the recycled request buffer is also allocation-free, but batch
    // request *construction* clones a Vec, so it stays outside the timer).
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for i in 32..48 {
        frame_single(&mut request, i);
        frames.push(request.clone());
        frame_batch(&mut request);
        frames.push(request.clone());
    }
    let (allocs, ()) = allocations(|| {
        for _ in 0..8 {
            for frame in &frames {
                server.handle_bytes_into(frame, &mut reply);
            }
        }
    });
    allocs
}

#[test]
fn model_cover_serving_path_is_allocation_free() {
    assert_eq!(steady_state_allocs(QueryMethod::ModelCover), 0);
}

#[test]
fn grid_indexed_serving_path_is_allocation_free() {
    assert_eq!(steady_state_allocs(QueryMethod::Grid), 0);
}

#[test]
fn naive_serving_path_is_allocation_free() {
    assert_eq!(steady_state_allocs(QueryMethod::Naive), 0);
}
