//! Property tests for the simulated link: accounting must be exact and
//! monotone whatever the traffic pattern.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_net::{LinkProfile, SimulatedLink};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn loss_free_accounting_is_exact(
        exchanges in prop::collection::vec((0usize..4096, 0usize..4096), 0..50),
    ) {
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let overhead = LinkProfile::GPRS.per_message_overhead_bytes;
        let mut want_sent = 0usize;
        let mut want_recv = 0usize;
        for &(up, down) in &exchanges {
            link.exchange(up, down);
            want_sent += up + overhead;
            want_recv += down + overhead;
        }
        prop_assert_eq!(link.usage().sent_bytes, want_sent);
        prop_assert_eq!(link.usage().received_bytes, want_recv);
        prop_assert_eq!(link.usage().messages_sent, exchanges.len());
        prop_assert_eq!(link.retransmissions(), 0);
        // Time is at least one RTT per exchange.
        prop_assert!(
            link.clock_secs() >= LinkProfile::GPRS.rtt_secs * exchanges.len() as f64 - 1e-9
        );
    }

    #[test]
    fn clock_is_monotone(
        exchanges in prop::collection::vec((0usize..1024, 0usize..1024), 1..40),
        loss in 0.0..0.5f64,
        seed in 0u64..1000,
    ) {
        let mut link = SimulatedLink::with_seed(LinkProfile::GPRS.with_loss(loss), seed);
        let mut last = 0.0;
        for &(up, down) in &exchanges {
            link.exchange(up, down);
            prop_assert!(link.clock_secs() >= last);
            last = link.clock_secs();
        }
    }

    #[test]
    fn lossy_never_cheaper_than_lossless(
        exchanges in prop::collection::vec((0usize..1024, 0usize..1024), 1..30),
        loss in 0.01..0.5f64,
        seed in 0u64..1000,
    ) {
        let mut clean = SimulatedLink::new(LinkProfile::GPRS);
        let mut lossy = SimulatedLink::with_seed(LinkProfile::GPRS.with_loss(loss), seed);
        for &(up, down) in &exchanges {
            clean.exchange(up, down);
            lossy.exchange(up, down);
        }
        prop_assert!(lossy.usage().sent_bytes >= clean.usage().sent_bytes);
        prop_assert!(lossy.usage().received_bytes >= clean.usage().received_bytes);
        prop_assert!(lossy.clock_secs() >= clean.clock_secs() - 1e-9);
        // Logical message counts are identical regardless of loss.
        prop_assert_eq!(lossy.usage().messages_sent, clean.usage().messages_sent);
    }

    #[test]
    fn faster_bearer_never_slower(
        exchanges in prop::collection::vec((0usize..2048, 0usize..2048), 1..30),
    ) {
        let mut gprs = SimulatedLink::new(LinkProfile::GPRS);
        let mut umts = SimulatedLink::new(LinkProfile::THREE_G);
        for &(up, down) in &exchanges {
            gprs.exchange(up, down);
            umts.exchange(up, down);
        }
        prop_assert!(umts.clock_secs() <= gprs.clock_secs() + 1e-9);
    }
}
