//! Codec robustness: arbitrary inputs must never panic, and arbitrary
//! well-formed messages must round-trip exactly.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{QueryTuple, Timestamp};
use enviro_geo::Point;
use enviro_meter::LinearModel;
use enviro_net::protocol::WireModel;
use enviro_net::{
    BinaryCodec, ErrorCode, ProtocolError, Request, Response, TextCodec, WireCodec, WireCover,
    WireRegion,
};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1.0e12..1.0e12
}

fn arb_batch() -> impl Strategy<Value = Request> {
    prop::collection::vec((any::<i64>(), finite(), finite()), 0..40).prop_map(|tuples| {
        Request::QueryBatch {
            queries: tuples
                .into_iter()
                .map(|(t, x, y)| QueryTuple::new(Timestamp::from_secs(t), Point::new(x, y)))
                .collect(),
        }
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<i64>(), finite(), finite()).prop_map(|(t, x, y)| Request::Query {
            time: Timestamp::from_secs(t),
            pos: Point::new(x, y),
        }),
        any::<i64>().prop_map(|t| Request::ModelRequest {
            time: Timestamp::from_secs(t),
        }),
        arb_batch(),
    ]
}

fn arb_value_batch() -> impl Strategy<Value = Response> {
    prop::collection::vec((any::<bool>(), finite()), 0..40).prop_map(|slots| Response::ValueBatch {
        values: slots.into_iter().map(|(hit, v)| hit.then_some(v)).collect(),
    })
}

fn arb_model() -> impl Strategy<Value = WireModel> {
    prop_oneof![
        finite().prop_map(WireModel::Mean),
        prop::collection::vec(finite(), LinearModel::COEFFICIENT_COUNT).prop_map(|v| {
            let mut arr = [0.0; LinearModel::COEFFICIENT_COUNT];
            arr.copy_from_slice(&v);
            WireModel::Linear(arr)
        }),
    ]
}

/// Diagnostic alphabet: letters, digits, codec-hostile specials
/// (whitespace, `%`, `=`), and multi-byte UTF-8.
const MESSAGE_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '%', ' ', '\t', '\n', '\r', '=', '-', '_', ':', '.', 'µ',
    'σ', '€', '💧',
];

fn arb_error() -> impl Strategy<Value = ProtocolError> {
    (
        0usize..3,
        prop::collection::vec(0usize..MESSAGE_CHARS.len(), 0..80),
    )
        .prop_map(|(code, chars)| {
            let code = match code {
                0 => ErrorCode::BadRequest,
                1 => ErrorCode::Unsupported,
                _ => ErrorCode::Internal,
            };
            ProtocolError::new(
                code,
                chars
                    .into_iter()
                    .map(|i| MESSAGE_CHARS[i])
                    .collect::<String>(),
            )
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        finite().prop_map(|value| Response::Value { value }),
        Just(Response::NoData),
        arb_error().prop_map(Response::Error),
        arb_value_batch(),
        (
            any::<i64>(),
            prop::collection::vec((finite(), finite(), arb_model()), 0..12)
        )
            .prop_map(|(t, regions)| {
                Response::Cover(WireCover {
                    valid_until: Timestamp::from_secs(t),
                    regions: regions
                        .into_iter()
                        .map(|(x, y, model)| WireRegion {
                            centroid: Point::new(x, y),
                            model,
                        })
                        .collect(),
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_request_roundtrip(req in arb_request()) {
        let bytes = BinaryCodec.encode_request(&req);
        prop_assert_eq!(BinaryCodec.decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn binary_response_roundtrip(resp in arb_response()) {
        let bytes = BinaryCodec.encode_response(&resp);
        prop_assert_eq!(BinaryCodec.decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn text_request_roundtrip(req in arb_request()) {
        let bytes = TextCodec.encode_request(&req);
        // Positions print with 6 decimals; compare fields accordingly.
        match (TextCodec.decode_request(&bytes).unwrap(), req) {
            (
                Request::Query { time: t1, pos: p1 },
                Request::Query { time: t2, pos: p2 },
            ) => {
                prop_assert_eq!(t1, t2);
                prop_assert!((p1.x - p2.x).abs() <= 1e-6 * (1.0 + p2.x.abs()));
                prop_assert!((p1.y - p2.y).abs() <= 1e-6 * (1.0 + p2.y.abs()));
            }
            (
                Request::ModelRequest { time: t1 },
                Request::ModelRequest { time: t2 },
            ) => prop_assert_eq!(t1, t2),
            (
                Request::QueryBatch { queries: q1 },
                Request::QueryBatch { queries: q2 },
            ) => {
                prop_assert_eq!(q1.len(), q2.len());
                for (a, b) in q1.iter().zip(&q2) {
                    prop_assert_eq!(a.time, b.time);
                    prop_assert!((a.pos.x - b.pos.x).abs() <= 1e-6 * (1.0 + b.pos.x.abs()));
                    prop_assert!((a.pos.y - b.pos.y).abs() <= 1e-6 * (1.0 + b.pos.y.abs()));
                }
            }
            other => prop_assert!(false, "variant mismatch: {:?}", other),
        }
    }

    #[test]
    fn binary_batch_request_roundtrip(req in arb_batch()) {
        let bytes = BinaryCodec.encode_request(&req);
        prop_assert_eq!(BinaryCodec.decode_request(&bytes).unwrap(), req);
    }

    #[test]
    fn binary_request_decoder_never_panics_on_truncations(
        req in arb_request(),
        cut in 0usize..1024,
    ) {
        let bytes = BinaryCodec.encode_request(&req);
        let cut = cut.min(bytes.len());
        match BinaryCodec.decode_request(&bytes[..cut]) {
            Ok(decoded) => {
                prop_assert_eq!(cut, bytes.len());
                prop_assert_eq!(decoded, req);
            }
            Err(_) => prop_assert!(cut < bytes.len()),
        }
    }

    #[test]
    fn binary_request_decoder_never_panics_on_bit_flips(
        req in arb_request(),
        flip_at in 0usize..1024,
        flip_bit in 0u8..8,
    ) {
        let mut bytes = BinaryCodec.encode_request(&req);
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
        }
        let _ = BinaryCodec.decode_request(&bytes); // must not panic
    }

    #[test]
    fn text_error_roundtrip(err in arb_error()) {
        // Error diagnostics carry whitespace and `%`, the characters the
        // text codec's escaping exists for — they must survive exactly.
        let resp = Response::Error(err);
        let bytes = TextCodec.encode_response(&resp);
        prop_assert_eq!(TextCodec.decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn binary_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = BinaryCodec.decode_request(&bytes);
        let _ = BinaryCodec.decode_response(&bytes);
    }

    #[test]
    fn text_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = TextCodec.decode_request(&bytes);
        let _ = TextCodec.decode_response(&bytes);
    }

    #[test]
    fn binary_decoder_never_panics_on_truncations(resp in arb_response(), cut in 0usize..200) {
        let bytes = BinaryCodec.encode_response(&resp);
        let cut = cut.min(bytes.len());
        // Either decodes to the original (only possible when cut == len)
        // or errors — never panics, never fabricates.
        match BinaryCodec.decode_response(&bytes[..cut]) {
            Ok(decoded) => {
                prop_assert_eq!(cut, bytes.len());
                prop_assert_eq!(decoded, resp);
            }
            Err(_) => prop_assert!(cut < bytes.len()),
        }
    }

    #[test]
    fn binary_decoder_never_panics_on_bit_flips(
        resp in arb_response(),
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let mut bytes = BinaryCodec.encode_response(&resp);
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
        }
        let _ = BinaryCodec.decode_response(&bytes); // must not panic
    }
}
