//! Property tests for both codecs, driven by a hand-rolled seeded
//! generator (no external property-testing dependency).
//!
//! This suite subsumes the earlier proptest-based `codec_fuzz` tests —
//! round-trips, truncation/garbage robustness, bit-flip safety — and adds
//! the v2 framing guarantees (sequence numbers, CRC detection of every
//! single-bit flip), `Busy` replies, and the `MAX_BATCH`/empty-batch
//! boundaries. Every failure prints the case seed; re-run a single case
//! with `CODEC_PROP_SEED=<suite seed>`.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::panic::AssertUnwindSafe;

use enviro_data::{QueryTuple, Timestamp};
use enviro_geo::Point;
use enviro_meter::LinearModel;
use enviro_net::protocol::WireModel;
use enviro_net::{
    BinaryCodec, ErrorCode, ProtocolError, Request, Response, TextCodec, WireCodec, WireCover,
    WireRegion, XorShiftRng, MAX_BATCH,
};

/// Cases per property. Each case derives its own seed from the suite
/// seed, so any failure is reproducible in isolation.
const CASES: u64 = 128;

/// Default suite seed; override with `CODEC_PROP_SEED=<u64>`.
const SUITE_SEED: u64 = 0xC0DE_C0DE_0000_0001;

fn suite_seed() -> u64 {
    std::env::var("CODEC_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SUITE_SEED)
}

/// Runs `f` for [`CASES`] independently seeded RNGs, reporting the exact
/// case seed on failure.
fn for_each_case(property: &str, f: impl Fn(&mut XorShiftRng)) {
    let suite = suite_seed();
    for case in 0..CASES {
        let case_seed = suite ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = XorShiftRng::new(case_seed);
        if let Err(panic) = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!(
                "property '{property}' failed at case {case} \
                 (case seed {case_seed:#x}); rerun with CODEC_PROP_SEED={suite}"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

// ---------------------------------------------------------------- generators

/// A finite f64 in roughly `[-1e12, 1e12]` — large enough to stress the
/// formatting paths, small enough to stay finite through them.
fn finite(rng: &mut XorShiftRng) -> f64 {
    (rng.next_f64() - 0.5) * 2.0e12
}

fn tuple(rng: &mut XorShiftRng) -> QueryTuple {
    QueryTuple::new(
        Timestamp::from_secs(rng.next_u64() as i64),
        Point::new(finite(rng), finite(rng)),
    )
}

fn batch_request(rng: &mut XorShiftRng, max_tuples: u64) -> Request {
    let n = rng.next_in_range(0, max_tuples) as usize;
    Request::QueryBatch {
        seq: rng.next_u64() as u32,
        queries: (0..n).map(|_| tuple(rng)).collect(),
    }
}

fn request(rng: &mut XorShiftRng) -> Request {
    match rng.next_in_range(0, 2) {
        0 => Request::Query {
            time: Timestamp::from_secs(rng.next_u64() as i64),
            pos: Point::new(finite(rng), finite(rng)),
        },
        1 => Request::ModelRequest {
            time: Timestamp::from_secs(rng.next_u64() as i64),
        },
        _ => batch_request(rng, 40),
    }
}

fn value_batch(rng: &mut XorShiftRng) -> Response {
    let n = rng.next_in_range(0, 40) as usize;
    Response::ValueBatch {
        seq: rng.next_u64() as u32,
        generation: rng.next_u64(),
        values: (0..n)
            .map(|_| (rng.next_u64() & 1 == 1).then(|| finite(rng)))
            .collect(),
    }
}

fn model(rng: &mut XorShiftRng) -> WireModel {
    if rng.next_u64() & 1 == 0 {
        WireModel::Mean(finite(rng))
    } else {
        let mut coeffs = [0.0; LinearModel::COEFFICIENT_COUNT];
        for c in &mut coeffs {
            *c = finite(rng);
        }
        WireModel::Linear(coeffs)
    }
}

/// Diagnostic alphabet: letters, digits, codec-hostile specials
/// (whitespace, `%`, `=`), and multi-byte UTF-8.
const MESSAGE_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '%', ' ', '\t', '\n', '\r', '=', '-', '_', ':', '.', 'µ',
    'σ', '€', '💧',
];

fn protocol_error(rng: &mut XorShiftRng) -> ProtocolError {
    let code = match rng.next_in_range(0, 2) {
        0 => ErrorCode::BadRequest,
        1 => ErrorCode::Unsupported,
        _ => ErrorCode::Internal,
    };
    let len = rng.next_in_range(0, 80) as usize;
    let message: String = (0..len)
        .map(|_| MESSAGE_CHARS[rng.next_in_range(0, MESSAGE_CHARS.len() as u64 - 1) as usize])
        .collect();
    ProtocolError::new(code, message)
}

fn cover(rng: &mut XorShiftRng) -> Response {
    let n = rng.next_in_range(0, 12) as usize;
    Response::Cover(WireCover {
        valid_until: Timestamp::from_secs(rng.next_u64() as i64),
        regions: (0..n)
            .map(|_| WireRegion {
                centroid: Point::new(finite(rng), finite(rng)),
                model: model(rng),
            })
            .collect(),
    })
}

fn response(rng: &mut XorShiftRng) -> Response {
    match rng.next_in_range(0, 5) {
        0 => Response::Value { value: finite(rng) },
        1 => Response::NoData,
        2 => Response::Error(protocol_error(rng)),
        3 => value_batch(rng),
        4 => Response::Busy {
            retry_after_ms: rng.next_u64() as u32,
        },
        _ => cover(rng),
    }
}

fn garbage(rng: &mut XorShiftRng, max_len: u64) -> Vec<u8> {
    let n = rng.next_in_range(0, max_len) as usize;
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

fn approx(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * (1.0 + b.abs())
}

// ---------------------------------------------------------------- roundtrips

#[test]
fn binary_request_roundtrip() {
    for_each_case("binary_request_roundtrip", |rng| {
        let req = request(rng);
        let bytes = BinaryCodec.encode_request(&req);
        assert_eq!(BinaryCodec.decode_request(&bytes).unwrap(), req);
    });
}

#[test]
fn binary_response_roundtrip() {
    for_each_case("binary_response_roundtrip", |rng| {
        let resp = response(rng);
        let bytes = BinaryCodec.encode_response(&resp);
        assert_eq!(BinaryCodec.decode_response(&bytes).unwrap(), resp);
    });
}

#[test]
fn text_request_roundtrip_up_to_coordinate_precision() {
    for_each_case("text_request_roundtrip", |rng| {
        let req = request(rng);
        let bytes = TextCodec.encode_request(&req);
        // Positions print with 6 decimals; compare fields accordingly.
        match (TextCodec.decode_request(&bytes).unwrap(), req) {
            (Request::Query { time: t1, pos: p1 }, Request::Query { time: t2, pos: p2 }) => {
                assert_eq!(t1, t2);
                assert!(approx(p1.x, p2.x, 1e-6));
                assert!(approx(p1.y, p2.y, 1e-6));
            }
            (Request::ModelRequest { time: t1 }, Request::ModelRequest { time: t2 }) => {
                assert_eq!(t1, t2)
            }
            (
                Request::QueryBatch {
                    seq: s1,
                    queries: q1,
                },
                Request::QueryBatch {
                    seq: s2,
                    queries: q2,
                },
            ) => {
                assert_eq!(s1, s2, "sequence numbers must survive the text codec");
                assert_eq!(q1.len(), q2.len());
                for (a, b) in q1.iter().zip(&q2) {
                    assert_eq!(a.time, b.time);
                    assert!(approx(a.pos.x, b.pos.x, 1e-6));
                    assert!(approx(a.pos.y, b.pos.y, 1e-6));
                }
            }
            other => panic!("variant mismatch: {other:?}"),
        }
    });
}

#[test]
fn text_value_batch_roundtrip_up_to_value_precision() {
    for_each_case("text_value_batch_roundtrip", |rng| {
        let resp = value_batch(rng);
        let bytes = TextCodec.encode_response(&resp);
        let (
            Response::ValueBatch {
                seq: s1,
                generation: g1,
                values: v1,
            },
            Response::ValueBatch {
                seq: s2,
                generation: g2,
                values: v2,
            },
        ) = (TextCodec.decode_response(&bytes).unwrap(), resp)
        else {
            panic!("value batch decoded to a different variant");
        };
        assert_eq!(s1, s2);
        assert_eq!(g1, g2);
        assert_eq!(v1.len(), v2.len());
        for (a, b) in v1.iter().zip(&v2) {
            match (a, b) {
                // Values print with 9 decimals.
                (Some(a), Some(b)) => assert!(approx(*a, *b, 1e-9), "{a} vs {b}"),
                (None, None) => {}
                other => panic!("hit/miss flag flipped: {other:?}"),
            }
        }
    });
}

#[test]
fn text_error_roundtrip_is_exact() {
    for_each_case("text_error_roundtrip", |rng| {
        // Error diagnostics carry whitespace and `%`, the characters the
        // text codec's escaping exists for — they must survive exactly.
        let resp = Response::Error(protocol_error(rng));
        let bytes = TextCodec.encode_response(&resp);
        assert_eq!(TextCodec.decode_response(&bytes).unwrap(), resp);
    });
}

#[test]
fn busy_roundtrip_both_codecs() {
    for_each_case("busy_roundtrip", |rng| {
        let resp = Response::Busy {
            retry_after_ms: rng.next_u64() as u32,
        };
        let bin = BinaryCodec.encode_response(&resp);
        assert_eq!(BinaryCodec.decode_response(&bin).unwrap(), resp);
        let text = TextCodec.encode_response(&resp);
        assert_eq!(TextCodec.decode_response(&text).unwrap(), resp);
    });
}

// ------------------------------------------------------------- adversarial

#[test]
fn binary_decoders_survive_truncation() {
    for_each_case("binary_truncation", |rng| {
        let req = request(rng);
        let bytes = BinaryCodec.encode_request(&req);
        let cut = rng.next_in_range(0, bytes.len() as u64) as usize;
        // Either decodes to the original (only possible when nothing was
        // cut) or errors — never panics, never fabricates.
        match BinaryCodec.decode_request(&bytes[..cut]) {
            Ok(decoded) => {
                assert_eq!(cut, bytes.len());
                assert_eq!(decoded, req);
            }
            Err(_) => assert!(cut < bytes.len()),
        }

        let resp = response(rng);
        let bytes = BinaryCodec.encode_response(&resp);
        let cut = rng.next_in_range(0, bytes.len() as u64) as usize;
        match BinaryCodec.decode_response(&bytes[..cut]) {
            Ok(decoded) => {
                assert_eq!(cut, bytes.len());
                assert_eq!(decoded, resp);
            }
            Err(_) => assert!(cut < bytes.len()),
        }
    });
}

#[test]
fn decoders_never_panic_on_garbage() {
    for_each_case("garbage", |rng| {
        let bytes = garbage(rng, 512);
        let _ = BinaryCodec.decode_request(&bytes);
        let _ = BinaryCodec.decode_response(&bytes);
        let _ = TextCodec.decode_request(&bytes);
        let _ = TextCodec.decode_response(&bytes);
    });
}

#[test]
fn bit_flips_never_panic_either_codec() {
    for_each_case("bit_flips_never_panic", |rng| {
        let req = request(rng);
        let resp = response(rng);
        for bytes in [
            BinaryCodec.encode_request(&req),
            BinaryCodec.encode_response(&resp),
            TextCodec.encode_request(&req),
            TextCodec.encode_response(&resp),
        ] {
            let mut bytes = bytes;
            if bytes.is_empty() {
                continue;
            }
            let at = rng.next_in_range(0, bytes.len() as u64 - 1) as usize;
            let bit = (rng.next_u64() % 8) as u8;
            bytes[at] ^= 1 << bit;
            let _ = BinaryCodec.decode_request(&bytes);
            let _ = BinaryCodec.decode_response(&bytes);
            let _ = TextCodec.decode_request(&bytes);
            let _ = TextCodec.decode_response(&bytes);
        }
    });
}

/// The CRC guarantee the chaos suite leans on: a v2 batch frame with any
/// single bit flipped must be *rejected*, never silently mis-decoded. A
/// CRC-32 detects every 1-bit error, and the frame layout leaves no byte
/// outside the checksum's reach (a flipped tag or version byte fails the
/// layout checks instead).
#[test]
fn any_single_bit_flip_in_a_batch_frame_is_rejected() {
    for_each_case("batch_bit_flip_rejected", |rng| {
        let req = batch_request(rng, 12);
        let mut bytes = BinaryCodec.encode_request(&req);
        let at = rng.next_in_range(0, bytes.len() as u64 - 1) as usize;
        let bit = (rng.next_u64() % 8) as u8;
        bytes[at] ^= 1 << bit;
        assert!(
            BinaryCodec.decode_request(&bytes).is_err(),
            "flip at byte {at} bit {bit} slipped past the CRC"
        );

        let resp = value_batch(rng);
        let mut bytes = BinaryCodec.encode_response(&resp);
        let at = rng.next_in_range(0, bytes.len() as u64 - 1) as usize;
        let bit = (rng.next_u64() % 8) as u8;
        bytes[at] ^= 1 << bit;
        assert!(
            BinaryCodec.decode_response(&bytes).is_err(),
            "flip at byte {at} bit {bit} slipped past the CRC"
        );
    });
}

// -------------------------------------------------------------- boundaries

#[test]
fn empty_batches_roundtrip_in_both_codecs() {
    let req = Request::QueryBatch {
        seq: 1,
        queries: Vec::new(),
    };
    let resp = Response::ValueBatch {
        seq: 1,
        generation: 0,
        values: Vec::new(),
    };
    for codec in [&BinaryCodec as &dyn WireCodec, &TextCodec] {
        let bytes = codec.encode_request(&req);
        assert_eq!(codec.decode_request(&bytes).unwrap(), req);
        let bytes = codec.encode_response(&resp);
        assert_eq!(codec.decode_response(&bytes).unwrap(), resp);
    }
}

#[test]
fn max_batch_roundtrips_and_one_over_is_rejected() {
    let mut rng = XorShiftRng::new(suite_seed());
    let tuples: Vec<QueryTuple> = (0..MAX_BATCH + 1).map(|_| tuple(&mut rng)).collect();

    let at_cap = Request::QueryBatch {
        seq: 7,
        queries: tuples[..MAX_BATCH].to_vec(),
    };
    for codec in [&BinaryCodec as &dyn WireCodec, &TextCodec] {
        let bytes = codec.encode_request(&at_cap);
        match codec.decode_request(&bytes).unwrap() {
            Request::QueryBatch { seq, queries } => {
                assert_eq!(seq, 7);
                assert_eq!(queries.len(), MAX_BATCH);
            }
            other => panic!("decoded {other:?}"),
        }

        // One past the cap: the encoder is the caller's problem, but the
        // decoder must refuse before allocating for a hostile count.
        let over = Request::QueryBatch {
            seq: 8,
            queries: tuples.clone(),
        };
        let bytes = codec.encode_request(&over);
        let err = codec.decode_request(&bytes).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }
}
