//! A deterministic simulated cellular link.
//!
//! The paper measures "the total number of bytes transmitted and received by
//! the mobile device, and the total time to complete the query" over GPRS/3G
//! data services. This module models such a link with a **virtual clock**:
//! no sleeping, no sockets — a request/response exchange advances simulated
//! time by latency plus serialization time and charges every message its
//! payload plus a fixed protocol overhead (TCP/IP + RLC headers of a
//! cellular PDP context).

/// Static characteristics of a cellular bearer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Round-trip latency in seconds (uplink grant + core network).
    pub rtt_secs: f64,
    /// Uplink throughput in bits per second.
    pub uplink_bps: f64,
    /// Downlink throughput in bits per second.
    pub downlink_bps: f64,
    /// Fixed per-message overhead in bytes (TCP/IP/PPP headers).
    pub per_message_overhead_bytes: usize,
    /// Probability that one transmission attempt (either direction) is
    /// lost and must be retransmitted after a timeout. 0 for the standard
    /// profiles; see [`LinkProfile::with_loss`].
    pub loss_probability: f64,
}

impl LinkProfile {
    /// A 2013-era GPRS bearer: ~700 ms RTT, 40/80 kbps up/down.
    pub const GPRS: LinkProfile = LinkProfile {
        name: "GPRS",
        rtt_secs: 0.7,
        uplink_bps: 40_000.0,
        downlink_bps: 80_000.0,
        per_message_overhead_bytes: 78,
        loss_probability: 0.0,
    };

    /// A 2013-era 3G (UMTS/HSPA) bearer: ~200 ms RTT, 384 kbps / 2 Mbps.
    pub const THREE_G: LinkProfile = LinkProfile {
        name: "3G",
        rtt_secs: 0.2,
        uplink_bps: 384_000.0,
        downlink_bps: 2_000_000.0,
        per_message_overhead_bytes: 78,
        loss_probability: 0.0,
    };

    /// An ideal link with zero latency/overhead and infinite throughput —
    /// isolates payload-byte accounting in tests.
    pub const IDEAL: LinkProfile = LinkProfile {
        name: "ideal",
        rtt_secs: 0.0,
        uplink_bps: f64::INFINITY,
        downlink_bps: f64::INFINITY,
        per_message_overhead_bytes: 0,
        loss_probability: 0.0,
    };

    /// This profile with per-attempt loss probability `p` (a moving phone
    /// on a congested cell). Lost attempts are detected by timeout
    /// (2 × RTT) and retransmitted, costing their bytes again.
    pub fn with_loss(self, p: f64) -> LinkProfile {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        LinkProfile {
            loss_probability: p,
            ..self
        }
    }
}

/// Running totals of one device's link usage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkUsage {
    /// Bytes transmitted by the device (payload + overhead).
    pub sent_bytes: usize,
    /// Bytes received by the device (payload + overhead).
    pub received_bytes: usize,
    /// Messages sent.
    pub messages_sent: usize,
    /// Messages received.
    pub messages_received: usize,
}

/// Retransmission timeout, as a multiple of the bearer RTT.
const RETRANSMIT_TIMEOUT_RTTS: f64 = 2.0;

/// Transfer direction, from the device's point of view.
#[derive(Debug, Clone, Copy)]
enum Direction {
    Up,
    Down,
}

/// A simulated bearer with a virtual clock.
///
/// ```
/// use enviro_net::{LinkProfile, SimulatedLink};
///
/// let mut link = SimulatedLink::new(LinkProfile::GPRS);
/// link.exchange(25, 9); // one query round-trip
/// assert_eq!(link.usage().sent_bytes, 25 + 78); // payload + headers
/// assert!(link.clock_secs() > 0.7); // at least one RTT
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedLink {
    profile: LinkProfile,
    clock_secs: f64,
    usage: LinkUsage,
    /// Deterministic loss process (only consulted when the profile has a
    /// non-zero loss probability).
    rng: rand::rngs::StdRng,
    /// Retransmissions performed so far.
    retransmissions: usize,
}

impl SimulatedLink {
    /// Creates an idle link at virtual time zero (loss seed 0).
    pub fn new(profile: LinkProfile) -> Self {
        Self::with_seed(profile, 0)
    }

    /// Creates an idle link with an explicit loss-process seed.
    pub fn with_seed(profile: LinkProfile, seed: u64) -> Self {
        use rand::SeedableRng;
        Self {
            profile,
            clock_secs: 0.0,
            usage: LinkUsage::default(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            retransmissions: 0,
        }
    }

    /// Retransmissions performed so far (0 on loss-free profiles).
    pub fn retransmissions(&self) -> usize {
        self.retransmissions
    }

    /// The bearer profile.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Current virtual time in seconds.
    pub fn clock_secs(&self) -> f64 {
        self.clock_secs
    }

    /// Usage totals so far.
    pub fn usage(&self) -> LinkUsage {
        self.usage
    }

    /// Performs one request/response exchange: the device uploads
    /// `request_payload` bytes and downloads `response_payload` bytes.
    ///
    /// Advances the virtual clock by one RTT plus both serialization times
    /// and charges both directions their payload + per-message overhead.
    /// On lossy profiles, each direction may be lost (independently, per
    /// attempt); a loss costs the attempt's bytes plus a retransmission
    /// timeout of 2 × RTT before the retry.
    pub fn exchange(&mut self, request_payload: usize, response_payload: usize) {
        let up = request_payload + self.profile.per_message_overhead_bytes;
        let down = response_payload + self.profile.per_message_overhead_bytes;
        self.transmit(up, Direction::Up);
        self.transmit(down, Direction::Down);
        self.usage.messages_sent += 1;
        self.usage.messages_received += 1;
        self.clock_secs += self.profile.rtt_secs;
    }

    /// Transmits one framed message in `dir`, retrying after a timeout on
    /// each lost attempt. Every attempt (lost or not) costs its bytes and
    /// serialization time; a loss additionally costs the retransmission
    /// timeout.
    fn transmit(&mut self, bytes: usize, dir: Direction) {
        use rand::Rng;
        let p = self.profile.loss_probability;
        let bps = match dir {
            Direction::Up => self.profile.uplink_bps,
            Direction::Down => self.profile.downlink_bps,
        };
        loop {
            match dir {
                Direction::Up => self.usage.sent_bytes += bytes,
                Direction::Down => self.usage.received_bytes += bytes,
            }
            self.clock_secs += (bytes as f64 * 8.0) / bps;
            if p <= 0.0 || self.rng.gen_range(0.0..1.0) >= p {
                return; // delivered
            }
            self.retransmissions += 1;
            self.clock_secs += RETRANSMIT_TIMEOUT_RTTS * self.profile.rtt_secs;
        }
    }

    /// Advances the clock without traffic (local computation, user idling).
    pub fn advance(&mut self, secs: f64) {
        assert!(secs >= 0.0, "time cannot go backwards");
        self.clock_secs += secs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_charges_payload_only() {
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        link.exchange(100, 200);
        assert_eq!(link.usage().sent_bytes, 100);
        assert_eq!(link.usage().received_bytes, 200);
        assert_eq!(link.clock_secs(), 0.0);
    }

    #[test]
    fn gprs_charges_overhead_per_message() {
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        link.exchange(25, 9);
        assert_eq!(link.usage().sent_bytes, 25 + 78);
        assert_eq!(link.usage().received_bytes, 9 + 78);
        assert_eq!(link.usage().messages_sent, 1);
    }

    #[test]
    fn time_includes_rtt_and_serialization() {
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        link.exchange(25, 9);
        let up_time = ((25 + 78) as f64 * 8.0) / 40_000.0;
        let down_time = ((9 + 78) as f64 * 8.0) / 80_000.0;
        let expected = 0.7 + up_time + down_time;
        assert!((link.clock_secs() - expected).abs() < 1e-12);
    }

    #[test]
    fn exchanges_accumulate() {
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        for _ in 0..10 {
            link.exchange(25, 9);
        }
        assert_eq!(link.usage().messages_sent, 10);
        assert_eq!(link.usage().sent_bytes, 10 * (25 + 78));
        assert!(link.clock_secs() > 7.0); // at least 10 RTTs
    }

    #[test]
    fn three_g_is_faster_than_gprs() {
        let mut gprs = SimulatedLink::new(LinkProfile::GPRS);
        let mut umts = SimulatedLink::new(LinkProfile::THREE_G);
        gprs.exchange(1_000, 10_000);
        umts.exchange(1_000, 10_000);
        assert!(umts.clock_secs() < gprs.clock_secs());
    }

    #[test]
    fn advance_moves_clock_only() {
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        link.advance(5.0);
        assert_eq!(link.clock_secs(), 5.0);
        assert_eq!(link.usage(), LinkUsage::default());
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_rejects_negative() {
        SimulatedLink::new(LinkProfile::GPRS).advance(-1.0);
    }

    #[test]
    fn zero_loss_profile_never_retransmits() {
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        for _ in 0..100 {
            link.exchange(25, 9);
        }
        assert_eq!(link.retransmissions(), 0);
    }

    #[test]
    fn lossy_link_costs_more_bytes_and_time() {
        let mut clean = SimulatedLink::new(LinkProfile::GPRS);
        let mut lossy = SimulatedLink::with_seed(LinkProfile::GPRS.with_loss(0.3), 7);
        for _ in 0..200 {
            clean.exchange(25, 9);
            lossy.exchange(25, 9);
        }
        assert!(lossy.retransmissions() > 20, "{}", lossy.retransmissions());
        assert!(lossy.usage().sent_bytes > clean.usage().sent_bytes);
        assert!(lossy.usage().received_bytes > clean.usage().received_bytes);
        assert!(lossy.clock_secs() > clean.clock_secs());
        // Message counts are logical, not per attempt.
        assert_eq!(lossy.usage().messages_sent, clean.usage().messages_sent);
    }

    #[test]
    fn lossy_link_is_deterministic_in_seed() {
        let run = |seed| {
            let mut link = SimulatedLink::with_seed(LinkProfile::GPRS.with_loss(0.2), seed);
            for _ in 0..50 {
                link.exchange(25, 9);
            }
            (link.usage(), link.clock_secs())
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn with_loss_rejects_invalid() {
        let _ = LinkProfile::GPRS.with_loss(1.0);
    }
}
