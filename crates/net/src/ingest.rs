//! The durable write path: WAL-backed ingestion with online model
//! maintenance.
//!
//! [`IngestState`] is what an ingesting [`crate::EnviroServer`] holds. The
//! hot path is deliberately small: an `IngestBatch` locks the state, runs
//! the per-source idempotency check, appends to the
//! [`enviro_storage::WalStore`] (which fsyncs before returning), marks the
//! affected windows dirty, and acks. Everything expensive — Ad-KMN
//! rebuilds, window sealing, WAL compaction — happens on the
//! [`ModelMaintenance`] worker thread, which drains the dirty set, builds
//! fresh covers **without holding any lock**, and publishes them through an
//! [`enviro_meter::CoverRegistry`] `Arc` swap. Queries only ever read a
//! registry snapshot, so an in-flight rebuild can never block them.
//!
//! Exactly-once acks under retransmission: the client resends a chunk until
//! it sees a matching ack, and each source tags chunks with a sequence
//! number. The state remembers each source's last applied `(seq,
//! durable_upto)` and re-acks a retransmitted chunk idempotently instead of
//! appending it twice. (A client is stop-and-wait per chunk, so one
//! remembered sequence number per source suffices.)

use crate::concurrent::Gate;
use enviro_data::{Pollutant, QueryTuple, RawTuple, Timestamp, Window};
use enviro_memsize::DeepSize;
use enviro_meter::{
    AdKmnConfig, CoverBuilder, CoverProcessor, CoverRegistry, ModelCover, PointQueryProcessor,
    PublishedCover,
};
use enviro_schedule::sync::atomic::{AtomicBool, Ordering};
use enviro_schedule::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use enviro_schedule::thread::JoinHandle;
use enviro_storage::{StorageError, WalConfig, WalStore};
use std::collections::{BTreeSet, HashMap};
use std::path::Path;

/// Model-maintenance knobs for an ingesting server.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// The pollutant the ingested values measure.
    pub pollutant: Pollutant,
    /// Ad-KMN configuration for the background cover rebuilds.
    pub adkmn: AdKmnConfig,
    /// Windows within `seal_lag` of the newest stay open (late tuples are
    /// still accepted); older ones are sealed to segment files — and their
    /// WAL space reclaimed — on the next maintenance pass.
    pub seal_lag: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            pollutant: Pollutant::Co2,
            adkmn: AdKmnConfig::default(),
            seal_lag: 1,
        }
    }
}

/// Counters describing the write path. Snapshot via
/// [`IngestState::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Batches appended and acked (excluding duplicates).
    pub acked_batches: u64,
    /// Retransmitted batches re-acked without a second append.
    pub duplicate_batches: u64,
    /// Tuples acked as durable (the WAL watermark).
    pub durable_tuples: u64,
    /// Tuples acked but dropped because their window was already sealed.
    pub late_tuples: u64,
    /// Maintenance passes that published at least one cover.
    pub rebuilds: u64,
    /// Covers published across all passes (one per dirty window).
    pub published_windows: u64,
    /// Windows sealed to segment files.
    pub sealed_windows: u64,
    /// Maintenance passes that failed (storage errors while sealing). The
    /// worker keeps running; the windows stay dirty and are retried.
    pub maintenance_errors: u64,
}

/// What one [`IngestState::ingest`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The durability watermark to ack with.
    pub durable_upto: u64,
    /// `true` when the batch was a retransmission and nothing was appended.
    pub duplicate: bool,
}

/// Everything guarded by the ingest lock (the ack path's only lock).
#[derive(Debug)]
struct Inner {
    wal: WalStore,
    /// Per-source `(last_seq, durable_upto_at_ack)` for idempotent re-acks.
    dedup: HashMap<u64, (u32, u64)>,
    /// Windows with data not yet reflected in the published covers.
    dirty: BTreeSet<u64>,
    stats: IngestStats,
}

/// Shared state of an ingesting server: WAL + dedup on the hot path, cover
/// registry on the query path, a dirty set in between.
#[derive(Debug)]
pub struct IngestState {
    inner: Mutex<Inner>,
    /// Signalled when the dirty set grows or shutdown is requested.
    work: Condvar,
    shutdown: AtomicBool,
    /// Test hook: while paused, the worker parks *before* each rebuild
    /// pass, letting a test pin "queries are served mid-rebuild" without
    /// racing the worker.
    rebuild_gate: Gate,
    registry: CoverRegistry,
    config: IngestConfig,
    builder: CoverBuilder,
}

impl IngestState {
    /// Opens (or recovers) the durable state under `dir`.
    ///
    /// Recovery marks every retained window dirty, so the first maintenance
    /// pass republishes covers for everything the WAL preserved.
    pub fn open(
        dir: &Path,
        wal_config: WalConfig,
        config: IngestConfig,
    ) -> Result<Self, StorageError> {
        let wal = WalStore::open(dir, wal_config)?;
        let mut dirty: BTreeSet<u64> = wal.memtables().map(|(id, _)| id).collect();
        dirty.extend(wal.sealed_window_ids());
        let wal_stats = wal.stats();
        let stats = IngestStats {
            durable_tuples: wal_stats.durable_tuples,
            ..IngestStats::default()
        };
        let builder = CoverBuilder::new(config.adkmn.clone());
        Ok(Self {
            inner: Mutex::new(Inner {
                wal,
                dedup: HashMap::new(),
                dirty,
                stats,
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rebuild_gate: Gate::new(false),
            registry: CoverRegistry::new(),
            config,
            builder,
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned lock means some thread panicked mid-operation; the
        // WAL on disk is still consistent (every mutation syncs before
        // acking), so serving beats tearing the whole server down.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The maintenance configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// The published-cover registry queries read from.
    pub fn registry(&self) -> &CoverRegistry {
        &self.registry
    }

    /// The current cover generation (0 until the first publication).
    pub fn generation(&self) -> u64 {
        self.registry.generation()
    }

    /// Current counters.
    pub fn stats(&self) -> IngestStats {
        let inner = self.lock();
        let wal_stats = inner.wal.stats();
        IngestStats {
            durable_tuples: wal_stats.durable_tuples,
            late_tuples: wal_stats.late_tuples,
            ..inner.stats
        }
    }

    /// The ack path: dedup, durable append, dirty marking.
    ///
    /// Returns only after the WAL has fsynced the batch (or recognized a
    /// retransmission), so acking the returned watermark never promises
    /// more than the disk holds.
    pub fn ingest(
        &self,
        source: u64,
        seq: u32,
        tuples: &[RawTuple],
    ) -> Result<IngestOutcome, StorageError> {
        let mut inner = self.lock();
        if let Some(&(last_seq, durable)) = inner.dedup.get(&source) {
            if last_seq == seq {
                inner.stats.duplicate_batches += 1;
                return Ok(IngestOutcome {
                    durable_upto: durable,
                    duplicate: true,
                });
            }
        }
        // lock-scope: allow(durability) — the fsync'd append *must* happen
        // under the ingest lock: the dedup entry and the WAL watermark it
        // acks are one atomic step, and the paper's exactly-once ack
        // contract hangs on them never being observed apart.
        let durable_upto = inner.wal.append_batch(tuples)?;
        for t in tuples {
            let id = inner.wal.window_id_of(t.time);
            if !inner.wal.is_sealed(id) {
                inner.dirty.insert(id);
            }
        }
        inner.dedup.insert(source, (seq, durable_upto));
        inner.stats.acked_batches += 1;
        drop(inner);
        self.work.notify_all();
        Ok(IngestOutcome {
            durable_upto,
            duplicate: false,
        })
    }

    /// One synchronous maintenance pass: drain the dirty set, rebuild those
    /// windows' covers off-lock, publish them, then seal windows older than
    /// the [`IngestConfig::seal_lag`] horizon. Returns the number of covers
    /// published.
    ///
    /// This is what the [`ModelMaintenance`] worker runs; tests call it
    /// directly for deterministic publication points.
    pub fn rebuild_dirty_now(&self) -> Result<usize, StorageError> {
        // Snapshot the dirty windows' tuples under the lock…
        let (snapshots, window_secs): (Vec<(u64, Vec<RawTuple>)>, i64) = {
            let mut inner = self.lock();
            let dirty = std::mem::take(&mut inner.dirty);
            let window_secs = inner.wal.config().window_secs;
            let snapshots = dirty
                .into_iter()
                .filter_map(|id| {
                    inner
                        .wal
                        .window_tuples(id)
                        .map(|tuples| (id, tuples.to_vec()))
                })
                .collect();
            (snapshots, window_secs)
        };
        // …then run Ad-KMN with no lock held: ingest acks and (lock-free)
        // queries proceed while models rebuild.
        let published = snapshots.len();
        let covers: Vec<PublishedCover> = snapshots
            .into_iter()
            .map(|(id, tuples)| self.build_cover(id, window_secs, &tuples))
            .collect();
        if !covers.is_empty() {
            self.registry.publish(covers);
            let mut inner = self.lock();
            inner.stats.rebuilds += 1;
            inner.stats.published_windows += published as u64;
        }
        // Seal + compact last: expensive I/O that shares the ingest lock,
        // but never the query path.
        let sealed = {
            let mut inner = self.lock();
            let watermark = inner
                .wal
                .max_window_id()
                .map(|max| max.saturating_sub(self.config.seal_lag));
            match watermark {
                // lock-scope: allow(maintenance) — sealing shares the
                // ingest lock by design: it only ever runs on the single
                // maintenance worker, and the query path never takes this
                // lock (covers are read through the registry snapshot).
                Some(w) => match inner.wal.seal_windows_before(w) {
                    Ok(ids) => ids.len() as u64,
                    Err(e) => {
                        inner.stats.maintenance_errors += 1;
                        return Err(e);
                    }
                },
                None => 0,
            }
        };
        if sealed > 0 {
            let mut inner = self.lock();
            inner.stats.sealed_windows += sealed;
        }
        Ok(published)
    }

    /// Builds one window's cover exactly the way the batch engine would:
    /// cold Ad-KMN over the window's tuples, epoch-aligned validity, the
    /// window's earliest tuple time as the routing key.
    fn build_cover(&self, id: u64, window_secs: i64, tuples: &[RawTuple]) -> PublishedCover {
        let window = Window {
            id,
            tuples,
            valid_until: Timestamp::from_secs((id as i64 + 1) * window_secs),
        };
        let cover: ModelCover = self.builder.build(&window, self.config.pollutant);
        let first_time = tuples
            .iter()
            .map(|t| t.time)
            .min()
            .unwrap_or(Timestamp::ZERO);
        PublishedCover {
            window_id: id,
            first_time,
            cover: Arc::new(cover),
        }
    }

    /// Answers one query from the published covers, or `None` when nothing
    /// has been published yet (the server then falls back to its batch
    /// platform).
    pub fn query(&self, q: &QueryTuple) -> Option<Option<f64>> {
        let snapshot = self.registry.snapshot();
        let entry = snapshot.cover_for_time(q.time)?;
        Some(CoverProcessor::new(&entry.cover).interpolate(q))
    }

    /// The published cover responsible for `t`, if any.
    pub fn cover_at(&self, t: Timestamp) -> Option<Arc<ModelCover>> {
        let snapshot = self.registry.snapshot();
        snapshot.cover_for_time(t).map(|e| Arc::clone(&e.cover))
    }

    /// `true` once any cover has been published (queries are then served
    /// from the registry).
    pub fn can_answer_queries(&self) -> bool {
        !self.registry.snapshot().is_empty()
    }

    /// Parks the maintenance worker before its next rebuild pass (test
    /// hook; queries and ingest acks are unaffected).
    pub fn pause_rebuilds(&self) {
        self.rebuild_gate.pause();
    }

    /// Releases a paused maintenance worker.
    pub fn resume_rebuilds(&self) {
        self.rebuild_gate.resume();
    }

    /// `true` while there are dirty windows awaiting a maintenance pass.
    pub fn has_dirty_windows(&self) -> bool {
        !self.lock().dirty.is_empty()
    }

    /// Verifies the cross-structure invariants (WAL, registry, dedup).
    pub fn check_invariants(&self) -> Result<(), String> {
        let inner = self.lock();
        inner.wal.check_invariants()?;
        let durable = inner.wal.durable_upto();
        for (source, &(seq, acked)) in &inner.dedup {
            if acked > durable {
                return Err(format!(
                    "source {source} acked watermark {acked} (seq {seq}) beyond durable {durable}"
                ));
            }
        }
        for &id in &inner.dirty {
            if inner.wal.window_tuples(id).is_none() {
                return Err(format!("dirty window {id} holds no tuples"));
            }
        }
        drop(inner);
        self.registry.check_invariants()
    }

    /// Wakes the worker and tells it to exit. Idempotent.
    fn request_shutdown(&self) {
        {
            // The store MUST happen under the ingest lock: the worker
            // evaluates its wait predicate (dirty-set + this flag) while
            // holding it, so an unlocked store can land between that check
            // and the park on `work` — the notify below is then lost and
            // the worker sleeps through its own shutdown. Found by the
            // `maintenance-pause-resume` model harness (schedule #40,
            // bound 2); see DESIGN.md "Concurrency model".
            let _inner = self.lock();
            // ordering: Release pairs with the Acquire loads in
            // `maintenance_loop` — a worker that observes the flag also
            // observes everything the dropping thread did before
            // requesting shutdown. (The flag is re-checked outside the
            // lock after the gate, so the pairing is kept explicit.)
            self.shutdown.store(true, Ordering::Release);
        }
        self.rebuild_gate.resume();
        self.work.notify_all();
    }

    /// Worker body: wait for dirty windows, rebuild, repeat until shutdown.
    fn maintenance_loop(&self) {
        loop {
            {
                let mut inner = self.lock();
                // ordering: Acquire pairs with the Release store in
                // `request_shutdown` (see there).
                while inner.dirty.is_empty() && !self.shutdown.load(Ordering::Acquire) {
                    inner = self
                        .work
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            // ordering: Acquire — same pairing as the loop condition above.
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            self.rebuild_gate.wait_until_resumed();
            // ordering: Acquire — re-checked after the gate so a shutdown
            // that raced the pause/resume window still exits promptly.
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if self.rebuild_dirty_now().is_err() {
                // Counted in stats; the windows stay dirty only if new data
                // arrives, so don't spin — wait for the next signal.
            }
        }
    }
}

impl DeepSize for IngestState {
    fn heap_size(&self) -> usize {
        let inner = self.lock();
        inner.wal.heap_size()
            + inner.dedup.capacity()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<(u32, u64)>())
            + inner.dirty.len() * std::mem::size_of::<u64>()
            + self.registry.heap_size()
    }
}

/// Owns the background maintenance thread. Dropping it shuts the worker
/// down and joins it.
#[derive(Debug)]
pub struct ModelMaintenance {
    state: Arc<IngestState>,
    handle: Option<JoinHandle<()>>,
}

impl ModelMaintenance {
    /// Spawns the worker over `state`.
    pub fn spawn(state: Arc<IngestState>) -> std::io::Result<Self> {
        let worker_state = Arc::clone(&state);
        let handle = enviro_schedule::thread::Builder::new()
            .name("enviro-maintenance".into())
            .spawn(move || worker_state.maintenance_loop())?;
        Ok(Self {
            state,
            handle: Some(handle),
        })
    }

    /// The shared state the worker maintains.
    pub fn state(&self) -> &Arc<IngestState> {
        &self.state
    }
}

impl Drop for ModelMaintenance {
    fn drop(&mut self) {
        self.state.request_shutdown();
        if let Some(handle) = self.handle.take() {
            // A worker that panicked has already detached from the state;
            // there is nothing useful to do with the error here.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use enviro_geo::Point;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("enviro-ingest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tuple(secs: i64, x: f64, v: f64) -> RawTuple {
        RawTuple::new(Timestamp::from_secs(secs), Point::new(x, 0.0), v)
    }

    fn window_tuples(window: i64, n: i64) -> Vec<RawTuple> {
        (0..n)
            .map(|i| tuple(window * 100 + i, i as f64 * 25.0, 400.0 + i as f64))
            .collect()
    }

    fn open_state(dir: &Path) -> IngestState {
        IngestState::open(
            dir,
            WalConfig {
                window_secs: 100,
                ..WalConfig::default()
            },
            IngestConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn ingest_acks_durable_watermark() {
        let dir = temp_dir("ack");
        let state = open_state(&dir);
        let batch = window_tuples(0, 8);
        let out = state.ingest(1, 1, &batch).unwrap();
        assert_eq!(out.durable_upto, 8);
        assert!(!out.duplicate);
        assert!(state.has_dirty_windows());
        assert_eq!(state.check_invariants(), Ok(()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retransmission_is_acked_without_a_second_append() {
        let dir = temp_dir("dedup");
        let state = open_state(&dir);
        let batch = window_tuples(0, 5);
        let first = state.ingest(7, 3, &batch).unwrap();
        let replay = state.ingest(7, 3, &batch).unwrap();
        assert!(replay.duplicate);
        assert_eq!(replay.durable_upto, first.durable_upto);
        assert_eq!(state.stats().durable_tuples, 5, "no double append");
        assert_eq!(state.stats().duplicate_batches, 1);
        // A different source reusing the same seq is not a duplicate.
        let other = state.ingest(8, 3, &window_tuples(0, 2)).unwrap();
        assert!(!other.duplicate);
        assert_eq!(other.durable_upto, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_publishes_covers_and_bumps_generation() {
        let dir = temp_dir("publish");
        let state = open_state(&dir);
        assert_eq!(state.generation(), 0);
        state.ingest(1, 1, &window_tuples(0, 10)).unwrap();
        let published = state.rebuild_dirty_now().unwrap();
        assert_eq!(published, 1);
        assert_eq!(state.generation(), 1);
        assert!(state.can_answer_queries());
        let q = QueryTuple::new(Timestamp::from_secs(10), Point::new(50.0, 0.0));
        let answer = state.query(&q).expect("registry answers");
        assert!(answer.is_some());
        // Nothing dirty: a second pass publishes nothing and keeps the
        // generation stable.
        assert_eq!(state.rebuild_dirty_now().unwrap(), 0);
        assert_eq!(state.generation(), 1);
        assert_eq!(state.check_invariants(), Ok(()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maintenance_seals_windows_behind_the_lag() {
        let dir = temp_dir("seal");
        let state = open_state(&dir);
        for w in 0..4i64 {
            state.ingest(1, w as u32 + 1, &window_tuples(w, 6)).unwrap();
        }
        state.rebuild_dirty_now().unwrap();
        // seal_lag 1 and max window 3: windows 0 and 1 seal, 2 and 3 open.
        let stats = state.stats();
        assert_eq!(stats.sealed_windows, 2);
        // Sealed windows still answer queries from their published covers.
        let q = QueryTuple::new(Timestamp::from_secs(10), Point::new(50.0, 0.0));
        assert!(state.query(&q).expect("covers exist").is_some());
        assert_eq!(state.check_invariants(), Ok(()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_marks_everything_dirty_and_republishes() {
        let dir = temp_dir("recover");
        {
            let state = open_state(&dir);
            state.ingest(1, 1, &window_tuples(0, 10)).unwrap();
            state.ingest(1, 2, &window_tuples(1, 10)).unwrap();
            state.rebuild_dirty_now().unwrap();
        }
        let state = open_state(&dir);
        assert!(state.has_dirty_windows(), "recovered windows are dirty");
        assert_eq!(state.generation(), 0, "registry starts empty");
        let published = state.rebuild_dirty_now().unwrap();
        assert_eq!(published, 2);
        assert!(state.can_answer_queries());
        assert_eq!(state.check_invariants(), Ok(()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_drains_dirty_windows_in_the_background() {
        let dir = temp_dir("worker");
        let state = Arc::new(open_state(&dir));
        let maintenance = ModelMaintenance::spawn(Arc::clone(&state)).unwrap();
        state.ingest(1, 1, &window_tuples(0, 10)).unwrap();
        // Bounded wait: the worker owns the rebuild, we just observe it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while state.generation() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never published"
            );
            std::thread::yield_now();
        }
        assert!(state.can_answer_queries());
        drop(maintenance); // shuts down and joins
        assert_eq!(state.check_invariants(), Ok(()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paused_worker_defers_publication_until_resume() {
        let dir = temp_dir("gate");
        let state = Arc::new(open_state(&dir));
        state.pause_rebuilds();
        let maintenance = ModelMaintenance::spawn(Arc::clone(&state)).unwrap();
        state.ingest(1, 1, &window_tuples(0, 10)).unwrap();
        // The worker is parked at the gate: no publication happens.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(state.generation(), 0);
        state.resume_rebuilds();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while state.generation() == 0 {
            assert!(std::time::Instant::now() < deadline, "resume never took");
            std::thread::yield_now();
        }
        drop(maintenance);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deep_size_grows_with_ingested_data() {
        let dir = temp_dir("memsize");
        let state = open_state(&dir);
        let empty = state.deep_size_of();
        state.ingest(1, 1, &window_tuples(0, 64)).unwrap();
        state.rebuild_dirty_now().unwrap();
        assert!(state.deep_size_of() > empty);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
