//! Injectable time: the piece that makes resilience testable.
//!
//! Deadlines, retry backoff and outage windows all consult a [`Clock`]
//! instead of `std::time` directly. Production uses [`SystemClock`]; the
//! chaos suite injects a [`VirtualClock`] shared between the client and the
//! fault-injecting wire, so a "2-second outage" is a counter bump, every
//! run is deterministic, and no test ever sleeps.

use enviro_schedule::sync::atomic::{AtomicU64, Ordering};
use enviro_schedule::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic millisecond clock plus the ability to wait on it.
pub trait Clock: std::fmt::Debug {
    /// Milliseconds since an arbitrary (per-clock) origin. Monotonic.
    fn now_ms(&self) -> u64;

    /// Blocks (or, for a virtual clock, advances time) for `ms`
    /// milliseconds. Used for retry backoff.
    fn sleep_ms(&self, ms: u64);
}

/// Wall-clock time via [`Instant`]; `sleep_ms` really sleeps.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// A manually-advanced clock for deterministic tests.
///
/// Clones share the same underlying counter, so handing one clone to a
/// [`crate::fault::ChaosWire`] and another to a client keeps the two views
/// of time coherent: wire latency charged by the chaos adapter is visible
/// to the client's deadline checks, and a client "sleeping" for backoff
/// moves time forward for everyone instantly.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_ms: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        // ordering: SeqCst — chaos tests assert a single global timeline
        // across client, wire, and server clones of this clock; the total
        // order is the spec, so the strongest ordering is the honest one.
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        // ordering: SeqCst — see `advance`: reads participate in the same
        // single total order the deterministic chaos runs rely on.
        self.now_ms.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        // Sleeping *is* advancing: the whole simulated world jumps past
        // the wait instantly.
        self.advance(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        assert_eq!(a.now_ms(), 0);
        a.advance(250);
        assert_eq!(b.now_ms(), 250);
        b.sleep_ms(50);
        assert_eq!(a.now_ms(), 300);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let t0 = c.now_ms();
        c.sleep_ms(1);
        assert!(c.now_ms() >= t0);
    }
}
