//! Thread-local buffer recycling for the batched serving hot path.
//!
//! Batch frames carry `Vec`s of query tuples and values, and the protocol
//! types own those `Vec`s — a natural design that would cost two heap
//! allocations per frame. Server workers and clients instead *take* a
//! warmed buffer from their thread's pool before decoding and *recycle* it
//! after encoding, so a steady-state worker thread reuses the same two
//! buffers for every frame it serves.
//!
//! Recycling is strictly an optimization: a buffer that is never recycled
//! (error path, early return) is simply dropped, and the next take falls
//! back to a fresh empty `Vec`.

use crate::protocol::MAX_BATCH;
use enviro_data::QueryTuple;
use std::cell::Cell;

thread_local! {
    static QUERIES: Cell<Vec<QueryTuple>> = const { Cell::new(Vec::new()) };
    static VALUES: Cell<Vec<Option<f64>>> = const { Cell::new(Vec::new()) };
}

/// Takes this thread's recycled query-tuple buffer (empty, but with its
/// previous capacity), or a fresh `Vec` when none is pooled.
pub fn take_queries() -> Vec<QueryTuple> {
    QUERIES.take()
}

/// Returns a query-tuple buffer to this thread's pool for the next
/// [`take_queries`]. Buffers above [`MAX_BATCH`] capacity are dropped to
/// bound pooled memory.
pub fn recycle_queries(mut buf: Vec<QueryTuple>) {
    buf.clear();
    if buf.capacity() <= MAX_BATCH {
        QUERIES.set(buf);
    }
}

/// Takes this thread's recycled value buffer (empty, but with its previous
/// capacity), or a fresh `Vec` when none is pooled.
pub fn take_values() -> Vec<Option<f64>> {
    VALUES.take()
}

/// Returns a value buffer to this thread's pool for the next
/// [`take_values`]. Buffers above [`MAX_BATCH`] capacity are dropped to
/// bound pooled memory.
pub fn recycle_values(mut buf: Vec<Option<f64>>) {
    buf.clear();
    if buf.capacity() <= MAX_BATCH {
        VALUES.set(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_data::Timestamp;
    use enviro_geo::Point;

    #[test]
    fn recycled_capacity_is_reused() {
        let mut q = take_queries();
        q.reserve(128);
        let cap = q.capacity();
        let ptr = q.as_ptr();
        recycle_queries(q);
        let q2 = take_queries();
        assert!(q2.is_empty());
        assert_eq!(q2.capacity(), cap);
        assert_eq!(q2.as_ptr(), ptr, "same allocation must come back");
    }

    #[test]
    fn recycle_clears_contents() {
        let mut q = take_queries();
        q.push(QueryTuple::new(Timestamp::ZERO, Point::origin()));
        recycle_queries(q);
        assert!(take_queries().is_empty());
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let mut v = take_values();
        v.reserve(MAX_BATCH + 1);
        let big = v.capacity();
        recycle_values(v);
        assert!(take_values().capacity() < big);
    }

    #[test]
    fn nested_take_yields_fresh_buffer() {
        let a = take_queries();
        let b = take_queries(); // pool is empty now; must not panic
        assert!(b.is_empty());
        recycle_queries(a);
        recycle_queries(b);
    }
}
