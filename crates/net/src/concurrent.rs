//! The concurrent serving layer: N worker threads over one shared server.
//!
//! [`ChannelTransport`](crate::transport::ChannelTransport) runs exactly one
//! request at a time on one background thread — fine for the Figure 7
//! bandwidth baselines, nowhere near a deployment that absorbs "heavy
//! traffic from millions of users". [`ConcurrentTransport`] is the
//! deployment shape: it spawns `workers` threads over one
//! `Arc<EnviroServer>`, shards requests across per-worker queues, and gives
//! each connection a pipelined [`Session`].
//!
//! Sharing one server across threads is sound because the entire query
//! path is `&self`: the engine's per-window structures live behind
//! `OnceLock`s (first builder wins, everyone else reads), and the codec,
//! platform and window metadata are immutable after construction. Workers
//! therefore need no locks on the hot path.
//!
//! Buffers circulate instead of being allocated: a worker swaps each
//! request buffer into service as the next reply buffer, and a [`Session`]
//! pools the reply buffers it gets back for its next request. In steady
//! state a session ↔ worker pair recycles the same two or three `Vec`s
//! forever (the channel internals are the only allocator traffic).

use crate::codec::WireCodec;
use crate::protocol::Response;
use crate::server::EnviroServer;
use crate::transport::TransportError;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use enviro_schedule::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use enviro_schedule::sync::{Arc, Condvar, Mutex, PoisonError};
use enviro_schedule::thread::JoinHandle;
use std::collections::VecDeque;

/// Maximum unacknowledged requests a [`Session`] may pipeline.
///
/// This equals the session's reply-queue capacity, so a worker can always
/// deposit every outstanding reply without blocking — which is what makes
/// the design deadlock-free by construction.
pub const PIPELINE_MAX: usize = 64;

/// Default per-worker request queue depth.
const SHARD_QUEUE: usize = 256;

/// Tuning knobs for [`ConcurrentTransport::spawn_shared_with`].
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-worker request queue depth (clamped to at least 1). A request
    /// arriving at a full queue is **shed**: the sender gets an immediate
    /// [`Response::Busy`] frame instead of blocking, so server memory stays
    /// bounded no matter how hard the fleet pushes.
    pub max_queue: usize,
    /// The backoff hint carried by shed [`Response::Busy`] frames, ms.
    pub retry_after_ms: u32,
    /// Spawn with every worker parked at a gate until
    /// [`ConcurrentTransport::resume_workers`] — lets tests fill queues to
    /// a deterministic depth before anything drains.
    pub start_paused: bool,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_queue: SHARD_QUEUE,
            retry_after_ms: 25,
            start_paused: false,
        }
    }
}

/// The pause gate workers park at between envelopes (also used by the
/// ingest maintenance worker, so tests can pin deterministic publication
/// points).
#[derive(Debug, Default)]
pub(crate) struct Gate {
    paused: Mutex<bool>,
    resumed: Condvar,
}

impl Gate {
    pub(crate) fn new(paused: bool) -> Self {
        Self {
            paused: Mutex::new(paused),
            resumed: Condvar::new(),
        }
    }

    pub(crate) fn pause(&self) {
        *self.paused.lock().unwrap_or_else(PoisonError::into_inner) = true;
    }

    pub(crate) fn resume(&self) {
        // A poisoned lock only means a worker panicked mid-serve; the gate
        // state itself (a bool) cannot be torn, so continue with it.
        *self.paused.lock().unwrap_or_else(PoisonError::into_inner) = false;
        self.resumed.notify_all();
    }

    pub(crate) fn wait_until_resumed(&self) {
        let mut paused = self.paused.lock().unwrap_or_else(PoisonError::into_inner);
        while *paused {
            paused = self
                .resumed
                .wait(paused)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A request envelope: opaque bytes plus the reply channel of the issuing
/// session.
struct Envelope {
    request: Vec<u8>,
    reply_to: Sender<Vec<u8>>,
}

/// A pool of worker threads serving one shared [`EnviroServer`].
///
/// Each worker owns its request queue (the vendored channel receiver is
/// single-consumer); sessions and one-shot calls are assigned to shards
/// round-robin. Dropping the transport closes every queue, lets the workers
/// drain, and joins them.
pub struct ConcurrentTransport {
    shards: Vec<Sender<Envelope>>,
    workers: Vec<JoinHandle<()>>,
    next_shard: AtomicUsize,
    gate: Arc<Gate>,
    /// The pre-encoded [`Response::Busy`] frame shed requests answer with
    /// (encoded once at spawn, in the server's codec).
    busy_frame: Vec<u8>,
    /// Requests shed across all sessions and one-shot calls.
    shed: AtomicU64,
}

impl ConcurrentTransport {
    /// Spawns `workers` threads (at least 1) serving `server`. `Err` means
    /// the OS refused to create a thread.
    pub fn spawn<C>(server: EnviroServer<C>, workers: usize) -> std::io::Result<Self>
    where
        C: WireCodec + Send + Sync + 'static,
    {
        Self::spawn_shared(Arc::new(server), workers)
    }

    /// Like [`ConcurrentTransport::spawn`], but over a server the caller
    /// keeps a handle to (e.g. for direct in-process queries alongside the
    /// served traffic).
    pub fn spawn_shared<C>(server: Arc<EnviroServer<C>>, workers: usize) -> std::io::Result<Self>
    where
        C: WireCodec + Send + Sync + 'static,
    {
        Self::spawn_shared_with(
            server,
            TransportConfig {
                workers,
                ..TransportConfig::default()
            },
        )
    }

    /// Spawns with explicit queue-depth / shedding configuration.
    pub fn spawn_shared_with<C>(
        server: Arc<EnviroServer<C>>,
        config: TransportConfig,
    ) -> std::io::Result<Self>
    where
        C: WireCodec + Send + Sync + 'static,
    {
        let workers = config.workers.max(1);
        let max_queue = config.max_queue.max(1);
        let busy_frame = server.codec().encode_response(&Response::Busy {
            retry_after_ms: config.retry_after_ms,
        });
        let gate = Arc::new(Gate::new(config.start_paused));
        let mut shards = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = bounded(max_queue);
            let server = Arc::clone(&server);
            let gate = Arc::clone(&gate);
            let handle = enviro_schedule::thread::Builder::new()
                .name(format!("enviro-worker-{i}"))
                .spawn(move || worker_loop(&server, &rx, &gate))?;
            shards.push(tx);
            handles.push(handle);
        }
        Ok(Self {
            shards,
            workers: handles,
            next_shard: AtomicUsize::new(0),
            gate,
            busy_frame,
            shed: AtomicU64::new(0),
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Total requests shed (answered [`Response::Busy`]) since spawn.
    pub fn shed_total(&self) -> u64 {
        // ordering: Relaxed — `shed` is a statistics counter; nothing is
        // published through it and no control flow gates on a fresh value,
        // so only the count's atomicity matters. (Tests that assert exact
        // totals read it from the thread that did the shedding.)
        self.shed.load(Ordering::Relaxed)
    }

    /// Releases workers parked by [`TransportConfig::start_paused`].
    pub fn resume_workers(&self) {
        self.gate.resume();
    }

    /// Performs one request/response exchange (a fresh reply channel per
    /// call). Sessions amortize that setup; this mirrors
    /// [`ChannelTransport::call`](crate::transport::ChannelTransport::call)
    /// for drop-in use.
    ///
    /// When the chosen shard's queue is full the request is shed and the
    /// reply is a pre-encoded [`Response::Busy`] frame.
    pub fn call(&self, request: Vec<u8>) -> Result<Vec<u8>, TransportError> {
        let (reply_tx, reply_rx) = bounded(1);
        let shard = self.pick_shard();
        match self.shards[shard].try_send(Envelope {
            request,
            reply_to: reply_tx,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // ordering: Relaxed — statistics only; see `shed_total`.
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Ok(self.busy_frame.clone());
            }
            Err(TrySendError::Disconnected(_)) => return Err(TransportError::Disconnected),
        }
        reply_rx.recv().map_err(|_| TransportError::Disconnected)
    }

    /// Opens a connection-like [`Session`] pinned to one worker shard.
    pub fn session(&self) -> Session<'_> {
        let shard = self.pick_shard();
        let (reply_tx, reply_rx) = bounded(PIPELINE_MAX);
        Session {
            transport: self,
            shard,
            reply_tx,
            reply_rx,
            sources: VecDeque::new(),
            pool: Vec::new(),
            last: Vec::new(),
        }
    }

    fn pick_shard(&self) -> usize {
        // ordering: Relaxed — a round-robin distribution counter. Fairness
        // is best-effort by design; correctness never depends on which
        // shard a request lands on, so no ordering is required.
        self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }
}

impl Drop for ConcurrentTransport {
    fn drop(&mut self) {
        // Wake any workers parked at the pause gate so they can observe
        // the closed queues, then close every request queue and join.
        // Sessions borrow the transport, so none can be alive here.
        self.gate.resume();
        self.shards.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: serve envelopes until the queue closes, reusing one reply
/// buffer by swapping it with each served request's buffer. The gate check
/// runs before each receive so a paused transport accumulates queue depth
/// deterministically.
fn worker_loop<C: WireCodec>(server: &EnviroServer<C>, rx: &Receiver<Envelope>, gate: &Gate) {
    let mut reply = Vec::new();
    loop {
        gate.wait_until_resumed();
        let Ok(envelope) = rx.recv() else {
            break;
        };
        let Envelope {
            mut request,
            reply_to,
        } = envelope;
        server.handle_bytes_into(&request, &mut reply);
        // Ship the reply in the request's allocation-slot and keep the
        // other buffer as the next reply scratch (`handle_bytes_into`
        // clears it before use).
        std::mem::swap(&mut request, &mut reply);
        // A dropped reply channel just means the client gave up.
        let _ = reply_to.send(request);
    }
}

/// Where the next in-order reply for a session comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplySource {
    /// A worker owes the session a reply over its queue.
    Wire,
    /// The request was shed; the reply is the transport's pre-encoded
    /// `Busy` frame.
    Shed,
}

/// A per-connection handle: requests go to one pinned worker shard, replies
/// come back in order over a private queue.
///
/// Sessions support **pipelining**: up to [`PIPELINE_MAX`] requests may be
/// sent before receiving their replies, which batch-oriented clients use to
/// keep the wire full. Replies arrive in send order (the shard serves one
/// session's envelopes FIFO); a shed request's synthetic `Busy` reply is
/// slotted into that order via a per-session source ledger.
pub struct Session<'t> {
    transport: &'t ConcurrentTransport,
    shard: usize,
    reply_tx: Sender<Vec<u8>>,
    reply_rx: Receiver<Vec<u8>>,
    /// One entry per in-flight request, in send order.
    sources: VecDeque<ReplySource>,
    /// Reply buffers returned by [`Session::recv`], reused for requests.
    pool: Vec<Vec<u8>>,
    /// The most recent reply, borrowed out by [`Session::recv`].
    last: Vec<u8>,
}

impl Session<'_> {
    /// Sends one request frame without waiting for its reply. The frame is
    /// encoded by `encode` into a recycled buffer.
    ///
    /// Fails with [`TransportError::PipelineFull`] when [`PIPELINE_MAX`]
    /// replies are outstanding — receive some first. If the worker queue is
    /// full the request is shed: the send still "succeeds", and the
    /// matching [`Session::recv`] yields a [`Response::Busy`] frame.
    pub fn send_with(&mut self, encode: impl FnOnce(&mut Vec<u8>)) -> Result<(), TransportError> {
        if self.sources.len() >= PIPELINE_MAX {
            return Err(TransportError::PipelineFull);
        }
        let mut request = self.pool.pop().unwrap_or_default();
        request.clear();
        encode(&mut request);
        match self.transport.shards[self.shard].try_send(Envelope {
            request,
            reply_to: self.reply_tx.clone(),
        }) {
            Ok(()) => self.sources.push_back(ReplySource::Wire),
            Err(TrySendError::Full(envelope)) => {
                // ordering: Relaxed — statistics only; see `shed_total`.
                self.transport.shed.fetch_add(1, Ordering::Relaxed);
                if self.pool.len() < 4 {
                    self.pool.push(envelope.request);
                }
                self.sources.push_back(ReplySource::Shed);
            }
            Err(TrySendError::Disconnected(_)) => return Err(TransportError::Disconnected),
        }
        Ok(())
    }

    /// Receives the next pending reply, in send order. The returned slice
    /// is valid until the next `recv`/`call` on this session.
    pub fn recv(&mut self) -> Result<&[u8], TransportError> {
        let Some(source) = self.sources.pop_front() else {
            return Err(TransportError::NoPendingReply);
        };
        match source {
            ReplySource::Wire => {
                let reply = self
                    .reply_rx
                    .recv()
                    .map_err(|_| TransportError::Disconnected)?;
                let prev = std::mem::replace(&mut self.last, reply);
                if self.pool.len() < 4 {
                    self.pool.push(prev);
                }
            }
            ReplySource::Shed => {
                self.last.clear();
                self.last.extend_from_slice(&self.transport.busy_frame);
            }
        }
        Ok(&self.last)
    }

    /// One full exchange: [`Session::send_with`] then [`Session::recv`].
    pub fn call_with(
        &mut self,
        encode: impl FnOnce(&mut Vec<u8>),
    ) -> Result<&[u8], TransportError> {
        self.send_with(encode)?;
        self.recv()
    }

    /// Number of requests sent but not yet received.
    pub fn inflight(&self) -> usize {
        self.sources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BinaryCodec;
    use crate::protocol::{Request, Response};
    use enviro_data::{LausanneSim, SimConfig, Timestamp, WindowSpec};
    use enviro_geo::Point;
    use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};

    fn server() -> EnviroServer<BinaryCodec> {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 3_600,
            seed: 3,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover)
    }

    fn query_bytes(i: i64) -> Vec<u8> {
        BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::from_secs(i * 60),
            pos: Point::new(0.0, -200.0),
        })
    }

    #[test]
    fn call_round_trips_on_every_worker_count() {
        for workers in [1, 2, 4] {
            let t = ConcurrentTransport::spawn(server(), workers).unwrap();
            assert_eq!(t.workers(), workers);
            for i in 0..8 {
                let reply = t.call(query_bytes(i)).unwrap();
                assert!(matches!(
                    BinaryCodec.decode_response(&reply).unwrap(),
                    Response::Value { .. }
                ));
            }
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let t = ConcurrentTransport::spawn(server(), 0).unwrap();
        assert_eq!(t.workers(), 1);
    }

    #[test]
    fn session_pipelines_in_order() {
        let t = ConcurrentTransport::spawn(server(), 2).unwrap();
        let mut session = t.session();
        let codec = BinaryCodec;
        for i in 0..10 {
            session
                .send_with(|out| {
                    codec.encode_request_into(
                        &Request::Query {
                            time: Timestamp::from_secs(i * 60),
                            pos: Point::new(i as f64, 0.0),
                        },
                        out,
                    )
                })
                .unwrap();
        }
        assert_eq!(session.inflight(), 10);
        let mut values = Vec::new();
        for _ in 0..10 {
            let reply = session.recv().unwrap();
            match codec.decode_response(reply).unwrap() {
                Response::Value { value } => values.push(value),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(session.inflight(), 0);
        // In-order delivery: each reply matches its direct-handled twin.
        let s = server();
        for (i, v) in values.iter().enumerate() {
            let direct = s.handle(&Request::Query {
                time: Timestamp::from_secs(i as i64 * 60),
                pos: Point::new(i as f64, 0.0),
            });
            assert_eq!(direct, Response::Value { value: *v }, "reply {i}");
        }
    }

    #[test]
    fn pipeline_cap_is_enforced() {
        let t = ConcurrentTransport::spawn(server(), 1).unwrap();
        let mut session = t.session();
        for _ in 0..PIPELINE_MAX {
            session
                .send_with(|out| out.extend_from_slice(b"junk"))
                .unwrap();
        }
        assert_eq!(
            session.send_with(|out| out.extend_from_slice(b"junk")),
            Err(TransportError::PipelineFull)
        );
        while session.inflight() > 0 {
            session.recv().unwrap();
        }
    }

    #[test]
    fn recv_without_send_is_an_error_not_a_hang() {
        let t = ConcurrentTransport::spawn(server(), 1).unwrap();
        let mut session = t.session();
        assert_eq!(session.recv(), Err(TransportError::NoPendingReply));
    }

    #[test]
    fn garbage_frames_get_error_replies_and_session_survives() {
        let t = ConcurrentTransport::spawn(server(), 2).unwrap();
        let mut session = t.session();
        let reply = session
            .call_with(|out| out.extend_from_slice(&[0xDE, 0xAD]))
            .unwrap();
        assert!(matches!(
            BinaryCodec.decode_response(reply).unwrap(),
            Response::Error(_)
        ));
        let reply = session
            .call_with(|out| {
                BinaryCodec.encode_request_into(
                    &Request::Query {
                        time: Timestamp::from_secs(60),
                        pos: Point::new(0.0, -200.0),
                    },
                    out,
                )
            })
            .unwrap();
        assert!(matches!(
            BinaryCodec.decode_response(reply).unwrap(),
            Response::Value { .. }
        ));
    }

    #[test]
    fn drop_with_no_traffic_shuts_down_cleanly() {
        let t = ConcurrentTransport::spawn(server(), 4).unwrap();
        drop(t);
    }

    #[test]
    fn full_queue_sheds_with_busy_replies_in_order() {
        // One paused worker, queue depth 2: the first two sends queue, the
        // next two shed — deterministically, because nothing drains until
        // resume_workers().
        let t = ConcurrentTransport::spawn_shared_with(
            Arc::new(server()),
            TransportConfig {
                workers: 1,
                max_queue: 2,
                retry_after_ms: 7,
                start_paused: true,
            },
        )
        .unwrap();
        let mut session = t.session();
        for i in 0..4 {
            session
                .send_with(|out| {
                    BinaryCodec.encode_request_into(
                        &Request::Query {
                            time: Timestamp::from_secs(i * 60),
                            pos: Point::new(0.0, -200.0),
                        },
                        out,
                    )
                })
                .unwrap();
        }
        assert_eq!(t.shed_total(), 2);
        assert_eq!(session.inflight(), 4);
        t.resume_workers();
        let mut got = Vec::new();
        for _ in 0..4 {
            let reply = session.recv().unwrap();
            got.push(match BinaryCodec.decode_response(reply).unwrap() {
                Response::Value { .. } => "value",
                Response::Busy { retry_after_ms } => {
                    assert_eq!(retry_after_ms, 7);
                    "busy"
                }
                other => panic!("{other:?}"),
            });
        }
        // Send order is preserved: queued requests answer first, shed ones
        // get their synthetic Busy in their original slots.
        assert_eq!(got, ["value", "value", "busy", "busy"]);
        assert_eq!(session.inflight(), 0);
    }

    #[test]
    fn one_shot_call_sheds_when_full() {
        let t = ConcurrentTransport::spawn_shared_with(
            Arc::new(server()),
            TransportConfig {
                workers: 1,
                max_queue: 1,
                retry_after_ms: 25,
                start_paused: true,
            },
        )
        .unwrap();
        // First call would block on its reply; use a session to occupy the
        // queue without waiting.
        let mut session = t.session();
        session
            .send_with(|out| out.extend_from_slice(b"junk"))
            .unwrap();
        let reply = t.call(query_bytes(1)).unwrap();
        assert!(matches!(
            BinaryCodec.decode_response(&reply).unwrap(),
            Response::Busy { retry_after_ms: 25 }
        ));
        assert_eq!(t.shed_total(), 1);
        t.resume_workers();
        session.recv().unwrap();
    }

    #[test]
    fn shedding_keeps_memory_bounded_under_flood() {
        // Hammer a tiny queue far past its capacity: every send must
        // complete immediately (no blocking), every reply must be either a
        // real answer or Busy, and the transport must shut down cleanly.
        let t = ConcurrentTransport::spawn_shared_with(
            Arc::new(server()),
            TransportConfig {
                workers: 1,
                max_queue: 4,
                retry_after_ms: 1,
                start_paused: false,
            },
        )
        .unwrap();
        let mut session = t.session();
        let mut busy = 0u32;
        let mut answered = 0u32;
        for round in 0..50 {
            for i in 0..PIPELINE_MAX {
                session
                    .send_with(|out| {
                        BinaryCodec.encode_request_into(
                            &Request::Query {
                                time: Timestamp::from_secs(((round * 7 + i) % 60) as i64 * 60),
                                pos: Point::new(i as f64, 0.0),
                            },
                            out,
                        )
                    })
                    .unwrap();
            }
            while session.inflight() > 0 {
                match BinaryCodec
                    .decode_response(session.recv().unwrap())
                    .unwrap()
                {
                    Response::Busy { .. } => busy += 1,
                    Response::Value { .. } | Response::NoData => answered += 1,
                    other => panic!("{other:?}"),
                }
            }
        }
        assert_eq!(u64::from(busy), t.shed_total());
        assert!(answered > 0, "some queries must get through");
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        let t = ConcurrentTransport::spawn(server(), 4).unwrap();
        std::thread::scope(|scope| {
            for k in 0..4 {
                let t = &t;
                scope.spawn(move || {
                    let mut session = t.session();
                    for i in 0..25 {
                        let reply = session
                            .call_with(|out| {
                                BinaryCodec.encode_request_into(
                                    &Request::Query {
                                        time: Timestamp::from_secs((k * 100 + i) * 30),
                                        pos: Point::new(i as f64 * 20.0, k as f64 * 50.0),
                                    },
                                    out,
                                )
                            })
                            .unwrap();
                        BinaryCodec.decode_response(reply).unwrap();
                    }
                });
            }
        });
    }
}
